//! **GLR** — a full reproduction of *"A Geometric Routing Protocol in
//! Disruption Tolerant Network"* (Du, Kranakis, Nayak; ICDCS 2009) as a
//! Rust workspace.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`geometry`] — robust predicates, Delaunay triangulation, unit-disk
//!   graphs, the k-local Delaunay triangulation spanner, face routing and
//!   DSTD tree extraction;
//! * [`mobility`] — random waypoint (the paper's motion model), random
//!   walk and stationary trajectories;
//! * [`sim`] — the deterministic discrete-event DTN simulator (the NS-2
//!   substitute): pluggable radio media (contention / ideal / shadowing),
//!   beacon-based neighbour sensing, workloads and statistics, plus the
//!   declarative scenario layer and the sharded parameter-sweep engine
//!   with mergeable JSON reports;
//! * [`epidemic`] — the epidemic-routing baseline (Vahdat & Becker);
//! * [`core`] — the GLR protocol itself: controlled flooding over DSTD
//!   trees, custody transfer, location diffusion, face-routing recovery.
//!
//! # Quick start
//!
//! ```
//! use glr::core::Glr;
//! use glr::sim::{SimConfig, Simulation, Workload};
//!
//! // Table 1 setup at 250 m radio range, shortened to 60 s.
//! let cfg = SimConfig::paper(250.0, 1).with_duration(60.0);
//! let workload = Workload::paper_style(50, 20, 1000);
//! let stats = Simulation::new(cfg, workload, Glr::new).run();
//! assert_eq!(stats.messages_created(), 20);
//! println!(
//!     "delivered {:.0}% at {:.1}s mean latency",
//!     stats.delivery_ratio() * 100.0,
//!     stats.avg_latency().unwrap_or(0.0),
//! );
//! ```
//!
//! See the `examples/` directory for richer scenarios and
//! `crates/bench/src/bin/experiments.rs` for the harness regenerating
//! every table and figure of the paper.

#![warn(missing_docs)]

/// The GLR protocol (the paper's contribution). Re-export of [`glr_core`].
pub mod core {
    pub use glr_core::*;
}

/// Computational geometry substrate. Re-export of [`glr_geometry`].
pub mod geometry {
    pub use glr_geometry::*;
}

/// Mobility models. Re-export of [`glr_mobility`].
pub mod mobility {
    pub use glr_mobility::*;
}

/// Discrete-event DTN simulator. Re-export of [`glr_sim`].
pub mod sim {
    pub use glr_sim::*;
}

/// Epidemic routing baseline. Re-export of [`glr_epidemic`].
pub mod epidemic {
    pub use glr_epidemic::*;
}
