//! Cross-crate integration tests: the full stack (geometry + mobility +
//! simulator + protocols) exercised end to end.

use glr::core::{CopyPolicy, Glr, GlrConfig, LocationMode};
use glr::epidemic::Epidemic;
use glr::mobility::Region;
use glr::sim::{NodeId, SimConfig, Simulation, Workload};

fn dense(seed: u64) -> SimConfig {
    let mut c = SimConfig::paper(250.0, seed).with_duration(150.0);
    c.n_nodes = 12;
    c.region = Region::new(200.0, 200.0);
    c
}

#[test]
fn both_protocols_deliver_everything_in_a_dense_network() {
    let wl = Workload::paper_style(12, 12, 1000);
    let g = Simulation::new(dense(1), wl.clone(), Glr::new).run();
    let e = Simulation::new(dense(1), wl, Epidemic::new).run();
    assert_eq!(g.messages_delivered(), 12, "GLR");
    assert_eq!(e.messages_delivered(), 12, "epidemic");
}

#[test]
fn glr_uses_far_less_storage_than_epidemic() {
    // The headline systems claim (Tables 4/5): epidemic's storage equals
    // the messages in transit; GLR's stays near the copy count.
    let cfg = SimConfig::paper(100.0, 5).with_duration(400.0);
    let wl = Workload::paper_style(50, 300, 1000);
    let g = Simulation::new(cfg.clone(), wl.clone(), Glr::new).run();
    let e = Simulation::new(cfg, wl, Epidemic::new).run();
    assert!(
        g.max_peak_storage() * 3 < e.max_peak_storage(),
        "GLR peak {} should be far below epidemic peak {}",
        g.max_peak_storage(),
        e.max_peak_storage()
    );
}

#[test]
fn glr_outlasts_epidemic_under_storage_pressure() {
    // Figure 7's shape: with tiny buffers epidemic loses messages wholesale.
    let mk = |seed| {
        let mut c = SimConfig::paper(50.0, seed).with_duration(1500.0);
        c.storage_limit = Some(25);
        c
    };
    let wl = Workload::paper_style(50, 400, 1000);
    let g = Simulation::new(mk(9), wl.clone(), Glr::new).run();
    let e = Simulation::new(mk(9), wl, Epidemic::new).run();
    assert!(
        g.delivery_ratio() > e.delivery_ratio(),
        "GLR {:.2} must beat epidemic {:.2} at 25 msgs/node",
        g.delivery_ratio(),
        e.delivery_ratio()
    );
    assert!(e.storage_drops > g.storage_drops);
}

#[test]
fn glr_hop_counts_exceed_epidemic() {
    // Table 6's shape: geometric relaying takes more hops than epidemic's
    // contact flooding.
    let cfg = SimConfig::paper(100.0, 11).with_duration(600.0);
    let wl = Workload::paper_style(50, 200, 1000);
    let g = Simulation::new(cfg.clone(), wl.clone(), Glr::new).run();
    let e = Simulation::new(cfg, wl, Epidemic::new).run();
    let (gh, eh) = (g.avg_hops().unwrap(), e.avg_hops().unwrap());
    assert!(
        gh > eh,
        "GLR hops {gh:.1} must exceed epidemic hops {eh:.1}"
    );
}

#[test]
fn oracle_location_beats_blind_location() {
    // Table 2's ordering: all-know <= none-know in latency, and both run.
    let wl = Workload::paper_style(50, 60, 1000);
    let run = |mode| {
        let cfg = SimConfig::paper(100.0, 13).with_duration(900.0);
        let glr = GlrConfig::paper()
            .with_location_mode(mode)
            .with_copy_policy(CopyPolicy::Fixed(3));
        Simulation::new(cfg, wl.clone(), Glr::factory(glr)).run()
    };
    let oracle = run(LocationMode::AllKnow);
    let blind = run(LocationMode::NoneKnow);
    assert!(oracle.delivery_ratio() >= blind.delivery_ratio());
    if let (Some(a), Some(b)) = (oracle.avg_latency(), blind.avg_latency()) {
        assert!(
            a <= b * 1.5,
            "oracle latency {a:.1} should not dramatically exceed blind {b:.1}"
        );
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let cfg = SimConfig::paper(150.0, 77).with_duration(300.0);
    let wl = Workload::paper_style(50, 100, 1000);
    let a = Simulation::new(cfg.clone(), wl.clone(), Glr::new).run();
    let b = Simulation::new(cfg, wl, Glr::new).run();
    assert_eq!(a.messages_delivered(), b.messages_delivered());
    assert_eq!(a.data_tx, b.data_tx);
    assert_eq!(a.control_tx, b.control_tx);
    assert_eq!(a.avg_latency(), b.avg_latency());
    assert_eq!(a.peak_storage, b.peak_storage);
}

#[test]
fn custody_improves_delivery_on_lossy_channels() {
    let mk = |seed: u64, custody: bool| {
        let mut cfg = SimConfig::paper(100.0, seed).with_duration(900.0);
        cfg.collision_prob = 0.25;
        let glr = GlrConfig::paper().with_custody(custody);
        let wl = Workload::paper_style(50, 150, 1000);
        Simulation::new(cfg, wl, Glr::factory(glr)).run()
    };
    // Averaged over a few seeds to keep the comparison stable.
    let avg = |custody: bool| {
        (0..3)
            .map(|s| mk(40 + s, custody).delivery_ratio())
            .sum::<f64>()
            / 3.0
    };
    let with = avg(true);
    let without = avg(false);
    assert!(
        with > without,
        "custody {with:.3} must beat no-custody {without:.3}"
    );
}

#[test]
fn workload_ids_are_registered_once_each() {
    let wl = Workload::paper_style(50, 500, 1000);
    let mut ids = std::collections::HashSet::new();
    for i in 0..wl.len() {
        assert!(ids.insert(wl.message_id(i)), "duplicate id at {i}");
    }
}

#[test]
fn partitioned_static_pair_is_undeliverable_for_both() {
    let mk = |seed| {
        let mut c = SimConfig::paper(5.0, seed).with_duration(120.0);
        c.n_nodes = 2;
        c.region = Region::new(100_000.0, 100_000.0);
        c.speed_range = (0.0, 0.01);
        c
    };
    let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 500);
    let g = Simulation::new(mk(2), wl.clone(), Glr::new).run();
    let e = Simulation::new(mk(2), wl, Epidemic::new).run();
    assert_eq!(g.messages_delivered(), 0);
    assert_eq!(e.messages_delivered(), 0);
}

#[test]
fn grid_index_is_exact_for_the_full_glr_stack() {
    // The grid-backed spatial index must be a pure optimisation: the
    // complete protocol stack (GLR with custody, location diffusion and
    // face routing over the contention medium) produces bit-identical
    // statistics under both backends.
    use glr::sim::IndexBackend;
    for seed in [3u64, 17] {
        let cfg = SimConfig::paper(100.0, seed).with_duration(300.0);
        let wl = Workload::paper_style(50, 80, 1000);
        let grid = Simulation::new(
            cfg.clone().with_neighbor_index(IndexBackend::Grid),
            wl.clone(),
            Glr::new,
        )
        .run();
        let linear = Simulation::new(
            cfg.with_neighbor_index(IndexBackend::LinearScan),
            wl,
            Glr::new,
        )
        .run();
        assert_eq!(
            grid, linear,
            "GLR stack diverged across backends at seed {seed}"
        );
    }
}

#[test]
fn parallel_multi_run_matches_serial_for_glr() {
    use glr::sim::MultiRun;
    let cfg = SimConfig::paper(200.0, 21).with_duration(120.0);
    let run_fn = |c: SimConfig| {
        let wl = Workload::paper_style(c.n_nodes, 20, 1000);
        Simulation::new(c, wl, Glr::new).run()
    };
    let par = MultiRun::execute_with_threads(&cfg, 4, 4, run_fn);
    let ser = MultiRun::execute_serial(&cfg, 4, run_fn);
    for (p, s) in par.runs().iter().zip(ser.runs()) {
        assert_eq!(p, s, "parallel GLR run diverged from serial");
    }
    assert_eq!(par.delivery_ratio(), ser.delivery_ratio());
}

#[test]
fn facade_reexports_line_up() {
    // The facade's modules expose the same items as the subcrates.
    let p: glr::geometry::Point2 = glr::geometry::Point2::new(1.0, 2.0);
    assert_eq!(p.x, 1.0);
    let _k: glr::core::CopyPolicy = glr::core::CopyPolicy::PAPER;
    let _r: glr::mobility::Region = glr::mobility::Region::PAPER_STRIP;
    let s = glr::sim::summarize(&[1.0, 2.0]);
    assert_eq!(s.n, 2);
}
