//! Property-based tests for the epidemic buffer.

use glr_epidemic::{BufferedMessage, FifoBuffer};
use glr_sim::{MessageId, MessageInfo, NodeId, SimTime};
use proptest::prelude::*;

fn msg(src: u32, seq: u32) -> BufferedMessage {
    BufferedMessage {
        info: MessageInfo {
            id: MessageId {
                src: NodeId(src),
                seq,
            },
            dst: NodeId(99),
            size: 100,
            created: SimTime::ZERO,
        },
        hops: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capacity_is_never_exceeded(cap in 0usize..30, inserts in prop::collection::vec((0u32..5, 0u32..40), 0..120)) {
        let mut b = FifoBuffer::new(Some(cap));
        for &(src, seq) in &inserts {
            b.insert(msg(src, seq));
            prop_assert!(b.len() <= cap);
        }
    }

    #[test]
    fn summary_vector_matches_membership(inserts in prop::collection::vec((0u32..4, 0u32..30), 0..60)) {
        let mut b = FifoBuffer::new(None);
        for &(src, seq) in &inserts {
            b.insert(msg(src, seq));
        }
        let sv = b.summary_vector();
        prop_assert_eq!(sv.len(), b.len());
        for id in &sv {
            prop_assert!(b.contains(*id));
        }
        // No duplicates in the summary vector.
        let set: std::collections::HashSet<_> = sv.iter().collect();
        prop_assert_eq!(set.len(), sv.len());
    }

    #[test]
    fn eviction_is_strictly_fifo(cap in 1usize..10, n in 0u32..40) {
        let mut b = FifoBuffer::new(Some(cap));
        let mut evicted = Vec::new();
        for seq in 0..n {
            if let Some(old) = b.insert(msg(0, seq)) {
                evicted.push(old.info.id.seq);
            }
        }
        // Evictions come out in insertion order: 0, 1, 2, ...
        for (i, &seq) in evicted.iter().enumerate() {
            prop_assert_eq!(seq as usize, i);
        }
        // The survivors are exactly the newest `min(n, cap)`.
        let sv = b.summary_vector();
        prop_assert_eq!(sv.len(), (n as usize).min(cap));
    }

    #[test]
    fn remove_then_reinsert_roundtrips(seqs in prop::collection::vec(0u32..20, 1..20)) {
        let mut b = FifoBuffer::new(None);
        for &s in &seqs {
            b.insert(msg(1, s));
        }
        let unique: std::collections::HashSet<_> = seqs.iter().collect();
        prop_assert_eq!(b.len(), unique.len());
        for &s in unique.iter() {
            let id = msg(1, *s).info.id;
            prop_assert!(b.remove(id).is_some());
            prop_assert!(!b.contains(id));
            prop_assert!(b.insert(msg(1, *s)).is_none());
            prop_assert!(b.contains(id));
        }
    }
}
