//! The epidemic routing protocol (Vahdat & Becker, 2000) — the paper's
//! benchmark baseline.
//!
//! When two nodes come into contact they exchange *summary vectors* (the
//! ids of the messages they carry); each then requests the messages it
//! lacks, and the carrier transfers them. Every node keeps every message it
//! has ever successfully received (bounded only by the optional FIFO
//! buffer limit) — nothing is ever acknowledged end-to-end, which is
//! exactly the storage blow-up the paper's Tables 4/5 and Figure 7 measure
//! against.

use crate::buffer::{BufferedMessage, FifoBuffer};
use glr_sim::{Ctx, MessageId, MessageInfo, NodeId, PacketKind, Protocol};

/// Over-the-air packets of epidemic routing.
#[derive(Debug, Clone)]
pub enum EpidemicPacket {
    /// "These are the messages I carry."
    Summary(Vec<MessageId>),
    /// "Send me these."
    Request(Vec<MessageId>),
    /// A carried message copy.
    Data {
        /// End-to-end message facts.
        info: MessageInfo,
        /// Link hops taken by this copy, including the hop in flight.
        hops: u32,
    },
}

/// Size in bytes of a summary/request entry on the wire.
const ID_BYTES: u32 = 8;
/// Fixed control-packet header size in bytes.
const HDR_BYTES: u32 = 16;

/// One node's epidemic routing instance.
///
/// Construct per node via [`Epidemic::new`] and hand to
/// [`glr_sim::Simulation::new`]:
///
/// ```
/// use glr_epidemic::Epidemic;
/// use glr_sim::{SimConfig, Simulation, Workload};
///
/// let cfg = SimConfig::paper(250.0, 7).with_duration(60.0);
/// let wl = Workload::paper_style(50, 10, 1000);
/// let stats = Simulation::new(cfg, wl, Epidemic::new).run();
/// assert!(stats.delivery_ratio() > 0.0);
/// ```
#[derive(Debug)]
pub struct Epidemic {
    buffer: FifoBuffer,
}

impl Epidemic {
    /// Creates the protocol instance for `node`, honouring the
    /// configuration's storage limit.
    pub fn new(node: NodeId, config: &glr_sim::SimConfig) -> Self {
        let _ = node;
        Epidemic {
            buffer: FifoBuffer::new(config.storage_limit),
        }
    }

    /// Number of messages currently carried.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn send_summary(&self, ctx: &mut Ctx<'_, EpidemicPacket>, to: NodeId) {
        let sv = self.buffer.summary_vector();
        let size = HDR_BYTES + ID_BYTES * sv.len() as u32;
        let _ = ctx.send(to, EpidemicPacket::Summary(sv), size, PacketKind::Control);
    }

    fn store(&mut self, ctx: &mut Ctx<'_, EpidemicPacket>, msg: BufferedMessage) {
        if self.buffer.insert(msg).is_some() {
            ctx.report_storage_drop();
        }
    }
}

impl Protocol for Epidemic {
    type Packet = EpidemicPacket;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
        self.store(ctx, BufferedMessage { info, hops: 0 });
        // The message was born after any standing contacts formed, so it
        // would otherwise wait for the next contact event; announce it to
        // the current neighbourhood (one summary each — receivers pull).
        let nbrs = ctx.neighbors();
        for e in nbrs {
            self.send_summary(ctx, e.id);
        }
    }

    fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, Self::Packet>, nbr: NodeId) {
        if !self.buffer.is_empty() {
            self.send_summary(ctx, nbr);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, from: NodeId, packet: Self::Packet) {
        match packet {
            EpidemicPacket::Summary(ids) => {
                let missing: Vec<MessageId> = ids
                    .into_iter()
                    .filter(|&id| !self.buffer.contains(id))
                    .collect();
                if !missing.is_empty() {
                    let size = HDR_BYTES + ID_BYTES * missing.len() as u32;
                    let _ = ctx.send(
                        from,
                        EpidemicPacket::Request(missing),
                        size,
                        PacketKind::Control,
                    );
                }
            }
            EpidemicPacket::Request(ids) => {
                for id in ids {
                    if let Some(m) = self.buffer.get(id) {
                        let pkt = EpidemicPacket::Data {
                            info: m.info,
                            hops: m.hops + 1,
                        };
                        // Queue overflow silently drops the tail of large
                        // transfers — the contention cost of flooding.
                        let _ = ctx.send(from, pkt, m.info.size, PacketKind::Data);
                    }
                }
            }
            EpidemicPacket::Data { info, hops } => {
                if info.dst == ctx.me() {
                    ctx.deliver(info.id, hops);
                }
                // Destination keeps carrying the copy too: without
                // end-to-end acks nobody knows it was delivered.
                self.store(ctx, BufferedMessage { info, hops });
            }
        }
    }

    fn storage_used(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_mobility::Region;
    use glr_sim::{SimConfig, Simulation, Workload};

    /// A small dense network where everyone is always within range: every
    /// message must be delivered quickly.
    fn dense_config(seed: u64) -> SimConfig {
        let mut c = SimConfig::paper(250.0, seed).with_duration(120.0);
        c.n_nodes = 10;
        c.region = Region::new(150.0, 150.0);
        c
    }

    #[test]
    fn delivers_in_dense_network() {
        let wl = Workload::paper_style(10, 5, 1000);
        let stats = Simulation::new(dense_config(1), wl, Epidemic::new).run();
        assert_eq!(stats.messages_created(), 5);
        assert_eq!(
            stats.messages_delivered(),
            5,
            "dense epidemic must deliver all"
        );
        assert!(stats.avg_latency().unwrap() < 10.0);
    }

    #[test]
    fn messages_replicate_to_many_nodes() {
        let wl = Workload::single(glr_sim::NodeId(0), glr_sim::NodeId(5), 1.0, 1000);
        let stats = Simulation::new(dense_config(2), wl, Epidemic::new).run();
        // One message flooded through 10 nodes: storage peak is 1 at
        // essentially every node, and data transmissions well exceed the
        // single end-to-end delivery.
        assert_eq!(stats.messages_delivered(), 1);
        assert!(
            stats.data_tx >= 5,
            "flooding should copy the message widely"
        );
        assert_eq!(stats.max_peak_storage(), 1);
    }

    #[test]
    fn storage_limit_causes_drops_under_load() {
        let mut cfg = dense_config(3);
        cfg.storage_limit = Some(2);
        let wl = Workload::paper_style(10, 40, 1000);
        let stats = Simulation::new(cfg, wl, Epidemic::new).run();
        assert!(stats.storage_drops > 0, "tiny buffers must evict");
        assert!(stats.max_peak_storage() <= 2);
    }

    #[test]
    fn no_delivery_across_partition() {
        // Two nodes pinned far apart in a huge region with tiny range.
        let mut cfg = SimConfig::paper(10.0, 4).with_duration(60.0);
        cfg.n_nodes = 2;
        cfg.region = Region::new(50_000.0, 50_000.0);
        cfg.speed_range = (0.0, 0.1);
        let wl = Workload::single(glr_sim::NodeId(0), glr_sim::NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, Epidemic::new).run();
        assert_eq!(stats.messages_delivered(), 0);
    }

    #[test]
    fn hop_counts_reflect_relaying() {
        // A 3-node chain: 0 and 2 are never in range of each other, 1
        // shuttles between them? Simplest: dense network, hops >= 1.
        let wl = Workload::paper_style(10, 10, 1000);
        let stats = Simulation::new(dense_config(5), wl, Epidemic::new).run();
        let h = stats.avg_hops().unwrap();
        assert!(h >= 1.0, "delivered copies travelled at least one hop");
    }
}
