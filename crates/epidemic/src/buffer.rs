//! FIFO message buffer with optional capacity — epidemic routing's storage
//! policy ("old messages are dropped when new messages come in", paper
//! §3.6).

use glr_sim::{MessageId, MessageInfo};
use std::collections::{HashSet, VecDeque};

/// A message held by an epidemic node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedMessage {
    /// The end-to-end message facts.
    pub info: MessageInfo,
    /// Link hops the carried copy has taken so far.
    pub hops: u32,
}

/// FIFO buffer of carried messages with O(1) membership tests.
///
/// # Examples
///
/// ```
/// use glr_epidemic::{BufferedMessage, FifoBuffer};
/// use glr_sim::{MessageId, MessageInfo, NodeId, SimTime};
///
/// let mk = |seq| BufferedMessage {
///     info: MessageInfo {
///         id: MessageId { src: NodeId(0), seq },
///         dst: NodeId(1),
///         size: 100,
///         created: SimTime::ZERO,
///     },
///     hops: 0,
/// };
/// let mut buf = FifoBuffer::new(Some(2));
/// assert!(buf.insert(mk(0)).is_none());
/// assert!(buf.insert(mk(1)).is_none());
/// // Full: inserting evicts the oldest.
/// let evicted = buf.insert(mk(2)).unwrap();
/// assert_eq!(evicted.info.id.seq, 0);
/// assert_eq!(buf.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoBuffer {
    queue: VecDeque<BufferedMessage>,
    ids: HashSet<MessageId>,
    capacity: Option<usize>,
}

impl FifoBuffer {
    /// Creates a buffer with the given capacity (`None` = unlimited).
    pub fn new(capacity: Option<usize>) -> Self {
        FifoBuffer {
            queue: VecDeque::new(),
            ids: HashSet::new(),
            capacity,
        }
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` when `id` is buffered.
    pub fn contains(&self, id: MessageId) -> bool {
        self.ids.contains(&id)
    }

    /// Inserts a message; duplicates are ignored. When at capacity, the
    /// oldest message is evicted and returned.
    pub fn insert(&mut self, msg: BufferedMessage) -> Option<BufferedMessage> {
        if self.ids.contains(&msg.info.id) {
            return None;
        }
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return Some(msg); // degenerate: nothing fits, "evict" input
            }
            if self.queue.len() >= cap {
                let old = self.queue.pop_front().expect("len >= cap > 0");
                self.ids.remove(&old.info.id);
                evicted = Some(old);
            }
        }
        self.ids.insert(msg.info.id);
        self.queue.push_back(msg);
        evicted
    }

    /// Removes a message by id, returning it if present.
    pub fn remove(&mut self, id: MessageId) -> Option<BufferedMessage> {
        if !self.ids.remove(&id) {
            return None;
        }
        let pos = self
            .queue
            .iter()
            .position(|m| m.info.id == id)
            .expect("id set and queue in sync");
        self.queue.remove(pos)
    }

    /// The buffered message ids, oldest first (the *summary vector*).
    pub fn summary_vector(&self) -> Vec<MessageId> {
        self.queue.iter().map(|m| m.info.id).collect()
    }

    /// Iterates over buffered messages, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedMessage> {
        self.queue.iter()
    }

    /// Looks up a buffered message by id.
    pub fn get(&self, id: MessageId) -> Option<&BufferedMessage> {
        self.queue.iter().find(|m| m.info.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_sim::{NodeId, SimTime};

    fn msg(src: u32, seq: u32) -> BufferedMessage {
        BufferedMessage {
            info: MessageInfo {
                id: MessageId {
                    src: NodeId(src),
                    seq,
                },
                dst: NodeId(99),
                size: 1000,
                created: SimTime::ZERO,
            },
            hops: 0,
        }
    }

    #[test]
    fn insert_and_membership() {
        let mut b = FifoBuffer::new(None);
        assert!(b.is_empty());
        b.insert(msg(0, 0));
        b.insert(msg(0, 1));
        assert_eq!(b.len(), 2);
        assert!(b.contains(msg(0, 0).info.id));
        assert!(!b.contains(msg(0, 5).info.id));
    }

    #[test]
    fn duplicates_ignored() {
        let mut b = FifoBuffer::new(Some(2));
        b.insert(msg(0, 0));
        assert!(b.insert(msg(0, 0)).is_none());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut b = FifoBuffer::new(Some(3));
        for seq in 0..3 {
            assert!(b.insert(msg(0, seq)).is_none());
        }
        let ev1 = b.insert(msg(0, 3)).unwrap();
        assert_eq!(ev1.info.id.seq, 0);
        let ev2 = b.insert(msg(0, 4)).unwrap();
        assert_eq!(ev2.info.id.seq, 1);
        assert_eq!(
            b.summary_vector().iter().map(|i| i.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn remove_keeps_sync() {
        let mut b = FifoBuffer::new(None);
        b.insert(msg(0, 0));
        b.insert(msg(0, 1));
        let r = b.remove(msg(0, 0).info.id).unwrap();
        assert_eq!(r.info.id.seq, 0);
        assert!(!b.contains(r.info.id));
        assert_eq!(b.len(), 1);
        assert!(b.remove(r.info.id).is_none());
        // Re-insert after removal works.
        assert!(b.insert(msg(0, 0)).is_none());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut b = FifoBuffer::new(Some(0));
        let back = b.insert(msg(0, 0)).unwrap();
        assert_eq!(back.info.id.seq, 0);
        assert!(b.is_empty());
    }

    #[test]
    fn get_returns_stored_hops() {
        let mut b = FifoBuffer::new(None);
        let mut m = msg(1, 7);
        m.hops = 4;
        b.insert(m);
        assert_eq!(b.get(m.info.id).unwrap().hops, 4);
        assert!(b.get(msg(1, 8).info.id).is_none());
    }
}
