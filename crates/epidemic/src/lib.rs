//! Epidemic routing (Vahdat & Becker, 2000) on the GLR DTN simulator.
//!
//! The paper benchmarks GLR against epidemic routing: contact-triggered
//! summary-vector exchange, pull-based transfer, and FIFO buffer eviction
//! under storage limits. This crate implements exactly that as a
//! [`glr_sim::Protocol`].
//!
//! # Example
//!
//! ```
//! use glr_epidemic::Epidemic;
//! use glr_sim::{SimConfig, Simulation, Workload};
//!
//! let cfg = SimConfig::paper(250.0, 1).with_duration(60.0);
//! let stats = Simulation::new(cfg, Workload::paper_style(50, 10, 1000), Epidemic::new).run();
//! assert_eq!(stats.messages_created(), 10);
//! ```

#![warn(missing_docs)]

mod buffer;
mod protocol;

pub use buffer::{BufferedMessage, FifoBuffer};
pub use protocol::{Epidemic, EpidemicPacket};
