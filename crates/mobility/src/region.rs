//! Rectangular deployment regions.

use glr_geometry::Point2;
use rand::Rng;

/// An axis-aligned rectangular deployment region with its origin at (0, 0).
///
/// The paper's evaluations use `1500 m x 300 m` (the main simulations) and
/// `1000 m x 1000 m` (the Figure 1 connectivity study).
///
/// # Examples
///
/// ```
/// use glr_mobility::Region;
///
/// let r = Region::new(1500.0, 300.0);
/// assert_eq!(r.area(), 450_000.0);
/// assert!(r.contains(glr_geometry::Point2::new(100.0, 100.0)));
/// assert!(!r.contains(glr_geometry::Point2::new(100.0, 400.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    width: f64,
    height: f64,
}

impl Region {
    /// The paper's main simulation strip: 1500 m x 300 m.
    pub const PAPER_STRIP: Region = Region {
        width: 1500.0,
        height: 300.0,
    };

    /// The paper's Figure 1 square: 1000 m x 1000 m.
    pub const PAPER_SQUARE: Region = Region {
        width: 1000.0,
        height: 1000.0,
    };

    /// Creates a region of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "region dimensions must be positive and finite, got {width} x {height}"
        );
        Region { width, height }
    }

    /// Region width in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Region height in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Region area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// `true` when `p` lies inside the region (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= 0.0 && p.x <= self.width && p.y >= 0.0 && p.y <= self.height
    }

    /// Clamps `p` to the region.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Samples a uniformly random point inside the region.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point2 {
        Point2::new(
            rng.random_range(0.0..=self.width),
            rng.random_range(0.0..=self.height),
        )
    }

    /// Deploys `n` nodes uniformly at random.
    pub fn deploy<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point2> {
        (0..n).map(|_| self.random_point(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contains_and_clamp() {
        let r = Region::new(100.0, 50.0);
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(100.0, 50.0)));
        assert!(!r.contains(Point2::new(-0.1, 10.0)));
        assert_eq!(r.clamp(Point2::new(150.0, -3.0)), Point2::new(100.0, 0.0));
    }

    #[test]
    fn deploy_inside_and_deterministic() {
        let r = Region::PAPER_STRIP;
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let a = r.deploy(50, &mut rng1);
        let b = r.deploy(50, &mut rng2);
        assert_eq!(a, b, "deployment must be deterministic per seed");
        assert!(a.iter().all(|&p| r.contains(p)));
        assert_eq!(a.len(), 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        Region::new(0.0, 10.0);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(Region::PAPER_STRIP.area(), 450_000.0);
        assert_eq!(Region::PAPER_SQUARE.area(), 1_000_000.0);
    }
}
