//! Mobility models: random waypoint (the paper's motion pattern), random
//! walk with boundary reflection, and stationary placement.

use crate::region::Region;
use crate::trajectory::Trajectory;
use glr_geometry::Point2;
use rand::Rng;

/// A mobility model that can compile a node's movement into a
/// [`Trajectory`] covering `[0, duration]`.
pub trait MobilityModel {
    /// Generates one node's trajectory starting at `start`.
    fn trajectory<R: Rng + ?Sized>(&self, start: Point2, duration: f64, rng: &mut R) -> Trajectory;

    /// Generates trajectories for a whole deployment: nodes start uniformly
    /// at random inside `region`.
    fn deployment<R: Rng + ?Sized>(
        &self,
        region: Region,
        n: usize,
        duration: f64,
        rng: &mut R,
    ) -> Vec<Trajectory> {
        (0..n)
            .map(|_| {
                let start = region.random_point(rng);
                self.trajectory(start, duration, rng)
            })
            .collect()
    }
}

/// The random waypoint model: repeatedly pick a uniform destination in the
/// region, travel there in a straight line at a uniformly-sampled speed,
/// optionally pause, repeat.
///
/// The paper's configuration is speeds uniform in 0–20 m/s with zero pause
/// time ([`RandomWaypoint::paper`]). Sampled speeds are clamped to a small
/// positive floor so a node can never freeze forever (the classic RWP
/// pathology at speed 0).
///
/// # Examples
///
/// ```
/// use glr_mobility::{MobilityModel, RandomWaypoint, Region};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = RandomWaypoint::paper(Region::PAPER_STRIP);
/// let mut rng = StdRng::seed_from_u64(7);
/// let traj = model.trajectory(glr_geometry::Point2::new(10.0, 10.0), 100.0, &mut rng);
/// assert!(traj.end_time() >= 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    region: Region,
    speed_min: f64,
    speed_max: f64,
    pause: f64,
}

/// Minimum effective speed (m/s); sampled speeds below this are clamped
/// (the classic random-waypoint freeze-at-zero pathology). Public because
/// it is also the floor of any *speed upper bound* derived from a
/// configuration — e.g. the simulator's spatial index drift bound must
/// use `max(config_speed_max, SPEED_FLOOR)` to stay exact.
pub const SPEED_FLOOR: f64 = 0.01;

impl RandomWaypoint {
    /// Creates a random-waypoint model.
    ///
    /// # Panics
    ///
    /// Panics if `speed_min > speed_max`, `speed_max <= 0`, or `pause < 0`.
    pub fn new(region: Region, speed_min: f64, speed_max: f64, pause: f64) -> Self {
        assert!(
            speed_min >= 0.0 && speed_max > 0.0 && speed_min <= speed_max,
            "invalid speed range [{speed_min}, {speed_max}]"
        );
        assert!(pause >= 0.0, "pause must be non-negative");
        RandomWaypoint {
            region,
            speed_min,
            speed_max,
            pause,
        }
    }

    /// The paper's configuration: uniform 0–20 m/s, zero pause.
    pub fn paper(region: Region) -> Self {
        RandomWaypoint::new(region, 0.0, 20.0, 0.0)
    }

    /// The deployment region.
    pub fn region(&self) -> Region {
        self.region
    }
}

impl MobilityModel for RandomWaypoint {
    fn trajectory<R: Rng + ?Sized>(&self, start: Point2, duration: f64, rng: &mut R) -> Trajectory {
        let mut keyframes = vec![(0.0, self.region.clamp(start))];
        let mut t = 0.0;
        let mut pos = self.region.clamp(start);
        while t < duration {
            let target = self.region.random_point(rng);
            let speed = rng
                .random_range(self.speed_min..=self.speed_max)
                .max(SPEED_FLOOR);
            let travel = pos.dist(target) / speed;
            if travel > 0.0 {
                t += travel;
                pos = target;
                keyframes.push((t, pos));
            }
            if self.pause > 0.0 {
                t += self.pause;
                keyframes.push((t, pos));
            }
        }
        Trajectory::from_keyframes(keyframes)
    }
}

/// A random walk: pick a uniform direction and a travel period, walk at a
/// uniformly-sampled speed, reflecting off region boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalk {
    region: Region,
    speed_min: f64,
    speed_max: f64,
    /// Duration of each leg in seconds.
    step_time: f64,
}

impl RandomWalk {
    /// Creates a random-walk model with the given leg duration.
    ///
    /// # Panics
    ///
    /// Panics on invalid speed range or non-positive `step_time`.
    pub fn new(region: Region, speed_min: f64, speed_max: f64, step_time: f64) -> Self {
        assert!(
            speed_min >= 0.0 && speed_max > 0.0 && speed_min <= speed_max,
            "invalid speed range [{speed_min}, {speed_max}]"
        );
        assert!(step_time > 0.0, "step_time must be positive");
        RandomWalk {
            region,
            speed_min,
            speed_max,
            step_time,
        }
    }
}

impl MobilityModel for RandomWalk {
    fn trajectory<R: Rng + ?Sized>(&self, start: Point2, duration: f64, rng: &mut R) -> Trajectory {
        let mut keyframes = vec![(0.0, self.region.clamp(start))];
        let mut t = 0.0;
        let mut pos = self.region.clamp(start);
        while t < duration {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let speed = rng
                .random_range(self.speed_min..=self.speed_max)
                .max(SPEED_FLOOR);
            let mut target = pos + Point2::new(angle.cos(), angle.sin()) * (speed * self.step_time);
            // Reflect off boundaries.
            target = reflect(target, self.region);
            t += self.step_time;
            pos = target;
            keyframes.push((t, pos));
        }
        Trajectory::from_keyframes(keyframes)
    }
}

/// Reflects a point back into the region (single bounce per axis, adequate
/// for legs shorter than the region size; clamped as a fallback).
fn reflect(p: Point2, region: Region) -> Point2 {
    let mut x = p.x;
    let mut y = p.y;
    if x < 0.0 {
        x = -x;
    }
    if x > region.width() {
        x = 2.0 * region.width() - x;
    }
    if y < 0.0 {
        y = -y;
    }
    if y > region.height() {
        y = 2.0 * region.height() - y;
    }
    region.clamp(Point2::new(x, y))
}

/// A model whose nodes never move — the degenerate baseline used by tests
/// and static-topology analyses (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stationary;

impl MobilityModel for Stationary {
    fn trajectory<R: Rng + ?Sized>(
        &self,
        start: Point2,
        _duration: f64,
        _rng: &mut R,
    ) -> Trajectory {
        Trajectory::stationary(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rwp_stays_in_region_and_covers_duration() {
        let region = Region::PAPER_STRIP;
        let model = RandomWaypoint::paper(region);
        let mut rng = StdRng::seed_from_u64(1);
        let traj = model.trajectory(Point2::new(0.0, 0.0), 500.0, &mut rng);
        assert!(traj.end_time() >= 500.0);
        for i in 0..100 {
            let p = traj.position_at(i as f64 * 5.0);
            assert!(region.contains(p), "escaped region at t={i}");
        }
    }

    #[test]
    fn rwp_deterministic_per_seed() {
        let model = RandomWaypoint::paper(Region::PAPER_SQUARE);
        let t1 = model.trajectory(Point2::new(5.0, 5.0), 200.0, &mut StdRng::seed_from_u64(9));
        let t2 = model.trajectory(Point2::new(5.0, 5.0), 200.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }

    #[test]
    fn rwp_speed_within_range() {
        let model = RandomWaypoint::new(Region::PAPER_SQUARE, 5.0, 10.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let traj = model.trajectory(Point2::new(500.0, 500.0), 300.0, &mut rng);
        for i in 1..60 {
            let s = traj.speed_at(i as f64 * 5.0);
            if s > 0.0 {
                assert!(
                    (5.0 - 1e-9..=10.0 + 1e-9).contains(&s),
                    "speed {s} out of range"
                );
            }
        }
    }

    #[test]
    fn rwp_pause_inserts_zero_speed_intervals() {
        let model = RandomWaypoint::new(Region::PAPER_SQUARE, 10.0, 10.0, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let traj = model.trajectory(Point2::new(500.0, 500.0), 400.0, &mut rng);
        // Pauses appear as consecutive keyframes at the same position.
        let has_pause = traj
            .keyframes()
            .windows(2)
            .any(|w| w[0].1 == w[1].1 && w[1].0 > w[0].0);
        assert!(has_pause);
    }

    #[test]
    fn walk_stays_in_region() {
        let region = Region::new(200.0, 200.0);
        let model = RandomWalk::new(region, 1.0, 5.0, 10.0);
        let mut rng = StdRng::seed_from_u64(11);
        let traj = model.trajectory(Point2::new(100.0, 100.0), 600.0, &mut rng);
        for i in 0..120 {
            assert!(region.contains(traj.position_at(i as f64 * 5.0)));
        }
    }

    #[test]
    fn stationary_model_is_constant() {
        let model = Stationary;
        let mut rng = StdRng::seed_from_u64(2);
        let traj = model.trajectory(Point2::new(7.0, 8.0), 100.0, &mut rng);
        assert_eq!(traj.position_at(50.0), Point2::new(7.0, 8.0));
    }

    #[test]
    fn deployment_generates_n_trajectories() {
        let model = RandomWaypoint::paper(Region::PAPER_STRIP);
        let mut rng = StdRng::seed_from_u64(6);
        let trajs = model.deployment(Region::PAPER_STRIP, 50, 100.0, &mut rng);
        assert_eq!(trajs.len(), 50);
        // Starting positions are spread out (not all identical).
        let first = trajs[0].position_at(0.0);
        assert!(trajs.iter().any(|t| t.position_at(0.0) != first));
    }

    #[test]
    fn reflect_bounces_back() {
        let region = Region::new(100.0, 100.0);
        assert_eq!(
            reflect(Point2::new(-10.0, 50.0), region),
            Point2::new(10.0, 50.0)
        );
        assert_eq!(
            reflect(Point2::new(110.0, 50.0), region),
            Point2::new(90.0, 50.0)
        );
        assert_eq!(
            reflect(Point2::new(50.0, -20.0), region),
            Point2::new(50.0, 20.0)
        );
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn bad_speed_range_panics() {
        RandomWaypoint::new(Region::PAPER_SQUARE, 10.0, 5.0, 0.0);
    }
}
