//! Mobility models for the GLR DTN simulator.
//!
//! The paper evaluates GLR under the **random waypoint** model (0–20 m/s
//! uniform, zero pause) in a 1500 m x 300 m strip. This crate provides that
//! model plus a reflecting random walk and a stationary baseline, all
//! compiled to piecewise-linear [`Trajectory`] values the discrete-event
//! simulator can sample at arbitrary times.
//!
//! # Example
//!
//! ```
//! use glr_mobility::{MobilityModel, RandomWaypoint, Region};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let region = Region::PAPER_STRIP;
//! let model = RandomWaypoint::paper(region);
//! let mut rng = StdRng::seed_from_u64(42);
//! let trajectories = model.deployment(region, 50, 1200.0, &mut rng);
//! assert_eq!(trajectories.len(), 50);
//! // Sample node 0 halfway through the simulation:
//! let p = trajectories[0].position_at(600.0);
//! assert!(region.contains(p));
//! ```

#![warn(missing_docs)]

mod arena;
mod models;
mod region;
mod trajectory;

pub use arena::{DeploymentArena, TrajectoryRef};
pub use models::{MobilityModel, RandomWalk, RandomWaypoint, Stationary, SPEED_FLOOR};
pub use region::Region;
pub use trajectory::Trajectory;
