//! Flat, cache-friendly storage for a whole deployment's trajectories.
//!
//! A `Vec<Trajectory>` scatters every node's keyframes across its own heap
//! allocation; at 100k+ nodes the simulator's `position_at` hot path (one
//! call per spatial-index candidate, per grid rebuild, per medium range
//! check) pays a pointer chase and a cold cache line per call.
//! [`DeploymentArena`] interns all keyframes into **one contiguous
//! buffer** plus per-node `(offset, len)` spans, and hands out borrowing
//! [`TrajectoryRef`] views that evaluate positions with the exact same
//! arithmetic as [`Trajectory::position_at`] — bit-identical results,
//! O(1) for the stationary/single-leg common case, amortised O(1) for
//! longer trajectories via a per-node last-segment hint.
//!
//! [`Trajectory`] remains the builder API: mobility models keep compiling
//! movement into individual trajectories, and the simulator interns the
//! finished deployment once at construction.

use crate::trajectory::{segment_lerp, segment_of, Trajectory};
use glr_geometry::Point2;
use std::sync::atomic::{AtomicU32, Ordering};

/// All trajectories of a deployment, interned into one contiguous
/// keyframe buffer.
///
/// # Examples
///
/// ```
/// use glr_mobility::{DeploymentArena, Trajectory};
/// use glr_geometry::Point2;
///
/// let trajs = vec![
///     Trajectory::stationary(Point2::new(1.0, 2.0)),
///     Trajectory::from_keyframes(vec![
///         (0.0, Point2::new(0.0, 0.0)),
///         (10.0, Point2::new(100.0, 0.0)),
///     ]),
/// ];
/// let arena = DeploymentArena::from_trajectories(&trajs);
/// assert_eq!(arena.len(), 2);
/// assert_eq!(arena.position_at(0, 99.0), Point2::new(1.0, 2.0));
/// assert_eq!(arena.position_at(1, 5.0), Point2::new(50.0, 0.0));
/// ```
#[derive(Debug)]
pub struct DeploymentArena {
    /// Every node's keyframes, back to back.
    keyframes: Vec<(f64, Point2)>,
    /// Node `i`'s keyframes are `keyframes[offsets[i]..offsets[i + 1]]`
    /// — `n + 1` offsets instead of `n` `(offset, len)` pairs, since a
    /// span's end is the next span's start (4 B/node saved at 100k).
    offsets: Vec<u32>,
    /// Per node: index (relative to the span) of the segment the last
    /// `position_at` landed in. A pure search accelerator: reads and
    /// writes are `Relaxed` and results never depend on its value, so
    /// concurrent readers (the simulator's parallel reception phase) stay
    /// deterministic.
    hints: Vec<AtomicU32>,
}

impl DeploymentArena {
    /// Interns `trajectories` into a flat arena.
    ///
    /// # Panics
    ///
    /// Panics if the total keyframe count exceeds `u32::MAX` (a 100
    /// GiB+ deployment; split it into shards first).
    pub fn from_trajectories(trajectories: &[Trajectory]) -> Self {
        let total: usize = trajectories.iter().map(|t| t.keyframes().len()).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "deployment has {total} keyframes; the arena indexes with u32"
        );
        let mut keyframes = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(trajectories.len() + 1);
        offsets.push(0);
        for t in trajectories {
            keyframes.extend_from_slice(t.keyframes());
            offsets.push(keyframes.len() as u32);
        }
        let hints = (0..trajectories.len()).map(|_| AtomicU32::new(0)).collect();
        DeploymentArena {
            keyframes,
            offsets,
            hints,
        }
    }

    /// Number of trajectories (nodes).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the arena holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowing view of node `i`'s trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> TrajectoryRef<'_> {
        TrajectoryRef {
            keyframes: &self.keyframes[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            hint: &self.hints[i],
        }
    }

    /// Position of node `i` at time `t` — identical to
    /// `trajectories[i].position_at(t)` on the interned slice.
    #[inline]
    pub fn position_at(&self, i: usize, t: f64) -> Point2 {
        self.get(i).position_at(t)
    }

    /// Total number of interned keyframes.
    pub fn total_keyframes(&self) -> usize {
        self.keyframes.len()
    }

    /// Heap footprint of the arena in bytes (keyframe buffer + offsets +
    /// hints) — the number the deployment-memory telemetry reports
    /// against the equivalent `Vec<Trajectory>`.
    pub fn heap_bytes(&self) -> usize {
        self.keyframes.capacity() * std::mem::size_of::<(f64, Point2)>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.hints.capacity() * std::mem::size_of::<AtomicU32>()
    }

    /// Heap footprint in bytes of the equivalent `Vec<Trajectory>`
    /// representation (one keyframe `Vec` per node plus the outer `Vec`'s
    /// own array) — the baseline for the arena's memory telemetry.
    pub fn vec_equivalent_bytes(trajectories: &[Trajectory]) -> usize {
        std::mem::size_of_val(trajectories)
            + trajectories
                .iter()
                .map(|t| std::mem::size_of_val(t.keyframes()))
                .sum::<usize>()
    }
}

impl Clone for DeploymentArena {
    fn clone(&self) -> Self {
        DeploymentArena {
            keyframes: self.keyframes.clone(),
            offsets: self.offsets.clone(),
            hints: self
                .hints
                .iter()
                .map(|h| AtomicU32::new(h.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A borrowed trajectory inside a [`DeploymentArena`]: the node's
/// keyframe slice plus its last-segment hint.
#[derive(Debug)]
pub struct TrajectoryRef<'a> {
    keyframes: &'a [(f64, Point2)],
    hint: &'a AtomicU32,
}

impl TrajectoryRef<'_> {
    /// The underlying keyframes.
    pub fn keyframes(&self) -> &[(f64, Point2)] {
        self.keyframes
    }

    /// End time of the last keyframe.
    pub fn end_time(&self) -> f64 {
        self.keyframes[self.keyframes.len() - 1].0
    }

    /// Position at time `t` — bit-identical to
    /// [`Trajectory::position_at`] on the same keyframes.
    ///
    /// Fast paths: O(1) for 1- and 2-keyframe trajectories (stationary
    /// nodes and single-leg movers, the overwhelmingly common case in
    /// short runs), and an O(1) hint check against the segment the
    /// previous call landed in before falling back to binary search.
    /// Every path evaluates the same unique segment with the same
    /// interpolation expression, so which path answered is unobservable.
    #[inline]
    pub fn position_at(&self, t: f64) -> Point2 {
        let kf = self.keyframes;
        let n = kf.len();
        if t <= kf[0].0 {
            return kf[0].1;
        }
        if t >= kf[n - 1].0 {
            return kf[n - 1].1;
        }
        // Here n >= 2 and kf[0].0 < t < kf[n-1].0: t lies in the unique
        // segment [lo, lo+1) with kf[lo].0 <= t < kf[lo+1].0.
        if n == 2 {
            return segment_lerp(kf[0], kf[1], t);
        }
        let h = self.hint.load(Ordering::Relaxed) as usize;
        if h + 1 < n && kf[h].0 <= t && t < kf[h + 1].0 {
            return segment_lerp(kf[h], kf[h + 1], t);
        }
        let lo = segment_of(kf, t);
        self.hint.store(lo as u32, Ordering::Relaxed);
        segment_lerp(kf[lo], kf[lo + 1], t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(points: &[(f64, (f64, f64))]) -> Trajectory {
        Trajectory::from_keyframes(
            points
                .iter()
                .map(|&(t, (x, y))| (t, Point2::new(x, y)))
                .collect(),
        )
    }

    #[test]
    fn arena_matches_trajectories_bit_exactly() {
        let trajs = vec![
            Trajectory::stationary(Point2::new(3.0, 4.0)),
            traj(&[(0.0, (0.0, 0.0)), (10.0, (100.0, 50.0))]),
            traj(&[
                (0.0, (0.0, 0.0)),
                (1.0, (3.0, 4.0)),
                (2.5, (3.0, 10.0)),
                (7.0, (-5.0, 10.0)),
            ]),
        ];
        let arena = DeploymentArena::from_trajectories(&trajs);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.total_keyframes(), 1 + 2 + 4);
        for (i, t) in trajs.iter().enumerate() {
            for step in 0..200 {
                let at = step as f64 * 0.05 - 1.0; // covers clamping too
                let want = t.position_at(at.max(0.0));
                let got = arena.position_at(i, at.max(0.0));
                assert_eq!(want.x.to_bits(), got.x.to_bits(), "node {i} t {at}");
                assert_eq!(want.y.to_bits(), got.y.to_bits(), "node {i} t {at}");
            }
        }
    }

    #[test]
    fn hint_survives_non_monotone_queries() {
        let t = traj(&[
            (0.0, (0.0, 0.0)),
            (1.0, (1.0, 0.0)),
            (2.0, (2.0, 0.0)),
            (3.0, (3.0, 0.0)),
            (4.0, (4.0, 0.0)),
        ]);
        let arena = DeploymentArena::from_trajectories(std::slice::from_ref(&t));
        // Ping-pong across segments: the hint must never change answers.
        for &at in &[3.5, 0.5, 2.5, 2.5, 0.1, 3.9, 1.0, 2.0, 0.0, 4.0, 9.0] {
            assert_eq!(arena.position_at(0, at), t.position_at(at), "t={at}");
        }
    }

    #[test]
    fn exact_keyframe_times_hit_keyframe_positions() {
        let t = traj(&[(1.0, (1.0, 1.0)), (2.0, (2.0, 2.0)), (4.0, (0.0, 0.0))]);
        let arena = DeploymentArena::from_trajectories(std::slice::from_ref(&t));
        assert_eq!(arena.position_at(0, 2.0), Point2::new(2.0, 2.0));
        assert_eq!(arena.position_at(0, 1.0), Point2::new(1.0, 1.0));
        assert_eq!(arena.position_at(0, 4.0), Point2::new(0.0, 0.0));
    }

    #[test]
    fn footprint_is_compact() {
        let trajs: Vec<Trajectory> = (0..100)
            .map(|i| traj(&[(0.0, (i as f64, 0.0)), (10.0, (i as f64, 5.0))]))
            .collect();
        let arena = DeploymentArena::from_trajectories(&trajs);
        // One contiguous buffer beats 100 scattered Vecs plus headers.
        assert!(arena.heap_bytes() < DeploymentArena::vec_equivalent_bytes(&trajs));
    }

    #[test]
    fn empty_arena() {
        let arena = DeploymentArena::from_trajectories(&[]);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
    }
}
