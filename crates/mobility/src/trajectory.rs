//! Piecewise-linear node trajectories.
//!
//! Every mobility model compiles to a [`Trajectory`]: a sorted list of
//! `(time, position)` keyframes with linear interpolation in between and
//! clamping outside. This lets the (event-driven) simulator evaluate any
//! node's position at any instant in `O(log k)` without stepping the
//! mobility model.

use glr_geometry::Point2;

/// A piecewise-linear trajectory through the plane.
///
/// # Examples
///
/// ```
/// use glr_mobility::Trajectory;
/// use glr_geometry::Point2;
///
/// let t = Trajectory::from_keyframes(vec![
///     (0.0, Point2::new(0.0, 0.0)),
///     (10.0, Point2::new(100.0, 0.0)),
/// ]);
/// assert_eq!(t.position_at(5.0), Point2::new(50.0, 0.0));
/// assert_eq!(t.position_at(-1.0), Point2::new(0.0, 0.0)); // clamped
/// assert_eq!(t.position_at(99.0), Point2::new(100.0, 0.0)); // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    keyframes: Vec<(f64, Point2)>,
}

impl Trajectory {
    /// A trajectory that never moves.
    pub fn stationary(p: Point2) -> Self {
        Trajectory {
            keyframes: vec![(0.0, p)],
        }
    }

    /// Builds a trajectory from `(time, position)` keyframes.
    ///
    /// # Panics
    ///
    /// Panics if `keyframes` is empty, times are not strictly increasing,
    /// or any coordinate is non-finite.
    pub fn from_keyframes(keyframes: Vec<(f64, Point2)>) -> Self {
        assert!(
            !keyframes.is_empty(),
            "a trajectory needs at least one keyframe"
        );
        for w in keyframes.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "keyframe times must be strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        for &(t, p) in &keyframes {
            assert!(t.is_finite() && p.is_finite(), "non-finite keyframe");
        }
        Trajectory { keyframes }
    }

    /// The keyframes.
    pub fn keyframes(&self) -> &[(f64, Point2)] {
        &self.keyframes
    }

    /// Position at time `t`, clamped to the first/last keyframe outside the
    /// covered interval.
    ///
    /// O(1) for 1- and 2-keyframe trajectories (stationary nodes and
    /// single-leg movers — the common case in short runs); longer
    /// trajectories binary-search for the segment containing `t`. Both
    /// paths evaluate the same unique segment with the same interpolation
    /// expression, so which path answered is unobservable (asserted
    /// bit-for-bit by the `fast_paths_match_binary_search` proptest).
    pub fn position_at(&self, t: f64) -> Point2 {
        let kf = &self.keyframes;
        let n = kf.len();
        if t <= kf[0].0 {
            return kf[0].1;
        }
        if t >= kf[n - 1].0 {
            return kf[n - 1].1;
        }
        // Here n >= 2 and kf[0].0 < t < kf[n-1].0: t lies in the unique
        // segment [lo, lo+1) with kf[lo].0 <= t < kf[lo+1].0.
        let lo = if n == 2 { 0 } else { segment_of(kf, t) };
        segment_lerp(kf[lo], kf[lo + 1], t)
    }

    /// End time of the last keyframe.
    pub fn end_time(&self) -> f64 {
        self.keyframes[self.keyframes.len() - 1].0
    }

    /// Instantaneous speed at time `t` (0 outside the covered interval and
    /// at exact keyframes use the following segment).
    pub fn speed_at(&self, t: f64) -> f64 {
        let kf = &self.keyframes;
        if t < kf[0].0 || t >= kf[kf.len() - 1].0 {
            return 0.0;
        }
        let mut lo = 0;
        let mut hi = kf.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if kf[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, p0) = kf[lo];
        let (t1, p1) = kf[hi];
        p0.dist(p1) / (t1 - t0)
    }

    /// Total path length travelled.
    pub fn path_length(&self) -> f64 {
        self.keyframes.windows(2).map(|w| w[0].1.dist(w[1].1)).sum()
    }
}

/// Binary search for the index `lo` of the segment containing `t`.
/// Requires `kf[0].0 < t < kf[kf.len()-1].0`. Shared by
/// [`Trajectory::position_at`] and the arena's `TrajectoryRef` so the
/// two evaluation paths cannot drift apart.
pub(crate) fn segment_of(kf: &[(f64, Point2)], t: f64) -> usize {
    let mut lo = 0;
    let mut hi = kf.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if kf[mid].0 <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Interpolation inside one segment — the single definition of the
/// expression whose bit-exact behaviour both [`Trajectory::position_at`]
/// and the arena's `TrajectoryRef::position_at` promise.
#[inline]
pub(crate) fn segment_lerp(a: (f64, Point2), b: (f64, Point2), t: f64) -> Point2 {
    let (t0, p0) = a;
    let (t1, p1) = b;
    p0.lerp(p1, (t - t0) / (t1 - t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_midpoints() {
        let t = Trajectory::from_keyframes(vec![
            (0.0, Point2::new(0.0, 0.0)),
            (10.0, Point2::new(10.0, 0.0)),
            (20.0, Point2::new(10.0, 10.0)),
        ]);
        assert_eq!(t.position_at(5.0), Point2::new(5.0, 0.0));
        assert_eq!(t.position_at(15.0), Point2::new(10.0, 5.0));
        assert_eq!(t.position_at(10.0), Point2::new(10.0, 0.0));
    }

    #[test]
    fn clamping_before_and_after() {
        let t = Trajectory::from_keyframes(vec![
            (5.0, Point2::new(1.0, 1.0)),
            (6.0, Point2::new(2.0, 2.0)),
        ]);
        assert_eq!(t.position_at(0.0), Point2::new(1.0, 1.0));
        assert_eq!(t.position_at(100.0), Point2::new(2.0, 2.0));
    }

    #[test]
    fn stationary_everywhere() {
        let t = Trajectory::stationary(Point2::new(3.0, 4.0));
        for time in [0.0, 1.0, 1e6] {
            assert_eq!(t.position_at(time), Point2::new(3.0, 4.0));
        }
        assert_eq!(t.path_length(), 0.0);
    }

    #[test]
    fn speeds() {
        let t = Trajectory::from_keyframes(vec![
            (0.0, Point2::new(0.0, 0.0)),
            (10.0, Point2::new(100.0, 0.0)), // 10 m/s
            (20.0, Point2::new(100.0, 0.0)), // pause
        ]);
        assert!((t.speed_at(5.0) - 10.0).abs() < 1e-12);
        assert_eq!(t.speed_at(15.0), 0.0);
        assert_eq!(t.speed_at(25.0), 0.0);
    }

    #[test]
    fn path_length_sums_segments() {
        let t = Trajectory::from_keyframes(vec![
            (0.0, Point2::new(0.0, 0.0)),
            (1.0, Point2::new(3.0, 4.0)),
            (2.0, Point2::new(3.0, 0.0)),
        ]);
        assert!((t.path_length() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_keyframes_panic() {
        Trajectory::from_keyframes(vec![(1.0, Point2::ORIGIN), (1.0, Point2::new(1.0, 0.0))]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_keyframes_panic() {
        Trajectory::from_keyframes(Vec::new());
    }
}
