//! Refactor-safety properties for trajectory evaluation: the fast paths
//! in [`Trajectory::position_at`] (O(1) 1-/2-keyframe returns) and the
//! arena view's hint-accelerated path must be *bit-identical* to the
//! plain binary-search reference on every input — the simulator's grid
//! exactness and run determinism both hang on position evaluation being
//! a pure function of `(keyframes, t)`.

use glr_geometry::Point2;
use glr_mobility::{DeploymentArena, MobilityModel, RandomWaypoint, Region, Trajectory};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-arena implementation, verbatim: clamp, then binary search,
/// then lerp. The reference every fast path is checked against.
fn reference_position_at(kf: &[(f64, Point2)], t: f64) -> Point2 {
    if t <= kf[0].0 {
        return kf[0].1;
    }
    if t >= kf[kf.len() - 1].0 {
        return kf[kf.len() - 1].1;
    }
    let mut lo = 0;
    let mut hi = kf.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if kf[mid].0 <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (t0, p0) = kf[lo];
    let (t1, p1) = kf[hi];
    p0.lerp(p1, (t - t0) / (t1 - t0))
}

fn assert_bits_eq(want: Point2, got: Point2, ctx: &str) {
    assert_eq!(want.x.to_bits(), got.x.to_bits(), "x diverged: {ctx}");
    assert_eq!(want.y.to_bits(), got.y.to_bits(), "y diverged: {ctx}");
}

/// Strictly-increasing keyframe times with arbitrary finite positions.
fn keyframes_strategy(max_len: usize) -> impl Strategy<Value = Vec<(f64, Point2)>> {
    proptest::collection::vec(((0.01f64..10.0), (-1e4f64..1e4, -1e4f64..1e4)), 1..max_len).prop_map(
        |steps| {
            let mut t = 0.0;
            steps
                .into_iter()
                .map(|(dt, (x, y))| {
                    t += dt;
                    (t, Point2::new(x, y))
                })
                .collect()
        },
    )
}

proptest! {
    /// Every query against every trajectory length (1, 2 and n keyframes,
    /// so all three evaluation paths) matches the binary-search reference
    /// bit for bit — including queries at exact keyframe times and
    /// outside the covered interval.
    #[test]
    fn fast_paths_match_binary_search(
        kf in keyframes_strategy(12),
        queries in proptest::collection::vec(0.0f64..130.0, 1..40),
    ) {
        let traj = Trajectory::from_keyframes(kf.clone());
        let arena = DeploymentArena::from_trajectories(std::slice::from_ref(&traj));
        for &q in &queries {
            let want = reference_position_at(&kf, q);
            assert_bits_eq(want, traj.position_at(q), &format!("Trajectory, t={q}"));
            // The arena view carries hint state *across* queries; feeding
            // it the same non-monotone sequence exercises stale hints.
            assert_bits_eq(want, arena.position_at(0, q), &format!("arena, t={q}"));
        }
        // Exact keyframe times are the boundary the segment choice could
        // get wrong; check every one of them on both paths.
        for &(t, p) in &kf {
            assert_bits_eq(p, traj.position_at(t), &format!("keyframe t={t}"));
            assert_bits_eq(p, arena.position_at(0, t), &format!("arena keyframe t={t}"));
        }
    }
}

/// A realistic random-waypoint deployment: the arena must agree with the
/// `Vec<Trajectory>` it interned at every node and time, bit for bit.
#[test]
fn arena_matches_deployment_bit_exactly() {
    let region = Region::PAPER_STRIP;
    let model = RandomWaypoint::paper(region);
    let mut rng = StdRng::seed_from_u64(2024);
    let trajs = model.deployment(region, 300, 900.0, &mut rng);
    let arena = DeploymentArena::from_trajectories(&trajs);
    for (i, traj) in trajs.iter().enumerate() {
        for step in 0..64 {
            let t = step as f64 * 14.3;
            assert_bits_eq(
                traj.position_at(t),
                arena.position_at(i, t),
                &format!("node {i} t {t}"),
            );
        }
    }
}
