//! Criterion micro-benchmarks of the computational kernels behind GLR:
//! Delaunay triangulation, k-LDTG construction, node-local spanner
//! derivation, DSTD tree extraction, and face routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_core::{spanner_neighbors, SpannerMode};
use glr_geometry::{
    dstd_next_hop, greedy_face_route, k_ldtg, ldtg_local_neighbors, unit_disk_graph, DstdKind,
    Point2, Triangulation,
};
use glr_sim::{NeighborEntry, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_points(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h)))
        .collect()
}

fn bench_delaunay(c: &mut Criterion) {
    let mut g = c.benchmark_group("delaunay");
    for n in [16usize, 32, 64, 128, 256] {
        let pts = random_points(n, 1000.0, 1000.0, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| Triangulation::build(black_box(pts)))
        });
    }
    g.finish();
}

fn bench_k_ldtg(c: &mut Criterion) {
    let mut g = c.benchmark_group("k_ldtg");
    for n in [25usize, 50, 100] {
        let pts = random_points(n, 1000.0, 1000.0, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| k_ldtg(black_box(pts), 250.0, 2))
        });
    }
    g.finish();
}

fn bench_local_spanner(c: &mut Criterion) {
    // The per-route-check hot path: a node's local spanner from its view.
    let mut g = c.benchmark_group("local_spanner");
    for view_size in [8usize, 16, 32] {
        let pts = random_points(view_size + 1, 300.0, 300.0, 11);
        let view: Vec<NeighborEntry> = pts[1..]
            .iter()
            .enumerate()
            .map(|(i, &p)| NeighborEntry {
                id: NodeId(i as u32 + 1),
                pos: p,
                heard_at: SimTime::from_secs(1.0),
            })
            .collect();
        let one_hop: Vec<NodeId> = view.iter().map(|e| e.id).collect();
        for (name, mode) in [
            ("local_delaunay", SpannerMode::LocalDelaunay),
            ("k_local", SpannerMode::KLocalDelaunay),
        ] {
            g.bench_function(BenchmarkId::new(name, view_size), |b| {
                b.iter(|| {
                    spanner_neighbors(
                        black_box(pts[0]),
                        black_box(&view),
                        &one_hop,
                        150.0,
                        2,
                        mode,
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_ldtg_local_view(c: &mut Criterion) {
    let pts = random_points(30, 300.0, 300.0, 13);
    c.bench_function("ldtg_local_neighbors/30", |b| {
        b.iter(|| ldtg_local_neighbors(black_box(&pts), 0, 150.0, 2))
    });
}

fn bench_dstd(c: &mut Criterion) {
    let pts = random_points(24, 200.0, 200.0, 3);
    let nbrs: Vec<(usize, Point2)> = pts.iter().copied().enumerate().skip(1).collect();
    let me = pts[0];
    let dst = Point2::new(5000.0, 5000.0);
    c.bench_function("dstd_next_hop/24", |b| {
        b.iter(|| {
            (
                dstd_next_hop(black_box(me), dst, &nbrs, DstdKind::Max),
                dstd_next_hop(black_box(me), dst, &nbrs, DstdKind::Min),
                dstd_next_hop(black_box(me), dst, &nbrs, DstdKind::Mid(0)),
            )
        })
    });
}

fn bench_face_route(c: &mut Criterion) {
    // Offline GFG on a connected LDTG.
    let mut seed = 17;
    let (pts, g) = loop {
        let pts = random_points(60, 1000.0, 1000.0, seed);
        let udg = unit_disk_graph(&pts, 300.0);
        if udg.is_connected() {
            break (pts.clone(), k_ldtg(&pts, 300.0, 2));
        }
        seed += 1;
    };
    c.bench_function("greedy_face_route/60", |b| {
        b.iter(|| greedy_face_route(black_box(&g), &pts, 0, 59, 10_000))
    });
}

criterion_group!(
    kernels,
    bench_delaunay,
    bench_k_ldtg,
    bench_local_spanner,
    bench_ldtg_local_view,
    bench_dstd,
    bench_face_route
);
criterion_main!(kernels);
