//! Isolated benchmarks of the engine's event queue: the hand-rolled
//! 4-ary [`TimedQueue`] vs the `BinaryHeap<Reverse<…>>` it replaced,
//! under the engine's actual access pattern — a standing population of
//! events where every pop schedules a successor (the beacon cycle) —
//! plus the same-tick `drain_due` batch pop.
//!
//! Regenerate the committed artefact with:
//!
//! ```sh
//! CRITERION_JSON=BENCH_sim.json cargo bench -p glr-bench --bench event_queue
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_sim::{SimTime, TimedQueue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Deterministic pseudo-random due-time offsets (beacon-style: one
/// period ahead, with jitter).
fn offsets(n: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            1.0 + ((state >> 40) as f64) / ((1u64 << 24) as f64)
        })
        .collect()
}

/// Pop-one/push-one churn over a standing population of `n` events —
/// the engine's steady state. Returns a checksum so the work is real.
fn churn_timed(n: usize, rounds: usize) -> u64 {
    let offs = offsets(n);
    let mut q = TimedQueue::new();
    for (i, &dt) in offs.iter().enumerate() {
        q.schedule(SimTime::from_secs(dt), i as u64);
    }
    let mut check = 0u64;
    for r in 0..rounds * n {
        let (at, item) = q.pop().expect("queue never empties");
        check = check.wrapping_add(item);
        q.schedule(at + offs[r % n], item);
    }
    check
}

/// The same churn over `BinaryHeap<Reverse<(at, seq, item)>>` — the
/// pre-PR-4 representation (seq kept for the FIFO-within-tick order).
fn churn_binary(n: usize, rounds: usize) -> u64 {
    let offs = offsets(n);
    let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, &dt) in offs.iter().enumerate() {
        seq += 1;
        q.push(Reverse((SimTime::from_secs(dt), seq, i as u64)));
    }
    let mut check = 0u64;
    for r in 0..rounds * n {
        let Reverse((at, _, item)) = q.pop().expect("queue never empties");
        check = check.wrapping_add(item);
        seq += 1;
        q.push(Reverse((at + offs[r % n], seq, item)));
    }
    check
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_churn");
    for n in [1_000usize, 20_000, 100_000] {
        g.bench_function(BenchmarkId::new("binary_heap", n), |b| {
            b.iter(|| churn_binary(black_box(n), 2))
        });
        g.bench_function(BenchmarkId::new("timed_4ary", n), |b| {
            b.iter(|| churn_timed(black_box(n), 2))
        });
    }
    g.finish();
}

/// Same-tick batches: schedule `n` events across `n / 8` distinct
/// timestamps and drain tick by tick into a reused buffer.
fn bench_drain_due(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_drain_due");
    for n in [1_000usize, 100_000] {
        g.bench_function(BenchmarkId::new("timed_4ary", n), |b| {
            b.iter(|| {
                let mut q = TimedQueue::new();
                for i in 0..n {
                    q.schedule(SimTime::from_secs((i % (n / 8)) as f64), i as u64);
                }
                let mut batch = Vec::new();
                let mut drained = 0usize;
                while let Some(at) = q.next_at() {
                    batch.clear();
                    q.drain_due(at, &mut batch);
                    drained += batch.len();
                }
                assert_eq!(drained, n);
                drained
            })
        });
    }
    g.finish();
}

criterion_group!(event_queue, bench_churn, bench_drain_due);
criterion_main!(event_queue);
