//! Criterion benchmarks of the engine's neighbor queries: uniform-grid
//! spatial index vs the linear-scan reference, at 50 / 500 / 5000 nodes,
//! whole-engine runs under both backends at 500 nodes, and the beacon
//! hot path — `Arc`-interned snapshots + incremental two-hop merges
//! (`TableBackend::Shared`) vs the clone-and-merge reference
//! (`TableBackend::CloneMerge`) — at 500 / 5000 / 10000 nodes.
//!
//! Node density is held at the paper's (50 nodes per 1500 m × 300 m
//! strip) by scaling the region with √n, so per-query result sizes stay
//! comparable and the measured difference is the index, not the answer.
//!
//! Regenerate the committed artefact with:
//!
//! ```sh
//! CRITERION_JSON=BENCH_sim.json cargo bench -p glr-bench --bench neighbors
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_mobility::{DeploymentArena, MobilityModel, RandomWaypoint, Region};
use glr_sim::{
    IndexBackend, NeighborEntry, NeighborTables, NodeId, SimConfig, SimTime, Simulation,
    SpatialIndex, TableBackend, Workload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const RANGE: f64 = 100.0;
const SIZES: [usize; 3] = [50, 500, 5000];

/// Paper-density deployment: area grows linearly with n.
fn deployment(n: usize, duration: f64, seed: u64) -> (Region, DeploymentArena) {
    let scale = (n as f64 / 50.0).sqrt();
    let region = Region::new(1500.0 * scale, 300.0 * scale);
    let model = RandomWaypoint::new(region, 0.0, 20.0, 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let trajs =
        DeploymentArena::from_trajectories(&model.deployment(region, n, duration, &mut rng));
    (region, trajs)
}

fn index(backend: IndexBackend, n: usize, trajs: &DeploymentArena) -> SpatialIndex {
    let mut idx = SpatialIndex::new(backend, n, 20.0, RANGE);
    idx.refresh(SimTime::ZERO, trajs);
    idx
}

/// One query batch: a radius query around each of 64 probe nodes, at a
/// time slightly after the grid snapshot (so the drift path is exercised).
fn query_batch(idx: &SpatialIndex, trajs: &DeploymentArena, n: usize) -> usize {
    let now = SimTime::from_secs(0.5);
    let mut total = 0;
    for k in 0..64usize {
        let u = k * n / 64;
        let center = trajs.position_at(u, now.as_secs());
        total += idx
            .nodes_within(trajs, now, center, RANGE, NodeId(u as u32))
            .len();
    }
    total
}

fn bench_nodes_within(c: &mut Criterion) {
    let mut g = c.benchmark_group("nodes_within_64q");
    for n in SIZES {
        let (_, trajs) = deployment(n, 10.0, 42);
        for (name, backend) in [
            ("linear", IndexBackend::LinearScan),
            ("grid", IndexBackend::Grid),
        ] {
            let idx = index(backend, n, &trajs);
            g.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| query_batch(black_box(&idx), &trajs, n))
            });
        }
    }
    g.finish();
}

fn bench_engine_end_to_end(c: &mut Criterion) {
    // Whole-engine comparison at 500 nodes: beacons + contention queries
    // dominate, so the index backend shows up directly in events/second.
    struct Idle;
    impl glr_sim::Protocol for Idle {
        type Packet = ();
        fn on_message_created(&mut self, _: &mut glr_sim::Ctx<'_, ()>, _: glr_sim::MessageInfo) {}
        fn on_packet(&mut self, _: &mut glr_sim::Ctx<'_, ()>, _: glr_sim::NodeId, _: ()) {}
    }
    let mut g = c.benchmark_group("engine_500n_10s");
    for (name, backend) in [
        ("linear", IndexBackend::LinearScan),
        ("grid", IndexBackend::Grid),
    ] {
        g.bench_function(BenchmarkId::new(name, 500), |b| {
            b.iter(|| {
                let scale = (500.0f64 / 50.0).sqrt();
                let cfg = SimConfig::paper(RANGE, 7)
                    .with_nodes(500)
                    .with_region(Region::new(1500.0 * scale, 300.0 * scale))
                    .with_duration(10.0)
                    .with_neighbor_index(backend);
                Simulation::new(black_box(cfg), Workload::default(), |_, _| Idle).run()
            })
        });
    }
    g.finish();
}

/// One backend's beacon workload: `rounds` full beacon rounds — per
/// beacon one snapshot materialisation, then a `record_beacon` at each
/// radio neighbour — with a `fresh_view` (2-hop) query at 64 probe
/// nodes per round, the mix a beacon interval of protocol activity
/// generates.
fn beacon_rounds(
    backend: TableBackend,
    n: usize,
    positions: &[glr_geometry::Point2],
    nbrs: &[Vec<NodeId>],
    rounds: usize,
) -> (usize, usize) {
    let mut tables = NeighborTables::new(n, 2.5, backend);
    let mut contacts = 0usize;
    let mut seen = 0usize;
    for round in 0..rounds {
        let now = SimTime::from_secs(round as f64 + 1.0);
        for u in 0..n {
            let sender = NeighborEntry {
                id: NodeId(u as u32),
                pos: positions[u],
                heard_at: now,
            };
            let snap = tables.beacon_snapshot(NodeId(u as u32), now);
            for &v in &nbrs[u] {
                contacts += usize::from(!tables.record_beacon(v, sender, &snap, now));
            }
        }
        for k in 0..64usize {
            let u = NodeId((k * n / 64) as u32);
            seen += tables.fresh_view(u, now).len();
        }
    }
    (contacts, seen)
}

/// Static deployment with the region scaled by `(n/50)^exponent`:
/// exponent 0.5 holds the paper's node density (constant radio degree),
/// 0.25 grows density with `√n` — the dense regime where the reference
/// backend's per-reception merge is quadratic in the degree.
fn tables_fixture(
    n: usize,
    exponent: f64,
    seed: u64,
) -> (Vec<glr_geometry::Point2>, Vec<Vec<NodeId>>) {
    let scale = (n as f64 / 50.0).powf(exponent);
    let region = Region::new(1500.0 * scale, 300.0 * scale);
    let model = RandomWaypoint::new(region, 0.0, 20.0, 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let trajs = DeploymentArena::from_trajectories(&model.deployment(region, n, 10.0, &mut rng));
    let positions: Vec<_> = (0..n).map(|u| trajs.position_at(u, 0.0)).collect();
    let mut idx = SpatialIndex::new(IndexBackend::Grid, n, 20.0, RANGE);
    idx.refresh(SimTime::ZERO, &trajs);
    let nbrs: Vec<Vec<NodeId>> = (0..n)
        .map(|u| idx.nodes_within(&trajs, SimTime::ZERO, positions[u], RANGE, NodeId(u as u32)))
        .collect();
    (positions, nbrs)
}

/// The beacon hot path at the paper's density (degree stays ~constant
/// as `n` grows): interned snapshots vs the clone-and-merge reference.
/// Neighbour lists are precomputed so the measurement is the table
/// layer, not the spatial index.
fn bench_beacon_paper_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("beacon_3rounds_64q");
    for n in [500usize, 5000, 10000] {
        let (positions, nbrs) = tables_fixture(n, 0.5, 42);
        for (name, backend) in [
            ("clone", TableBackend::CloneMerge),
            ("shared", TableBackend::Shared),
        ] {
            g.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| black_box(beacon_rounds(backend, n, &positions, &nbrs, 3)))
            });
        }
    }
    g.finish();
}

/// The beacon hot path in the dense regime (density grows with `√n`, so
/// the radio degree grows too — the regime that dominates 10k+-node
/// scenarios whose deployment area does not scale with the swarm). The
/// reference pays O(degree × two-hop table) per reception; the shared
/// backend pays O(1).
fn bench_beacon_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("beacon_dense_1round_64q");
    for n in [500usize, 5000, 10000] {
        let (positions, nbrs) = tables_fixture(n, 0.25, 42);
        for (name, backend) in [
            ("clone", TableBackend::CloneMerge),
            ("shared", TableBackend::Shared),
        ] {
            g.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| black_box(beacon_rounds(backend, n, &positions, &nbrs, 1)))
            });
        }
    }
    g.finish();
}

criterion_group!(
    neighbors,
    bench_nodes_within,
    bench_engine_end_to_end,
    bench_beacon_paper_density,
    bench_beacon_dense
);
criterion_main!(neighbors);
