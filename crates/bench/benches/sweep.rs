//! Criterion benchmarks of the sweep engine's work-queue scheduling:
//! cells/second for a fixed 16-cell × 2-run grid, serial vs 4 vs 8
//! worker threads. The grid mixes cheap and expensive cells (node count
//! axis) so the work queue's load balancing — not just raw fan-out — is
//! what's measured.
//!
//! Regenerate the committed artefact with:
//!
//! ```sh
//! CRITERION_JSON=BENCH_sweep.json cargo bench -p glr-bench --bench sweep
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_sim::{
    Ctx, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, RunStats, Scenario, SimConfig,
    Sweep,
};
use std::hint::black_box;

/// Forwards to the destination when it is in (true) range.
struct Direct;

impl Protocol for Direct {
    type Packet = MessageInfo;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, MessageInfo>, info: MessageInfo) {
        if ctx.true_pos(info.dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
            let _ = ctx.send(info.dst, info, info.size, PacketKind::Data);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, MessageInfo>, _: NodeId, pkt: MessageInfo) {
        if pkt.dst == ctx.me() {
            ctx.deliver(pkt.id, 1);
        }
    }
}

/// A 16-cell grid over range × node count × medium with deliberately
/// uneven per-cell cost (the 80-node cells are ~4x the 30-node ones).
fn grid() -> Vec<Scenario> {
    let mut cells = Vec::new();
    for range in [75.0, 125.0, 175.0, 250.0] {
        for (n_nodes, medium) in [
            (30, MediumKind::Contention),
            (30, MediumKind::shadowing()),
            (80, MediumKind::Contention),
            (80, MediumKind::Ideal),
        ] {
            let cfg = SimConfig::paper(range, 42)
                .with_nodes(n_nodes)
                .with_duration(15.0);
            cells.push(
                Scenario::new(format!("r{range}-n{n_nodes}-{medium}"), cfg)
                    .with_messages(20)
                    .with_medium(medium),
            );
        }
    }
    cells
}

fn run_cell(sc: &Scenario, run: usize) -> RunStats {
    sc.run_nth(run, |_, _| Direct)
}

fn bench_sweep_scheduling(c: &mut Criterion) {
    let cells = grid();
    let mut g = c.benchmark_group("sweep_16c_x2r");
    g.bench_function(BenchmarkId::new("serial", 1), |b| {
        b.iter(|| {
            Sweep::new(2)
                .with_threads(1)
                .execute_serial(black_box(&cells), run_cell)
        })
    });
    for threads in [4usize, 8] {
        g.bench_function(BenchmarkId::new("queue", threads), |b| {
            b.iter(|| {
                Sweep::new(2)
                    .with_threads(threads)
                    .execute(black_box(&cells), run_cell)
            })
        });
    }
    g.finish();
}

criterion_group!(sweep, bench_sweep_scheduling);
criterion_main!(sweep);
