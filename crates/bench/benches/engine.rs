//! Whole-engine benchmarks for the single-run scaling work: the dense
//! 10k-node beacon workload (the regime PR 4's flat arena, batched
//! delivery and single-probe tables target), the 100k-node paper-density
//! tier, serial vs parallel engine rows, and the deployment memory
//! footprint (arena vs `Vec<Trajectory>`).
//!
//! The dense group grows node density with `√n` (region scaled by
//! `(n/50)^0.25`), the regime where every beacon fans out to ~50
//! receivers; the 100k group holds the paper's density (degree ~3.5)
//! and scales the area instead.
//!
//! Regenerate the committed artefact with:
//!
//! ```sh
//! CRITERION_JSON=BENCH_sim.json cargo bench -p glr-bench --bench engine
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_mobility::{DeploymentArena, MobilityModel, RandomWaypoint, Region};
use glr_sim::{Ctx, EngineKind, MessageInfo, NodeId, Protocol, SimConfig, Simulation, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Idle;
impl Protocol for Idle {
    type Packet = ();
    fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
    fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
}

/// Region scaled by `(n/50)^exponent`: 0.5 holds paper density, 0.25
/// grows density (and radio degree) with `√n`.
fn config(n: usize, exponent: f64, duration: f64, engine: EngineKind) -> SimConfig {
    let scale = (n as f64 / 50.0).powf(exponent);
    SimConfig::paper(100.0, 42)
        .with_nodes(n)
        .with_region(Region::new(1500.0 * scale, 300.0 * scale))
        .with_duration(duration)
        .with_engine(engine)
}

/// The acceptance workload: 10k nodes in the dense regime (degree ~48),
/// two full beacon rounds, beacons only — the pure beacon storm.
fn bench_engine_dense10k(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_dense10k_2s");
    for (name, engine) in [
        ("serial", EngineKind::Serial),
        ("parallel4", EngineKind::Parallel(4)),
    ] {
        g.bench_function(BenchmarkId::new(name, 10_000), |b| {
            b.iter(|| {
                let cfg = config(10_000, 0.25, 2.0, engine);
                let wl = Workload::paper_style(cfg.n_nodes, 50, 1000);
                Simulation::new(black_box(cfg), wl, |_, _| Idle).run()
            })
        });
    }
    g.finish();
}

/// 100k nodes at the paper's density for one simulated second — the
/// scale the ROADMAP's open item named. One full beacon round from every
/// node plus epidemic-style empty traffic. Also prints the per-node
/// protocol-state footprint (neighbour tables after the run) against
/// the PR-4 layout baseline, for the committed artefact's
/// `neighbor_footprint_bytes` rows.
fn bench_engine_100k(c: &mut Criterion) {
    {
        let cfg = config(100_000, 0.5, 1.0, EngineKind::Serial);
        let n = cfg.n_nodes;
        let wl = Workload::paper_style(n, 100, 1000);
        Simulation::new(cfg, wl, |_, _| Idle).run_inspect(|sim| {
            let fp = sim.neighbor_footprint();
            let baseline = sim.neighbor_footprint_baseline();
            println!(
                "neighbor_footprint/{n}: tables {} B + snapshots {} B = {} B \
                 ({} B/node; PR-4 layout equivalent {} B = {} B/node)",
                fp.table_bytes,
                fp.snapshot_bytes,
                fp.total_bytes(),
                fp.bytes_per_node(),
                baseline,
                baseline / n,
            );
        });
    }
    let mut g = c.benchmark_group("engine_100k_1s");
    for (name, engine) in [
        ("serial", EngineKind::Serial),
        ("parallel4", EngineKind::Parallel(4)),
    ] {
        g.bench_function(BenchmarkId::new(name, 100_000), |b| {
            b.iter(|| {
                let cfg = config(100_000, 0.5, 1.0, engine);
                let wl = Workload::paper_style(cfg.n_nodes, 100, 1000);
                Simulation::new(black_box(cfg), wl, |_, _| Idle).run()
            })
        });
    }
    g.finish();
}

/// Forced pool dispatch at CI-smoke scale: a dense 2k-node beacon storm
/// with `parallel_grain` 1, so *every* reception fans out through the
/// persistent worker pool. On multi-core hosts this shows the fan-out
/// win; on the 1-core container it bounds the dispatch overhead the
/// pool must keep negligible (the regression this row exists to catch —
/// the per-event `thread::scope` spawn it replaced made this workload
/// slower than serial).
fn bench_pool_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_pool_fanout");
    for (name, engine) in [
        ("serial", EngineKind::Serial),
        ("parallel4", EngineKind::Parallel(4)),
    ] {
        g.bench_function(BenchmarkId::new(name, 2_000), |b| {
            b.iter(|| {
                let cfg = config(2_000, 0.25, 1.0, engine).with_parallel_grain(1);
                let wl = Workload::paper_style(cfg.n_nodes, 20, 1000);
                Simulation::new(black_box(cfg), wl, |_, _| Idle).run()
            })
        });
    }
    g.finish();
}

/// Deployment memory footprint: bytes per node of the interned arena vs
/// the per-node `Vec<Trajectory>` it replaced, printed for the committed
/// artefact's note (the criterion shim reports times, not sizes, so the
/// bench measures the interning pass and prints the byte counts).
fn bench_deployment_footprint(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment_intern");
    for n in [10_000usize, 100_000] {
        let scale = (n as f64 / 50.0).sqrt();
        let region = Region::new(1500.0 * scale, 300.0 * scale);
        let model = RandomWaypoint::new(region, 0.0, 20.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        // Paper-duration trajectories: this is where keyframe counts —
        // and the per-node Vec overhead — are realistic.
        let trajs = model.deployment(region, n, 3800.0, &mut rng);
        let arena = DeploymentArena::from_trajectories(&trajs);
        println!(
            "deployment_footprint/{n}: arena {} B ({} B/node, {} keyframes), \
             Vec<Trajectory> {} B ({} B/node)",
            arena.heap_bytes(),
            arena.heap_bytes() / n,
            arena.total_keyframes(),
            DeploymentArena::vec_equivalent_bytes(&trajs),
            DeploymentArena::vec_equivalent_bytes(&trajs) / n,
        );
        g.bench_function(BenchmarkId::new("arena_build", n), |b| {
            b.iter(|| DeploymentArena::from_trajectories(black_box(&trajs)).total_keyframes())
        });
    }
    g.finish();
}

criterion_group!(
    engine,
    bench_engine_dense10k,
    bench_engine_100k,
    bench_pool_fanout,
    bench_deployment_footprint
);
criterion_main!(engine);
