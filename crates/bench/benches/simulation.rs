//! Criterion benchmarks of whole-simulation throughput: how fast the DES
//! engine pushes a paper-scale scenario, per protocol and radio range.
//!
//! These are wall-clock efficiency benchmarks of the *simulator* (events
//! per second), complementing the `experiments` binary which reports the
//! *protocol* metrics of every paper table/figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glr_core::{Glr, GlrConfig};
use glr_epidemic::Epidemic;
use glr_sim::{SimConfig, Simulation, Workload};
use std::hint::black_box;

/// Short but representative slice of the paper scenario: 50 nodes, 300
/// simulated seconds, 200 messages.
fn short_config(radius: f64) -> SimConfig {
    SimConfig::paper(radius, 42).with_duration(300.0)
}

fn bench_glr_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_glr");
    g.sample_size(10);
    for radius in [50.0, 100.0, 250.0] {
        g.bench_function(BenchmarkId::from_parameter(radius as u64), |b| {
            b.iter(|| {
                let cfg = short_config(radius);
                let wl = Workload::paper_style(50, 200, 1000);
                let stats =
                    Simulation::new(black_box(cfg), wl, Glr::factory(GlrConfig::paper())).run();
                black_box(stats.messages_delivered())
            })
        });
    }
    g.finish();
}

fn bench_epidemic_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_epidemic");
    g.sample_size(10);
    for radius in [50.0, 100.0, 250.0] {
        g.bench_function(BenchmarkId::from_parameter(radius as u64), |b| {
            b.iter(|| {
                let cfg = short_config(radius);
                let wl = Workload::paper_style(50, 200, 1000);
                let stats = Simulation::new(black_box(cfg), wl, Epidemic::new).run();
                black_box(stats.messages_delivered())
            })
        });
    }
    g.finish();
}

fn bench_idle_engine(c: &mut Criterion) {
    // Engine overhead floor: beacons + stats sampling, no traffic.
    struct Idle;
    impl glr_sim::Protocol for Idle {
        type Packet = ();
        fn on_message_created(&mut self, _: &mut glr_sim::Ctx<'_, ()>, _: glr_sim::MessageInfo) {}
        fn on_packet(&mut self, _: &mut glr_sim::Ctx<'_, ()>, _: glr_sim::NodeId, _: ()) {}
    }
    c.bench_function("sim_idle/300s", |b| {
        b.iter(|| {
            let cfg = short_config(100.0);
            Simulation::new(black_box(cfg), Workload::default(), |_, _| Idle).run()
        })
    });
}

criterion_group!(
    simulation,
    bench_glr_simulation,
    bench_epidemic_simulation,
    bench_idle_engine
);
criterion_main!(simulation);
