//! Best-of-N wall-clock probe for the engine scaling workloads — the
//! tool behind the cross-tree comparisons in `BENCH_sim.json`'s
//! `_note_engine` (criterion rows are single iterations on a shared
//! core and read high; this takes the minimum of N runs of exactly the
//! bench workloads, and is copied into the previous PR's tree to
//! measure both in one sitting).
//!
//! ```sh
//! cargo run --release -p glr-bench --bin engine_probe        # N = 3
//! cargo run --release -p glr-bench --bin engine_probe -- 5   # N = 5
//! ```

use glr_mobility::Region;
use glr_sim::{Ctx, EngineKind, MessageInfo, NodeId, Protocol, SimConfig, Simulation, Workload};
use std::time::Instant;

struct Idle;
impl Protocol for Idle {
    type Packet = ();
    fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
    fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
}

/// Mirrors `benches/engine.rs`: region scaled by `(n/50)^exponent`.
fn config(n: usize, exponent: f64, duration: f64, engine: EngineKind) -> SimConfig {
    let scale = (n as f64 / 50.0).powf(exponent);
    SimConfig::paper(100.0, 42)
        .with_nodes(n)
        .with_region(Region::new(1500.0 * scale, 300.0 * scale))
        .with_duration(duration)
        .with_engine(engine)
}

fn best_of(n: usize, mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut check = 0;
    for _ in 0..n {
        let t = Instant::now();
        check = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, check)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("repeat count"))
        .unwrap_or(3);
    println!("engine probe, best of {n} (workloads of benches/engine.rs):");
    let cases: [(&str, usize, f64, f64, usize, EngineKind); 6] = [
        (
            "dense10k_2s/serial",
            10_000,
            0.25,
            2.0,
            50,
            EngineKind::Serial,
        ),
        (
            "dense10k_2s/parallel4",
            10_000,
            0.25,
            2.0,
            50,
            EngineKind::Parallel(4),
        ),
        ("100k_1s/serial", 100_000, 0.5, 1.0, 100, EngineKind::Serial),
        (
            "100k_1s/parallel4",
            100_000,
            0.5,
            1.0,
            100,
            EngineKind::Parallel(4),
        ),
        (
            "pool2k_grain1_1s/serial",
            2_000,
            0.25,
            1.0,
            20,
            EngineKind::Serial,
        ),
        (
            "pool2k_grain1_1s/parallel4",
            2_000,
            0.25,
            1.0,
            20,
            EngineKind::Parallel(4),
        ),
    ];
    for (name, nodes, exp, dur, msgs, engine) in cases {
        let (secs, check) = best_of(n, || {
            let cfg = config(nodes, exp, dur, engine)
                .with_parallel_grain(if name.contains("grain1") { 1 } else { 512 });
            let wl = Workload::paper_style(cfg.n_nodes, msgs, 1000);
            let stats = Simulation::new(cfg, wl, |_, _| Idle).run();
            stats.control_tx
        });
        println!("  {name:<26} {:>9.1} ms  (control_tx {check})", secs * 1e3);
    }
}
