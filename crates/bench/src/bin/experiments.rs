//! Regenerates every table and figure of the paper's evaluation section,
//! plus the ablations called out in DESIGN.md — all on the sweep engine.
//!
//! ```text
//! cargo run --release -p glr-bench --bin experiments -- all
//! cargo run --release -p glr-bench --bin experiments -- fig4 tab6
//! cargo run --release -p glr-bench --bin experiments -- --full fig7
//! cargo run --release -p glr-bench --bin experiments -- --quick all
//! cargo run --release -p glr-bench --bin experiments -- --quick media-compare
//! ```
//!
//! Every simulation table/figure is expanded into declarative
//! [`Cell`]s (scenario × protocol) and executed in ONE work-queue sweep
//! across all requested experiments, so threads stay busy across table
//! boundaries. Multi-machine runs split the same cell list with
//! `--shard i/n` and write mergeable JSON:
//!
//! ```text
//! experiments --quick --shard 0/2 --json s0.json tab6   # machine A
//! experiments --quick --shard 1/2 --json s1.json tab6   # machine B
//! experiments merge merged.json s0.json s1.json         # anywhere
//! ```
//!
//! The merged file is byte-identical to what `--json` would have written
//! unsharded (asserted by `crates/sim/tests/sweep_shard.rs` and by CI).
//! Run all shards on the same build: grids containing the shadowing
//! medium evaluate libm-rounded `ln`/`cos`/`log10`, so hosts with a
//! different libm may diverge in the last ulp (see
//! `glr_sim::ShadowingMedium`).
//!
//! Effort levels: `--quick` (2 seeds, quarter workloads — CI smoke),
//! default (5 seeds, full workloads), `--full` (10 seeds, full workloads —
//! the paper's protocol). All values print as `mean ± 90 % CI` like the
//! paper's tables.

use glr_bench::{
    execute_cells, fmt_summary, header, plot_data, row, svg_topology, Cell, Effort, Series,
};
use glr_core::{CopyPolicy, GlrConfig, LocationMode, SpannerMode};
use glr_geometry::{
    euclidean_stretch, extract_dstd_path, k_ldtg, unit_disk_graph, DstdKind, Point2,
};
use glr_sim::{CellReport, EngineKind, MediumKind, ReportSet, Scenario, SimConfig, ThreadBudget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Renders one row's `row_span` cell reports into column strings.
type RowRender = Box<dyn Fn(&[CellReport]) -> Vec<String>>;
/// Writes artefact files from a job's full report slice.
type ArtifactFn = Box<dyn Fn(&[CellReport])>;

/// One table/figure: its cells plus how to print a row from each chunk
/// of cell reports.
struct Job {
    title: String,
    columns: Vec<&'static str>,
    /// Row labels; the job owns `rows.len() * row_span` cells, row-major.
    rows: Vec<String>,
    row_span: usize,
    cells: Vec<Cell>,
    render: RowRender,
    note: &'static str,
    artifact: Option<ArtifactFn>,
}

impl Job {
    fn print(&self, reports: &[CellReport]) {
        assert_eq!(reports.len(), self.rows.len() * self.row_span);
        header(&self.title, &self.columns);
        for (i, label) in self.rows.iter().enumerate() {
            let chunk = &reports[i * self.row_span..(i + 1) * self.row_span];
            row(label, &(self.render)(chunk));
        }
        if !self.note.is_empty() {
            println!("{}", self.note);
        }
        if let Some(artifact) = &self.artifact {
            artifact(reports);
        }
    }
}

const USAGE: &str =
    "usage: experiments [--quick|--full] [--threads N] [--engine-threads K] [--shard I/N] \
     [--json PATH] <id>...\n\
     \x20      experiments merge <out.json> <shard.json>...\n\
     \x20 ids: fig1 fig2 fig3 tab2 fig4 fig5 fig6 tab3 fig7 tab4 tab5 tab6\n\
     \x20      ablation-spanner ablation-copies ablation-perturb media-compare all\n\
     \x20 --threads N         total thread budget for this invocation, shared between the\n\
     \x20                     sweep's outer (cell,run) workers and the inner engines\n\
     \x20                     (default: one per core, serial engines)\n\
     \x20 --engine-threads K  run every cell under EngineKind::Parallel(K); with --threads N\n\
     \x20                     the sweep keeps ~N/K outer workers so outer x inner stays\n\
     \x20                     within the budget. Results are identical either way.";

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// FNV-1a over every cell's full `Debug` form (scenario config,
/// workload, medium parameters, protocol config) — two shard
/// invocations agree on this iff they expanded the same grid.
fn grid_digest(cells: &[Cell]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in cells {
        for b in format!("{cell:?}\x1f").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("merge") {
        merge_main(&argv[1..]);
        return;
    }

    let mut effort = Effort::DEFAULT;
    let mut ids: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut engine_threads: Option<usize> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut json: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => effort = Effort::FULL,
            "--quick" => effort = Effort::QUICK,
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die(USAGE));
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| die("--threads expects a number")),
                );
            }
            "--engine-threads" => {
                let v = it.next().unwrap_or_else(|| die(USAGE));
                engine_threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| die("--engine-threads expects a number")),
                );
            }
            "--shard" => {
                let v = it.next().unwrap_or_else(|| die(USAGE));
                let (i, n) = v
                    .split_once('/')
                    .unwrap_or_else(|| die("--shard expects I/N, e.g. 0/2"));
                let i = i.parse().unwrap_or_else(|_| die("--shard expects I/N"));
                let n = n.parse().unwrap_or_else(|_| die("--shard expects I/N"));
                if i >= n {
                    die("--shard index must be < shard count");
                }
                shard = Some((i, n));
            }
            "--json" => json = Some(it.next().unwrap_or_else(|| die(USAGE)).clone()),
            other if other.starts_with("--") => die(USAGE),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        die(USAGE);
    }
    // Catch this before hours of simulation, not after: a sharded run's
    // partial tables are never printed, so without --json every result
    // would be discarded.
    if shard.is_some() && json.is_none() {
        die("--shard without --json would discard all results; add --json PATH");
    }
    let all = ids.iter().any(|i| i == "all");
    let known = [
        "fig1",
        "fig2",
        "fig3",
        "tab2",
        "fig4",
        "fig5",
        "fig6",
        "tab3",
        "fig7",
        "tab4",
        "tab5",
        "tab6",
        "ablation-spanner",
        "ablation-copies",
        "ablation-perturb",
        "media-compare",
    ];
    for id in &ids {
        if id != "all" && !known.contains(&id.as_str()) {
            die(&format!("unknown experiment id {id:?}\n{USAGE}"));
        }
    }
    let want = |id: &str| all || ids.iter().any(|i| i == id);
    println!(
        "GLR reproduction experiments — {} runs/point, workload scale {}/1000",
        effort.runs, effort.scale_pm
    );

    // Static-geometry illustrations (no simulations, nothing to sweep).
    if want("fig1") {
        fig1(effort);
    }
    if want("fig2") {
        fig2();
    }

    // Every simulation experiment becomes a Job; all jobs run as one sweep.
    let mut jobs: Vec<Job> = Vec::new();
    if want("fig3") {
        jobs.push(fig3(effort));
    }
    if want("tab2") {
        jobs.push(tab2(effort));
    }
    if want("fig4") {
        jobs.push(fig45(effort, 50.0, "Figure 4"));
    }
    if want("fig5") {
        jobs.push(fig45(effort, 100.0, "Figure 5"));
    }
    if want("fig6") {
        jobs.push(fig6(effort));
    }
    if want("tab3") {
        jobs.push(tab3(effort));
    }
    if want("fig7") {
        jobs.push(fig7(effort));
    }
    if want("tab4") {
        jobs.push(tab4(effort));
    }
    if want("tab5") {
        jobs.push(tab5(effort));
    }
    if want("tab6") {
        jobs.push(tab6(effort));
    }
    if want("ablation-spanner") {
        jobs.push(ablation_spanner(effort));
    }
    if want("ablation-copies") {
        jobs.push(ablation_copies(effort));
    }
    if want("ablation-perturb") {
        jobs.push(ablation_perturb(effort));
    }
    if want("media-compare") {
        jobs.push(media_compare(effort));
    }
    // Note: no early return when `jobs` is empty — `--json` must still
    // write a (valid, empty) report even for illustration-only runs.
    let cells: Vec<Cell> = jobs.iter().flat_map(|j| j.cells.iter().cloned()).collect();
    // The grid context identifies everything except the shard split, so
    // `merge` can refuse shards from mismatched invocations. The digest
    // covers every cell's full definition (config, workload, medium,
    // protocol), catching grid edits between builds that the id list and
    // cell count alone would miss.
    let sim_ids: Vec<&str> = known
        .iter()
        .copied()
        .filter(|id| !matches!(*id, "fig1" | "fig2") && want(id))
        .collect();
    let context = format!(
        "ids={}; effort={}runs/{}pm; cells={}; grid={:016x}",
        sim_ids.join(","),
        effort.runs,
        effort.scale_pm,
        cells.len(),
        grid_digest(&cells)
    );
    // Resume: a --json file left behind by an interrupted invocation of
    // the *same* grid (matching context) marks its cells as already done;
    // only the missing cells run, and the merged output is byte-identical
    // to an uninterrupted run (runs are pure functions of (cell, seed)).
    let mut existing: Option<ReportSet> = None;
    if let Some(path) = &json {
        if let Ok(text) = std::fs::read_to_string(path) {
            match ReportSet::from_json(&text) {
                Ok(prev) if prev.context == context => {
                    println!(
                        "resuming: {} of {} cells already in {path}",
                        prev.cells.len(),
                        cells.len()
                    );
                    existing = Some(prev);
                }
                Ok(prev) => println!(
                    "not resuming from {path}: it holds a different sweep \
                     (context {:?}); it will be overwritten",
                    prev.context
                ),
                Err(e) => println!("not resuming from {path} (unparseable: {e}); overwriting"),
            }
        }
    }
    let skip: Vec<usize> = existing
        .as_ref()
        .map_or_else(Vec::new, ReportSet::completed_cells);
    // Execution knobs are applied to a *copy* of the grid, after the
    // context digest: engine kind and thread budget never change
    // results (the engine-equivalence guarantee), so shards run with
    // different --threads / --engine-threads on different machines must
    // still merge byte-identically.
    // --engine-threads alone must not oversubscribe: without an
    // explicit budget, cap the *total* at the core count so outer ×
    // inner never exceeds the host (the budget enforces it; the outer
    // scaling below keeps the split sensible).
    let engine = engine_threads
        .map(|k| {
            if k > 1 {
                EngineKind::Parallel(k)
            } else {
                EngineKind::Serial
            }
        })
        .filter(|e| *e != EngineKind::Serial);
    let budget = match (threads, &engine) {
        (Some(n), _) => ThreadBudget::total(n),
        (None, Some(_)) => ThreadBudget::total(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        ),
        (None, None) => ThreadBudget::unlimited(),
    };
    let exec_cells: Vec<Cell> = cells
        .iter()
        .map(|c| {
            let mut c = c.clone();
            if let Some(engine) = engine {
                c.scenario.config.engine = engine;
            }
            c.scenario.config.thread_budget = budget.clone();
            c
        })
        .collect();
    // With parallel engines, keep outer workers at ~budget/K so the
    // shared ledger is split between layers instead of starving the
    // engines (a pure scheduling choice — the budget enforces the cap
    // either way).
    let outer_threads = match (engine, budget.limit()) {
        (Some(EngineKind::Parallel(k)), Some(total)) => Some((total / k).max(1)),
        _ => threads,
    };
    let fresh = execute_cells(
        &exec_cells,
        effort.runs,
        outer_threads,
        budget,
        shard,
        &skip,
    )
    .with_context(context);
    let report = match existing {
        Some(prev) => ReportSet::merge(vec![prev, fresh])
            .unwrap_or_else(|e| die(&format!("cannot merge resumed results: {e}"))),
        None => fresh,
    };

    if let Some(path) = &json {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("wrote {} cell reports to {path}", report.cells.len());
    }

    if report.is_complete(cells.len()) {
        let mut offset = 0;
        for job in &jobs {
            let n = job.cells.len();
            job.print(&report.cells[offset..offset + n]);
            offset += n;
        }
    } else {
        println!(
            "(sharded run: executed {} of {} cells; merge the JSON shards with \
             `experiments merge` to assemble the full report)",
            report.cells.len(),
            cells.len()
        );
    }
}

/// `experiments merge <out.json> <shard.json>...` — reassembles shard
/// reports into the file an unsharded `--json` run would have written.
fn merge_main(args: &[String]) {
    if args.len() < 2 {
        die(USAGE);
    }
    let out = &args[0];
    let parts: Vec<ReportSet> = args[1..]
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            ReportSet::from_json(&text)
                .unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
        })
        .collect();
    let merged =
        ReportSet::merge(parts).unwrap_or_else(|e| die(&format!("shards do not merge: {e}")));
    std::fs::write(out, merged.to_json())
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));

    if !merged.context.is_empty() {
        println!("sweep: {}", merged.context);
    }

    header(
        "Merged sweep report",
        &["runs", "delivery %", "hops", "max peak"],
    );
    for cell in &merged.cells {
        row(
            &cell.label,
            &[
                format!("{}", cell.runs.len()),
                fmt_summary(cell.delivery_pct(), 1),
                fmt_summary(cell.avg_hops(), 2),
                fmt_summary(cell.max_peak_storage(), 1),
            ],
        );
    }
    println!("wrote {} merged cell reports to {out}", merged.cells.len());
}

/// Figure 1: connectivity of 50 static nodes in 1000 m x 1000 m at 250 m
/// vs 100 m radius, plus the LDTG spanner built on top. (A static
/// geometry illustration — no simulation runs, so it stays off the
/// sweep engine.)
fn fig1(effort: Effort) {
    header(
        "Figure 1 — topology, 50 nodes in 1000x1000 m",
        &[
            "edges",
            "components",
            "connected %",
            "LDTG edges",
            "LDTG stretch",
        ],
    );
    let _ = std::fs::create_dir_all("artifacts");
    for radius in [250.0, 100.0] {
        let mut edges = Vec::new();
        let mut comps = Vec::new();
        let mut connected = Vec::new();
        let mut ldtg_edges = Vec::new();
        let mut stretch = Vec::new();
        for seed in 0..effort.runs.max(5) as u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let pts: Vec<Point2> = (0..50)
                .map(|_| Point2::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
                .collect();
            let udg = unit_disk_graph(&pts, radius);
            edges.push(udg.edge_count() as f64);
            comps.push(udg.connected_components().len() as f64);
            connected.push(if udg.is_connected() { 100.0 } else { 0.0 });
            let ldtg = k_ldtg(&pts, radius, 2);
            if seed == 0 {
                // Drop the Figure 1 artefacts for the first instance.
                let svg = svg_topology(&pts, &udg, &[], &[], 1000.0, 1000.0);
                let _ = std::fs::write(format!("artifacts/fig1_udg_{radius:.0}m.svg"), svg);
                let svg = svg_topology(&pts, &ldtg, &[], &[], 1000.0, 1000.0);
                let _ = std::fs::write(format!("artifacts/fig1_ldtg_{radius:.0}m.svg"), svg);
            }
            ldtg_edges.push(ldtg.edge_count() as f64);
            let s = euclidean_stretch(&ldtg, &pts);
            if s.max_stretch.is_finite() {
                stretch.push(s.max_stretch);
            }
        }
        row(
            &format!("radius {radius} m"),
            &[
                fmt_summary(glr_sim::summarize(&edges), 1),
                fmt_summary(glr_sim::summarize(&comps), 1),
                fmt_summary(glr_sim::summarize(&connected), 0),
                fmt_summary(glr_sim::summarize(&ldtg_edges), 1),
                fmt_summary(glr_sim::summarize(&stretch), 2),
            ],
        );
    }
    println!(
        "  (paper: at 250 m the graph is connected or nearly so; at 100 m connection is \
         'almost impossible')"
    );
}

/// Figure 2: MaxDSTD vs MinDSTD tree extraction on a static spanner.
/// (Illustration; no simulation runs.)
fn fig2() {
    header("Figure 2 — DSTD tree extraction (illustration)", &["path"]);
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<Point2> = (0..30)
        .map(|_| Point2::new(rng.random_range(0.0..800.0), rng.random_range(0.0..800.0)))
        .collect();
    let g = k_ldtg(&pts, 320.0, 2);
    for kind in [DstdKind::Max, DstdKind::Min, DstdKind::Mid(0)] {
        let path = extract_dstd_path(&g, &pts, 0, 29, kind, 60);
        let hops = path.len() - 1;
        let reached = path.last() == Some(&29);
        row(
            &kind.to_string(),
            &[format!(
                "{hops} hops, reached: {reached}, route {:?}",
                path.iter().take(12).collect::<Vec<_>>()
            )],
        );
    }
    println!("  (paper: Max and Min trees trace different routes from S to T)");
}

/// Figure 3: delivery latency vs route check interval (1980 msgs, 100 m).
fn fig3(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let sim = SimConfig::paper(100.0, 40);
    let penalty = sim.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for interval in [0.6, 0.8, 1.0, 1.2, 1.4, 1.6] {
        let label = format!("check interval {interval:.1} s");
        cells.push(Cell::glr(
            Scenario::new(format!("fig3/{label}"), sim.clone()).with_messages(messages),
            GlrConfig::paper().with_check_interval(interval),
        ));
        rows.push(label);
    }
    Job {
        title: "Figure 3 — latency vs check interval (1980 msgs, 100 m)".into(),
        columns: vec!["latency (s)", "delivery %", "control tx"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[0].metric(|m| m.control_tx as f64), 0),
            ]
        }),
        note: "  (paper: latency 18-25 s; shorter checks => lower latency, more control traffic)",
        artifact: None,
    }
}

/// Table 2: impact of destination-location knowledge (50 m, 3800 s).
fn tab2(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let scenarios: [(&str, LocationMode, CopyPolicy); 4] = [
        (
            "1 copy / all know",
            LocationMode::AllKnow,
            CopyPolicy::Fixed(1),
        ),
        (
            "3 copies / source knows",
            LocationMode::SourceKnows,
            CopyPolicy::Fixed(3),
        ),
        (
            "1 copy / source knows",
            LocationMode::SourceKnows,
            CopyPolicy::Fixed(1),
        ),
        (
            "3 copies / none know",
            LocationMode::NoneKnow,
            CopyPolicy::Fixed(3),
        ),
    ];
    let sim = SimConfig::paper(50.0, 50);
    let penalty = sim.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, mode, policy) in scenarios {
        cells.push(Cell::glr(
            Scenario::new(format!("tab2/{label}"), sim.clone()).with_messages(messages),
            GlrConfig::paper()
                .with_location_mode(mode)
                .with_copy_policy(policy),
        ));
        rows.push(label.to_string());
    }
    Job {
        title: "Table 2 — location availability (50 m, 3800 s)".into(),
        columns: vec!["delivery %", "latency (s)", "hops", "avg peak storage"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].avg_hops(), 1),
                fmt_summary(r[0].avg_peak_storage(), 1),
            ]
        }),
        note: "  (paper: 100/100/100/99.9 %; 120.2/149.7/156.1/212.4 s; 14.9/17.3/18/23.1 hops; \
         38.3/43.6/40.3/50.9 stored)",
        artifact: None,
    }
}

/// Figures 4 & 5: latency vs number of messages, GLR vs epidemic.
fn fig45(effort: Effort, radius: f64, tag: &'static str) -> Job {
    let bases = [400usize, 890, 1480, 1980];
    let sim = SimConfig::paper(radius, 60);
    let penalty = sim.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for base in bases {
        let messages = effort.scale(base);
        let label = format!("{base} messages");
        let scenario = Scenario::new(format!("{tag}/{label}"), sim.clone()).with_messages(messages);
        cells.push(Cell::glr(
            Scenario {
                label: format!("{}/glr", scenario.label),
                ..scenario.clone()
            },
            GlrConfig::paper(),
        ));
        cells.push(Cell::epidemic(Scenario {
            label: format!("{}/epidemic", scenario.label),
            ..scenario
        }));
        rows.push(label);
    }
    let artifact: ArtifactFn = Box::new(move |reports| {
        let mut glr_series = Series {
            label: "GLR".into(),
            points: Vec::new(),
        };
        let mut epi_series = Series {
            label: "Epidemic".into(),
            points: Vec::new(),
        };
        for (i, base) in bases.iter().enumerate() {
            let gl = reports[2 * i].avg_latency(penalty);
            let el = reports[2 * i + 1].avg_latency(penalty);
            glr_series.points.push((*base as f64, gl.mean, gl.ci90));
            epi_series.points.push((*base as f64, el.mean, el.ci90));
        }
        let _ = std::fs::create_dir_all("artifacts");
        let _ = std::fs::write(
            format!("artifacts/latency_vs_messages_{radius:.0}m.dat"),
            plot_data(
                &format!("{tag}: latency vs messages at {radius} m"),
                &[glr_series, epi_series],
            ),
        );
    });
    Job {
        title: format!("{tag} — latency vs messages in transit ({radius} m)"),
        columns: vec![
            "GLR latency (s)",
            "GLR delivery %",
            "Epi latency (s)",
            "Epi delivery %",
        ],
        rows,
        row_span: 2,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[1].avg_latency(penalty), 1),
                fmt_summary(r[1].delivery_pct(), 1),
            ]
        }),
        note: "  (paper: GLR below epidemic, gap widening as messages increase)",
        artifact: Some(artifact),
    }
}

/// Figure 6: latency vs radius, 1980 messages.
fn fig6(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let penalty = SimConfig::paper(50.0, 70).sim_duration;
    for radius in [50.0, 100.0, 150.0, 200.0, 250.0] {
        let sim = SimConfig::paper(radius, 70);
        let label = format!("radius {radius} m");
        cells.push(Cell::glr(
            Scenario::new(format!("fig6/{label}/glr"), sim.clone()).with_messages(messages),
            GlrConfig::paper(),
        ));
        cells.push(Cell::epidemic(
            Scenario::new(format!("fig6/{label}/epidemic"), sim).with_messages(messages),
        ));
        rows.push(label);
    }
    Job {
        title: "Figure 6 — latency vs radius (1980 msgs)".into(),
        columns: vec![
            "GLR latency (s)",
            "GLR delivery %",
            "Epi latency (s)",
            "Epi delivery %",
        ],
        rows,
        row_span: 2,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[1].avg_latency(penalty), 1),
                fmt_summary(r[1].delivery_pct(), 1),
            ]
        }),
        note: "  (paper: both fall with radius; GLR below epidemic throughout)",
        artifact: None,
    }
}

/// Table 3: delivery ratio with and without custody transfer
/// (890 msgs, 50 m, 1200 s).
fn tab3(effort: Effort) -> Job {
    let messages = effort.scale(890);
    let sim = SimConfig::paper(50.0, 80).with_duration(1200.0);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for custody in [false, true] {
        let label = if custody {
            "with custody"
        } else {
            "without custody"
        };
        cells.push(Cell::glr(
            Scenario::new(format!("tab3/{label}"), sim.clone()).with_messages(messages),
            GlrConfig::paper().with_custody(custody),
        ));
        rows.push(label.to_string());
    }
    Job {
        title: "Table 3 — custody transfer (890 msgs, 50 m, 1200 s)".into(),
        columns: vec!["delivery %"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(|r| vec![fmt_summary(r[0].delivery_pct(), 1)]),
        note: "  (paper: 84.7 % without, 97.9 % with)",
        artifact: None,
    }
}

/// Figure 7: delivery ratio vs per-node storage limit (50 m, 1980 msgs).
fn fig7(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for limit in [25usize, 50, 100, 150, 200] {
        let sim = SimConfig::paper(50.0, 90).with_storage_limit(limit);
        let label = format!("{limit} msgs/node");
        cells.push(Cell::glr(
            Scenario::new(format!("fig7/{label}/glr"), sim.clone()).with_messages(messages),
            GlrConfig::paper(),
        ));
        cells.push(Cell::epidemic(
            Scenario::new(format!("fig7/{label}/epidemic"), sim).with_messages(messages),
        ));
        rows.push(label);
    }
    Job {
        title: "Figure 7 — delivery ratio vs storage limit (50 m)".into(),
        columns: vec!["GLR delivery %", "Epidemic delivery %"],
        rows,
        row_span: 2,
        cells,
        render: Box::new(|r| {
            vec![
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[1].delivery_pct(), 1),
            ]
        }),
        note: "  (paper: GLR flat near 100 % down to 100 msgs/node; epidemic degrades below 200)",
        artifact: None,
    }
}

/// Table 4: GLR storage vs number of messages (50 m, 3 copies).
fn tab4(effort: Effort) -> Job {
    let sim = SimConfig::paper(50.0, 100);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for base in [400usize, 600, 890, 1180, 1980] {
        let messages = effort.scale(base);
        let label = format!("{base} messages");
        cells.push(Cell::glr(
            Scenario::new(format!("tab4/{label}"), sim.clone()).with_messages(messages),
            GlrConfig::paper(),
        ));
        rows.push(label);
    }
    Job {
        title: "Table 4 — GLR storage vs messages (50 m, 3 copies)".into(),
        columns: vec!["max peak", "avg peak"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(|r| {
            vec![
                fmt_summary(r[0].max_peak_storage(), 1),
                fmt_summary(r[0].avg_peak_storage(), 2),
            ]
        }),
        note: "  (paper: max peak 39->69, avg peak 21.3->43.6; epidemic stores every message)",
        artifact: None,
    }
}

/// Table 5: GLR storage vs radius (1980 msgs).
fn tab5(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for radius in [250.0, 200.0, 150.0, 100.0, 50.0] {
        let sim = SimConfig::paper(radius, 110);
        let label = format!("radius {radius} m");
        cells.push(Cell::glr(
            Scenario::new(format!("tab5/{label}"), sim).with_messages(messages),
            GlrConfig::paper(),
        ));
        rows.push(label);
    }
    Job {
        title: "Table 5 — GLR storage vs radius (1980 msgs)".into(),
        columns: vec!["max peak", "avg peak"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(|r| {
            vec![
                fmt_summary(r[0].max_peak_storage(), 1),
                fmt_summary(r[0].avg_peak_storage(), 2),
            ]
        }),
        note: "  (paper: 6.9/14.3/24.3/48.4/69 max peak — storage grows as radius shrinks)",
        artifact: None,
    }
}

/// Table 6: hop counts vs radius, GLR vs epidemic (1980 msgs).
fn tab6(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for radius in [250.0, 200.0, 150.0, 100.0, 50.0] {
        let sim = SimConfig::paper(radius, 120);
        let label = format!("radius {radius} m");
        cells.push(Cell::glr(
            Scenario::new(format!("tab6/{label}/glr"), sim.clone()).with_messages(messages),
            GlrConfig::paper(),
        ));
        cells.push(Cell::epidemic(
            Scenario::new(format!("tab6/{label}/epidemic"), sim).with_messages(messages),
        ));
        rows.push(label);
    }
    Job {
        title: "Table 6 — hop counts (1980 msgs)".into(),
        columns: vec!["GLR hops", "Epidemic hops"],
        rows,
        row_span: 2,
        cells,
        render: Box::new(|r| {
            vec![
                fmt_summary(r[0].avg_hops(), 2),
                fmt_summary(r[1].avg_hops(), 2),
            ]
        }),
        note: "  (paper: GLR 3.4->17.32, epidemic 3.19->3.92 — GLR takes more hops, gap grows)",
        artifact: None,
    }
}

/// Media comparison: Table 6's workload reproduced under all four
/// media — the paper's contention model, the lossless ideal radio,
/// log-distance shadowing, and a 30%-duty-cycled contention radio.
fn media_compare(effort: Effort) -> Job {
    let messages = effort.scale(1980);
    let media = [
        MediumKind::Contention,
        MediumKind::Ideal,
        MediumKind::shadowing(),
        MediumKind::duty_cycled(MediumKind::Contention, 0.3, 1.0),
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for radius in [250.0, 200.0, 150.0, 100.0, 50.0] {
        let sim = SimConfig::paper(radius, 170);
        let label = format!("radius {radius} m");
        for medium in media.clone() {
            cells.push(Cell::glr(
                Scenario::new(format!("media-compare/{label}/{medium}"), sim.clone())
                    .with_messages(messages)
                    .with_medium(medium),
                GlrConfig::paper(),
            ));
        }
        rows.push(label);
    }
    Job {
        title: "Media comparison — GLR under four media (Table 6 workload)".into(),
        columns: vec![
            "cont delv %",
            "cont hops",
            "ideal delv %",
            "ideal hops",
            "shadow delv %",
            "shadow hops",
            "duty30 delv %",
            "duty30 hops",
        ],
        rows,
        row_span: 4,
        cells,
        render: Box::new(|r| {
            vec![
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[0].avg_hops(), 2),
                fmt_summary(r[1].delivery_pct(), 1),
                fmt_summary(r[1].avg_hops(), 2),
                fmt_summary(r[2].delivery_pct(), 1),
                fmt_summary(r[2].avg_hops(), 2),
                fmt_summary(r[3].delivery_pct(), 1),
                fmt_summary(r[3].avg_hops(), 2),
            ]
        }),
        note: "  (ideal bounds the protocol's best case; shadowing softens the range cliff; \
         duty30 sleeps radios 70% of the time and silently drops frames arriving during \
         sleep — expect delivery duty30 <= contention <= shadowing <= ideal at small radii)",
        artifact: None,
    }
}

/// Ablation: spanner construction fidelity (one Delaunay pass vs the full
/// witness-checked k-LDTG rule).
fn ablation_spanner(effort: Effort) -> Job {
    let messages = effort.scale(890);
    let sim = SimConfig::paper(100.0, 130);
    let penalty = sim.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, mode) in [
        ("LocalDelaunay (fast)", SpannerMode::LocalDelaunay),
        ("KLocalDelaunay (paper)", SpannerMode::KLocalDelaunay),
    ] {
        cells.push(Cell::glr(
            Scenario::new(format!("ablation-spanner/{label}"), sim.clone()).with_messages(messages),
            GlrConfig::paper().with_spanner(mode),
        ));
        rows.push(label.to_string());
    }
    Job {
        title: "Ablation — local spanner construction (100 m, 890 msgs)".into(),
        columns: vec!["latency (s)", "delivery %", "data tx"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[0].metric(|m| m.data_tx as f64), 0),
            ]
        }),
        note: "",
        artifact: None,
    }
}

/// Ablation: copy-count policy (Algorithm 1 vs fixed).
fn ablation_copies(effort: Effort) -> Job {
    let messages = effort.scale(890);
    let sim100 = SimConfig::paper(100.0, 140);
    let sim200 = SimConfig::paper(200.0, 150);
    let penalty100 = sim100.sim_duration;
    let penalty200 = sim200.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, policy) in [
        ("fixed 1 copy", CopyPolicy::Fixed(1)),
        ("fixed 3 copies", CopyPolicy::Fixed(3)),
        ("adaptive (Algorithm 1)", CopyPolicy::PAPER),
    ] {
        let glr = GlrConfig::paper().with_copy_policy(policy);
        cells.push(Cell::glr(
            Scenario::new(format!("ablation-copies/{label}/100m"), sim100.clone())
                .with_messages(messages),
            glr.clone(),
        ));
        cells.push(Cell::glr(
            Scenario::new(format!("ablation-copies/{label}/200m"), sim200.clone())
                .with_messages(messages),
            glr,
        ));
        rows.push(label.to_string());
    }
    Job {
        title: "Ablation — copy policy (890 msgs)".into(),
        columns: vec![
            "latency 100 m (s)",
            "delivery % 100 m",
            "latency 200 m (s)",
            "delivery % 200 m",
        ],
        rows,
        row_span: 2,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty100), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[1].avg_latency(penalty200), 1),
                fmt_summary(r[1].delivery_pct(), 1),
            ]
        }),
        note: "",
        artifact: None,
    }
}

/// Ablation: stale-location perturbation variants.
fn ablation_perturb(effort: Effort) -> Job {
    let messages = effort.scale(890);
    let sim = SimConfig::paper(100.0, 160);
    let penalty = sim.sim_duration;
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (label, gossip) in [
        ("shared rendezvous (default)", true),
        ("message-local guess", false),
    ] {
        let mut glr = GlrConfig::paper();
        glr.perturb_gossip = gossip;
        cells.push(Cell::glr(
            Scenario::new(format!("ablation-perturb/{label}"), sim.clone()).with_messages(messages),
            glr,
        ));
        rows.push(label.to_string());
    }
    Job {
        title: "Ablation — perturbation gossip (100 m, 890 msgs)".into(),
        columns: vec!["latency (s)", "delivery %", "perturbations"],
        rows,
        row_span: 1,
        cells,
        render: Box::new(move |r| {
            vec![
                fmt_summary(r[0].avg_latency(penalty), 1),
                fmt_summary(r[0].delivery_pct(), 1),
                fmt_summary(r[0].counter("glr.perturb"), 0),
            ]
        }),
        note: "",
        artifact: None,
    }
}
