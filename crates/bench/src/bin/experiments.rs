//! Regenerates every table and figure of the paper's evaluation section,
//! plus the ablations called out in DESIGN.md.
//!
//! ```text
//! cargo run --release -p glr-bench --bin experiments -- all
//! cargo run --release -p glr-bench --bin experiments -- fig4 tab6
//! cargo run --release -p glr-bench --bin experiments -- --full fig7
//! cargo run --release -p glr-bench --bin experiments -- --quick all
//! ```
//!
//! Effort levels: `--quick` (2 seeds, quarter workloads — CI smoke),
//! default (5 seeds, full workloads), `--full` (10 seeds, full workloads —
//! the paper's protocol). All values print as `mean ± 90 % CI` like the
//! paper's tables.

use glr_bench::{
    fmt_summary, header, plot_data, row, run_epidemic, run_glr, svg_topology, Effort, Series,
};
use glr_core::{CopyPolicy, GlrConfig, LocationMode, SpannerMode};
use glr_geometry::{
    euclidean_stretch, extract_dstd_path, k_ldtg, unit_disk_graph, DstdKind, Point2,
};
use glr_sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::DEFAULT;
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => effort = Effort::FULL,
            "--quick" => effort = Effort::QUICK,
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--quick|--full] <id>...\n  ids: fig1 fig2 fig3 tab2 fig4 fig5 \
             fig6 tab3 fig7 tab4 tab5 tab6 ablation-spanner ablation-copies ablation-perturb all"
        );
        std::process::exit(2);
    }
    let all = ids.iter().any(|i| i == "all");
    let want = |id: &str| all || ids.iter().any(|i| i == id);
    println!(
        "GLR reproduction experiments — {} runs/point, workload scale {}/1000",
        effort.runs, effort.scale_pm
    );

    if want("fig1") {
        fig1(effort);
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3(effort);
    }
    if want("tab2") {
        tab2(effort);
    }
    if want("fig4") {
        fig45(effort, 50.0, "Figure 4");
    }
    if want("fig5") {
        fig45(effort, 100.0, "Figure 5");
    }
    if want("fig6") {
        fig6(effort);
    }
    if want("tab3") {
        tab3(effort);
    }
    if want("fig7") {
        fig7(effort);
    }
    if want("tab4") {
        tab4(effort);
    }
    if want("tab5") {
        tab5(effort);
    }
    if want("tab6") {
        tab6(effort);
    }
    if want("ablation-spanner") {
        ablation_spanner(effort);
    }
    if want("ablation-copies") {
        ablation_copies(effort);
    }
    if want("ablation-perturb") {
        ablation_perturb(effort);
    }
}

/// Figure 1: connectivity of 50 static nodes in 1000 m x 1000 m at 250 m
/// vs 100 m radius, plus the LDTG spanner built on top.
fn fig1(effort: Effort) {
    header(
        "Figure 1 — topology, 50 nodes in 1000x1000 m",
        &[
            "edges",
            "components",
            "connected %",
            "LDTG edges",
            "LDTG stretch",
        ],
    );
    let _ = std::fs::create_dir_all("artifacts");
    for radius in [250.0, 100.0] {
        let mut edges = Vec::new();
        let mut comps = Vec::new();
        let mut connected = Vec::new();
        let mut ldtg_edges = Vec::new();
        let mut stretch = Vec::new();
        for seed in 0..effort.runs.max(5) as u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let pts: Vec<Point2> = (0..50)
                .map(|_| Point2::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
                .collect();
            let udg = unit_disk_graph(&pts, radius);
            edges.push(udg.edge_count() as f64);
            comps.push(udg.connected_components().len() as f64);
            connected.push(if udg.is_connected() { 100.0 } else { 0.0 });
            let ldtg = k_ldtg(&pts, radius, 2);
            if seed == 0 {
                // Drop the Figure 1 artefacts for the first instance.
                let svg = svg_topology(&pts, &udg, &[], &[], 1000.0, 1000.0);
                let _ = std::fs::write(format!("artifacts/fig1_udg_{radius:.0}m.svg"), svg);
                let svg = svg_topology(&pts, &ldtg, &[], &[], 1000.0, 1000.0);
                let _ = std::fs::write(format!("artifacts/fig1_ldtg_{radius:.0}m.svg"), svg);
            }
            ldtg_edges.push(ldtg.edge_count() as f64);
            let s = euclidean_stretch(&ldtg, &pts);
            if s.max_stretch.is_finite() {
                stretch.push(s.max_stretch);
            }
        }
        row(
            &format!("radius {radius} m"),
            &[
                fmt_summary(glr_sim::summarize(&edges), 1),
                fmt_summary(glr_sim::summarize(&comps), 1),
                fmt_summary(glr_sim::summarize(&connected), 0),
                fmt_summary(glr_sim::summarize(&ldtg_edges), 1),
                fmt_summary(glr_sim::summarize(&stretch), 2),
            ],
        );
    }
    println!(
        "  (paper: at 250 m the graph is connected or nearly so; at 100 m connection is \
         'almost impossible')"
    );
}

/// Figure 2: MaxDSTD vs MinDSTD tree extraction on a static spanner.
fn fig2() {
    header("Figure 2 — DSTD tree extraction (illustration)", &["path"]);
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<Point2> = (0..30)
        .map(|_| Point2::new(rng.random_range(0.0..800.0), rng.random_range(0.0..800.0)))
        .collect();
    let g = k_ldtg(&pts, 320.0, 2);
    for kind in [DstdKind::Max, DstdKind::Min, DstdKind::Mid(0)] {
        let path = extract_dstd_path(&g, &pts, 0, 29, kind, 60);
        let hops = path.len() - 1;
        let reached = path.last() == Some(&29);
        row(
            &kind.to_string(),
            &[format!(
                "{hops} hops, reached: {reached}, route {:?}",
                path.iter().take(12).collect::<Vec<_>>()
            )],
        );
    }
    println!("  (paper: Max and Min trees trace different routes from S to T)");
}

/// Figure 3: delivery latency vs route check interval (1980 msgs, 100 m).
fn fig3(effort: Effort) {
    header(
        "Figure 3 — latency vs check interval (1980 msgs, 100 m)",
        &["latency (s)", "delivery %", "control tx"],
    );
    let messages = effort.scale(1980);
    for interval in [0.6, 0.8, 1.0, 1.2, 1.4, 1.6] {
        let sim = SimConfig::paper(100.0, 40);
        let glr = GlrConfig::paper().with_check_interval(interval);
        let mr = run_glr(&sim, &glr, messages, effort.runs);
        row(
            &format!("check interval {interval:.1} s"),
            &[
                fmt_summary(mr.avg_latency(sim.sim_duration), 1),
                fmt_summary(mr.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(mr.metric(|r| r.control_tx as f64), 0),
            ],
        );
    }
    println!("  (paper: latency 18-25 s; shorter checks => lower latency, more control traffic)");
}

/// Table 2: impact of destination-location knowledge (50 m, 3800 s).
fn tab2(effort: Effort) {
    header(
        "Table 2 — location availability (50 m, 3800 s)",
        &["delivery %", "latency (s)", "hops", "avg peak storage"],
    );
    let messages = effort.scale(1980);
    let scenarios: [(&str, LocationMode, CopyPolicy); 4] = [
        (
            "1 copy / all know",
            LocationMode::AllKnow,
            CopyPolicy::Fixed(1),
        ),
        (
            "3 copies / source knows",
            LocationMode::SourceKnows,
            CopyPolicy::Fixed(3),
        ),
        (
            "1 copy / source knows",
            LocationMode::SourceKnows,
            CopyPolicy::Fixed(1),
        ),
        (
            "3 copies / none know",
            LocationMode::NoneKnow,
            CopyPolicy::Fixed(3),
        ),
    ];
    for (label, mode, policy) in scenarios {
        let sim = SimConfig::paper(50.0, 50);
        let glr = GlrConfig::paper()
            .with_location_mode(mode)
            .with_copy_policy(policy);
        let mr = run_glr(&sim, &glr, messages, effort.runs);
        row(
            label,
            &[
                fmt_summary(mr.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(mr.avg_latency(sim.sim_duration), 1),
                fmt_summary(mr.avg_hops(), 1),
                fmt_summary(mr.avg_peak_storage(), 1),
            ],
        );
    }
    println!(
        "  (paper: 100/100/100/99.9 %; 120.2/149.7/156.1/212.4 s; 14.9/17.3/18/23.1 hops; \
         38.3/43.6/40.3/50.9 stored)"
    );
}

/// Figures 4 & 5: latency vs number of messages, GLR vs epidemic.
fn fig45(effort: Effort, radius: f64, tag: &str) {
    header(
        &format!("{tag} — latency vs messages in transit ({radius} m)"),
        &[
            "GLR latency (s)",
            "GLR delivery %",
            "Epi latency (s)",
            "Epi delivery %",
        ],
    );
    let mut glr_series = Series {
        label: "GLR".into(),
        points: Vec::new(),
    };
    let mut epi_series = Series {
        label: "Epidemic".into(),
        points: Vec::new(),
    };
    for base in [400usize, 890, 1480, 1980] {
        let messages = effort.scale(base);
        let sim = SimConfig::paper(radius, 60);
        let g = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        let e = run_epidemic(&sim, messages, effort.runs);
        let gl = g.avg_latency(sim.sim_duration);
        let el = e.avg_latency(sim.sim_duration);
        glr_series.points.push((base as f64, gl.mean, gl.ci90));
        epi_series.points.push((base as f64, el.mean, el.ci90));
        row(
            &format!("{base} messages"),
            &[
                fmt_summary(gl, 1),
                fmt_summary(g.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(el, 1),
                fmt_summary(e.metric(|r| r.delivery_ratio() * 100.0), 1),
            ],
        );
    }
    let _ = std::fs::create_dir_all("artifacts");
    let _ = std::fs::write(
        format!("artifacts/latency_vs_messages_{radius:.0}m.dat"),
        plot_data(
            &format!("{tag}: latency vs messages at {radius} m"),
            &[glr_series, epi_series],
        ),
    );
    println!("  (paper: GLR below epidemic, gap widening as messages increase)");
}

/// Figure 6: latency vs radius, 1980 messages.
fn fig6(effort: Effort) {
    header(
        "Figure 6 — latency vs radius (1980 msgs)",
        &[
            "GLR latency (s)",
            "GLR delivery %",
            "Epi latency (s)",
            "Epi delivery %",
        ],
    );
    let messages = effort.scale(1980);
    for radius in [50.0, 100.0, 150.0, 200.0, 250.0] {
        let sim = SimConfig::paper(radius, 70);
        let g = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        let e = run_epidemic(&sim, messages, effort.runs);
        row(
            &format!("radius {radius} m"),
            &[
                fmt_summary(g.avg_latency(sim.sim_duration), 1),
                fmt_summary(g.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(e.avg_latency(sim.sim_duration), 1),
                fmt_summary(e.metric(|r| r.delivery_ratio() * 100.0), 1),
            ],
        );
    }
    println!("  (paper: both fall with radius; GLR below epidemic throughout)");
}

/// Table 3: delivery ratio with and without custody transfer
/// (890 msgs, 50 m, 1200 s).
fn tab3(effort: Effort) {
    header(
        "Table 3 — custody transfer (890 msgs, 50 m, 1200 s)",
        &["delivery %"],
    );
    let messages = effort.scale(890);
    for custody in [false, true] {
        let sim = SimConfig::paper(50.0, 80).with_duration(1200.0);
        let glr = GlrConfig::paper().with_custody(custody);
        let mr = run_glr(&sim, &glr, messages, effort.runs);
        row(
            if custody {
                "with custody"
            } else {
                "without custody"
            },
            &[fmt_summary(mr.metric(|r| r.delivery_ratio() * 100.0), 1)],
        );
    }
    println!("  (paper: 84.7 % without, 97.9 % with)");
}

/// Figure 7: delivery ratio vs per-node storage limit (50 m, 1980 msgs).
fn fig7(effort: Effort) {
    header(
        "Figure 7 — delivery ratio vs storage limit (50 m)",
        &["GLR delivery %", "Epidemic delivery %"],
    );
    let messages = effort.scale(1980);
    for limit in [25usize, 50, 100, 150, 200] {
        let sim = SimConfig::paper(50.0, 90).with_storage_limit(limit);
        let g = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        let e = run_epidemic(&sim, messages, effort.runs);
        row(
            &format!("{limit} msgs/node"),
            &[
                fmt_summary(g.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(e.metric(|r| r.delivery_ratio() * 100.0), 1),
            ],
        );
    }
    println!("  (paper: GLR flat near 100 % down to 100 msgs/node; epidemic degrades below 200)");
}

/// Table 4: GLR storage vs number of messages (50 m, 3 copies).
fn tab4(effort: Effort) {
    header(
        "Table 4 — GLR storage vs messages (50 m, 3 copies)",
        &["max peak", "avg peak"],
    );
    for base in [400usize, 600, 890, 1180, 1980] {
        let messages = effort.scale(base);
        let sim = SimConfig::paper(50.0, 100);
        let mr = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        row(
            &format!("{base} messages"),
            &[
                fmt_summary(mr.max_peak_storage(), 1),
                fmt_summary(mr.avg_peak_storage(), 2),
            ],
        );
    }
    println!("  (paper: max peak 39->69, avg peak 21.3->43.6; epidemic stores every message)");
}

/// Table 5: GLR storage vs radius (1980 msgs).
fn tab5(effort: Effort) {
    header(
        "Table 5 — GLR storage vs radius (1980 msgs)",
        &["max peak", "avg peak"],
    );
    let messages = effort.scale(1980);
    for radius in [250.0, 200.0, 150.0, 100.0, 50.0] {
        let sim = SimConfig::paper(radius, 110);
        let mr = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        row(
            &format!("radius {radius} m"),
            &[
                fmt_summary(mr.max_peak_storage(), 1),
                fmt_summary(mr.avg_peak_storage(), 2),
            ],
        );
    }
    println!("  (paper: 6.9/14.3/24.3/48.4/69 max peak — storage grows as radius shrinks)");
}

/// Table 6: hop counts vs radius, GLR vs epidemic (1980 msgs).
fn tab6(effort: Effort) {
    header(
        "Table 6 — hop counts (1980 msgs)",
        &["GLR hops", "Epidemic hops"],
    );
    let messages = effort.scale(1980);
    for radius in [250.0, 200.0, 150.0, 100.0, 50.0] {
        let sim = SimConfig::paper(radius, 120);
        let g = run_glr(&sim, &GlrConfig::paper(), messages, effort.runs);
        let e = run_epidemic(&sim, messages, effort.runs);
        row(
            &format!("radius {radius} m"),
            &[fmt_summary(g.avg_hops(), 2), fmt_summary(e.avg_hops(), 2)],
        );
    }
    println!("  (paper: GLR 3.4->17.32, epidemic 3.19->3.92 — GLR takes more hops, gap grows)");
}

/// Ablation: spanner construction fidelity (one Delaunay pass vs the full
/// witness-checked k-LDTG rule).
fn ablation_spanner(effort: Effort) {
    header(
        "Ablation — local spanner construction (100 m, 890 msgs)",
        &["latency (s)", "delivery %", "data tx"],
    );
    let messages = effort.scale(890);
    for (label, mode) in [
        ("LocalDelaunay (fast)", SpannerMode::LocalDelaunay),
        ("KLocalDelaunay (paper)", SpannerMode::KLocalDelaunay),
    ] {
        let sim = SimConfig::paper(100.0, 130);
        let glr = GlrConfig::paper().with_spanner(mode);
        let mr = run_glr(&sim, &glr, messages, effort.runs);
        row(
            label,
            &[
                fmt_summary(mr.avg_latency(sim.sim_duration), 1),
                fmt_summary(mr.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(mr.metric(|r| r.data_tx as f64), 0),
            ],
        );
    }
}

/// Ablation: copy-count policy (Algorithm 1 vs fixed).
fn ablation_copies(effort: Effort) {
    header(
        "Ablation — copy policy (890 msgs)",
        &[
            "latency 100 m (s)",
            "delivery % 100 m",
            "latency 200 m (s)",
            "delivery % 200 m",
        ],
    );
    let messages = effort.scale(890);
    for (label, policy) in [
        ("fixed 1 copy", CopyPolicy::Fixed(1)),
        ("fixed 3 copies", CopyPolicy::Fixed(3)),
        ("adaptive (Algorithm 1)", CopyPolicy::PAPER),
    ] {
        let glr = GlrConfig::paper().with_copy_policy(policy);
        let sim100 = SimConfig::paper(100.0, 140);
        let sim200 = SimConfig::paper(200.0, 150);
        let a = run_glr(&sim100, &glr, messages, effort.runs);
        let b = run_glr(&sim200, &glr, messages, effort.runs);
        row(
            label,
            &[
                fmt_summary(a.avg_latency(sim100.sim_duration), 1),
                fmt_summary(a.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(b.avg_latency(sim200.sim_duration), 1),
                fmt_summary(b.metric(|r| r.delivery_ratio() * 100.0), 1),
            ],
        );
    }
}

/// Ablation: stale-location perturbation variants.
fn ablation_perturb(effort: Effort) {
    header(
        "Ablation — perturbation gossip (100 m, 890 msgs)",
        &["latency (s)", "delivery %", "perturbations"],
    );
    let messages = effort.scale(890);
    for (label, gossip) in [
        ("shared rendezvous (default)", true),
        ("message-local guess", false),
    ] {
        let sim = SimConfig::paper(100.0, 160);
        let mut glr = GlrConfig::paper();
        glr.perturb_gossip = gossip;
        let mr = run_glr(&sim, &glr, messages, effort.runs);
        row(
            label,
            &[
                fmt_summary(mr.avg_latency(sim.sim_duration), 1),
                fmt_summary(mr.metric(|r| r.delivery_ratio() * 100.0), 1),
                fmt_summary(mr.metric(|r| r.event_count("glr.perturb") as f64), 0),
            ],
        );
    }
}
