use glr_core::Glr;
use glr_epidemic::Epidemic;
use glr_sim::{SimConfig, Simulation, Workload};
use std::time::Instant;

fn main() {
    for (name, r, msgs, dur) in [
        ("glr-100m", 100.0, 1980usize, 3800.0),
        ("glr-50m", 50.0, 1980, 3800.0),
    ] {
        let cfg = SimConfig::paper(r, 1).with_duration(dur);
        let wl = Workload::paper_style(50, msgs, 1000);
        let t = Instant::now();
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        println!(
            "{name}: {:?} wall, delivered {}/{} lat {:?} hops {:?} peak {} data_tx {}",
            t.elapsed(),
            stats.messages_delivered(),
            stats.messages_created(),
            stats.avg_latency(),
            stats.avg_hops(),
            stats.max_peak_storage(),
            stats.data_tx
        );
        println!(
            "   drops: storage {} queue {} collisions {} oor {} mean_store {:.1}",
            stats.storage_drops,
            stats.queue_drops,
            stats.collisions,
            stats.out_of_range,
            stats.mean_storage_occupancy()
        );
        println!("   counters: {:?}", stats.counters);
    }
    for (name, r) in [("epi-100m", 100.0), ("epi-50m", 50.0)] {
        let cfg = SimConfig::paper(r, 1).with_duration(3800.0);
        let wl = Workload::paper_style(50, 1980, 1000);
        let t = Instant::now();
        let stats = Simulation::new(cfg, wl, Epidemic::new).run();
        println!(
            "{name}: {:?} wall, delivered {}/{} lat {:?} hops {:?} peak {} data_tx {}",
            t.elapsed(),
            stats.messages_delivered(),
            stats.messages_created(),
            stats.avg_latency(),
            stats.avg_hops(),
            stats.max_peak_storage(),
            stats.data_tx
        );
    }
}
