//! Figure rendering: SVG topology plots (paper Figure 1/2 style) and
//! gnuplot-ready data series for the latency/ratio curves.
//!
//! The `experiments` binary uses these to drop viewable artefacts next to
//! the printed tables, so the reproduction produces actual figures, not
//! just numbers.

use glr_geometry::{Graph, Point2};
use std::fmt::Write as _;

/// Renders a node deployment and graph as a standalone SVG document.
///
/// Nodes are dots (the `highlight` set, e.g. a source/destination pair, in
/// red), edges are line segments. An optional `path` is drawn thick and
/// dashed on top — handy for DSTD tree illustrations.
///
/// # Examples
///
/// ```
/// use glr_bench::svg_topology;
/// use glr_geometry::{Graph, Point2};
///
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(100.0, 50.0)];
/// let mut g = Graph::new(2);
/// g.add_edge(0, 1);
/// let svg = svg_topology(&pts, &g, &[0], &[0, 1], 200.0, 100.0);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("<line"));
/// ```
pub fn svg_topology(
    points: &[Point2],
    graph: &Graph,
    highlight: &[usize],
    path: &[usize],
    width: f64,
    height: f64,
) -> String {
    assert_eq!(
        points.len(),
        graph.len(),
        "points must match graph vertices"
    );
    let margin = 20.0;
    let w = width + 2.0 * margin;
    let h = height + 2.0 * margin;
    // SVG y grows downward; flip so the plot reads like the paper's figures.
    let tx = |p: Point2| (p.x + margin, height - p.y + margin);

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w:.0} {h:.0}\" \
         width=\"{w:.0}\" height=\"{h:.0}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    );
    for (u, v) in graph.edges() {
        let (x1, y1) = tx(points[u]);
        let (x2, y2) = tx(points[v]);
        let _ = writeln!(
            s,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"#8899aa\" stroke-width=\"1\"/>"
        );
    }
    for w2 in path.windows(2) {
        let (x1, y1) = tx(points[w2[0]]);
        let (x2, y2) = tx(points[w2[1]]);
        let _ = writeln!(
            s,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"#cc3333\" stroke-width=\"3\" stroke-dasharray=\"6,3\"/>"
        );
    }
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = tx(p);
        let color = if highlight.contains(&i) {
            "#cc3333"
        } else {
            "#224488"
        };
        let r = if highlight.contains(&i) { 5.0 } else { 3.0 };
        let _ = writeln!(
            s,
            "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{r}\" fill=\"{color}\"/>"
        );
    }
    s.push_str("</svg>\n");
    s
}

/// One curve of a figure: a label plus `(x, y, ci)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y, 90 % CI half-width)` points.
    pub points: Vec<(f64, f64, f64)>,
}

/// Renders one or more series as a gnuplot-ready data file with `#`
/// comment headers: columns `x y ci`, blank-line separated blocks per
/// series (gnuplot `index` convention).
///
/// ```
/// use glr_bench::{plot_data, Series};
///
/// let s = plot_data("latency vs messages", &[Series {
///     label: "GLR".into(),
///     points: vec![(400.0, 27.8, 11.5), (890.0, 51.1, 57.7)],
/// }]);
/// assert!(s.contains("# series: GLR"));
/// assert!(s.contains("400"));
/// ```
pub fn plot_data(title: &str, series: &[Series]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(s, "# columns: x y ci90");
    for sr in series {
        let _ = writeln!(s, "\n# series: {}", sr.label);
        for &(x, y, ci) in &sr.points {
            let _ = writeln!(s, "{x} {y} {ci}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Point2>, Graph) {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(50.0, 10.0),
            Point2::new(100.0, 0.0),
        ];
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        (pts, g)
    }

    #[test]
    fn svg_structure() {
        let (pts, g) = toy();
        let svg = svg_topology(&pts, &g, &[0, 2], &[0, 1, 2], 100.0, 20.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        // 2 graph edges + 2 path segments.
        assert_eq!(svg.matches("<line").count(), 4);
        // Highlighted nodes get the red fill.
        assert_eq!(svg.matches("#cc3333").count(), 2 + 2); // 2 path lines + 2 nodes
    }

    #[test]
    #[should_panic(expected = "points must match")]
    fn svg_checks_sizes() {
        let (pts, _) = toy();
        svg_topology(&pts, &Graph::new(5), &[], &[], 10.0, 10.0);
    }

    #[test]
    fn plot_data_blocks() {
        let out = plot_data(
            "t",
            &[
                Series {
                    label: "a".into(),
                    points: vec![(1.0, 2.0, 0.1)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(3.0, 4.0, 0.2), (5.0, 6.0, 0.3)],
                },
            ],
        );
        assert!(out.contains("# series: a"));
        assert!(out.contains("# series: b"));
        assert!(out.contains("1 2 0.1"));
        assert!(out.contains("5 6 0.3"));
        // Two blocks separated by blank lines.
        assert_eq!(out.matches("\n\n").count(), 2);
    }

    #[test]
    fn svg_empty_graph_still_valid() {
        let svg = svg_topology(&[], &Graph::new(0), &[], &[], 10.0, 10.0);
        assert!(svg.contains("</svg>"));
    }
}
