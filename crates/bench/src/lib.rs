//! Shared experiment plumbing for the GLR reproduction harness.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper; this library holds the pieces it shares with the Criterion
//! benches: run drivers for both protocols, workload sizing, and
//! paper-style table printing.

#![warn(missing_docs)]

mod render;

pub use render::{plot_data, svg_topology, Series};

use glr_core::{Glr, GlrConfig};
use glr_epidemic::Epidemic;
use glr_sim::{
    MultiRun, ReportSet, RunStats, Scenario, SimConfig, Simulation, Summary, Sweep, ThreadBudget,
    Workload,
};

/// How much simulation an experiment buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Independent runs (seeds) per data point. The paper uses 10.
    pub runs: usize,
    /// Scale factor (per mille) applied to workload sizes. 1000 = paper
    /// scale.
    pub scale_pm: u32,
}

impl Effort {
    /// Paper-fidelity effort: 10 runs, full workloads.
    pub const FULL: Effort = Effort {
        runs: 10,
        scale_pm: 1000,
    };

    /// Default effort: 5 runs, full workloads.
    pub const DEFAULT: Effort = Effort {
        runs: 5,
        scale_pm: 1000,
    };

    /// Smoke-test effort for CI: 2 runs, quarter workloads.
    pub const QUICK: Effort = Effort {
        runs: 2,
        scale_pm: 250,
    };

    /// Scales a workload size.
    pub fn scale(&self, count: usize) -> usize {
        ((count as u64 * self.scale_pm as u64) / 1000).max(1) as usize
    }
}

/// Which routing protocol an experiment cell runs.
#[derive(Debug, Clone)]
pub enum Proto {
    /// The paper's protocol with the given configuration.
    Glr(GlrConfig),
    /// The epidemic-routing baseline.
    Epidemic,
}

impl Proto {
    /// A short stable name for labels (`"glr"` / `"epidemic"`).
    pub fn name(&self) -> &'static str {
        match self {
            Proto::Glr(_) => "glr",
            Proto::Epidemic => "epidemic",
        }
    }
}

/// One cell of an experiment grid: a declarative [`Scenario`] plus the
/// protocol to run over it. The experiments binary expands every table
/// and figure into a flat `Vec<Cell>` and hands it to [`execute_cells`];
/// nothing below this layer loops over parameters by hand.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The scenario (config + workload + medium); its label is the cell
    /// label used in tables and JSON reports.
    pub scenario: Scenario,
    /// The protocol under test.
    pub proto: Proto,
}

impl Cell {
    /// A GLR cell.
    pub fn glr(scenario: Scenario, glr: GlrConfig) -> Self {
        Cell {
            scenario,
            proto: Proto::Glr(glr),
        }
    }

    /// An epidemic-routing cell.
    pub fn epidemic(scenario: Scenario) -> Self {
        Cell {
            scenario,
            proto: Proto::Epidemic,
        }
    }

    /// Executes run `run` of this cell (seeded per
    /// [`Scenario::run_nth`]). A pure function of `(cell, run)`, as the
    /// sweep engine requires.
    pub fn run(&self, run: usize) -> RunStats {
        match &self.proto {
            Proto::Glr(cfg) => self.scenario.run_nth(run, Glr::factory(cfg.clone())),
            Proto::Epidemic => self.scenario.run_nth(run, Epidemic::new),
        }
    }
}

/// Executes an experiment grid on the sweep engine and distils the
/// results into a shard-mergeable [`ReportSet`].
///
/// `threads` of `None` uses one worker per core; `shard` of
/// `Some((i, n))` executes only every `n`-th cell (the report keeps
/// global cell indices so shard outputs merge back together); `skip`
/// lists cells already completed by an interrupted run — they are not
/// re-executed and are absent from the returned report (merge it with
/// the old one to reassemble the full grid). `budget` is the total
/// thread ledger the sweep's outer workers draw from; pass the same
/// budget in the cells' `SimConfig`s (via
/// [`glr_sim::SimConfig::with_thread_budget`]) to cap outer × inner
/// parallelism jointly. None of these knobs affects the results.
pub fn execute_cells(
    cells: &[Cell],
    runs: usize,
    threads: Option<usize>,
    budget: ThreadBudget,
    shard: Option<(usize, usize)>,
    skip: &[usize],
) -> ReportSet {
    let mut sweep = Sweep::new(runs)
        .skipping(skip.iter().copied())
        .with_budget(budget);
    if let Some(t) = threads {
        sweep = sweep.with_threads(t);
    }
    if let Some((index, of)) = shard {
        sweep = sweep.with_shard(index, of);
    }
    let results = sweep.execute(cells, |cell, run| cell.run(run));
    ReportSet::from_sweep(&results, |i| cells[i].scenario.label.clone())
}

/// Runs GLR over `runs` seeds with the given configs and message count.
pub fn run_glr(sim: &SimConfig, glr: &GlrConfig, messages: usize, runs: usize) -> MultiRun {
    let glr_cfg = glr.clone();
    MultiRun::execute(sim, runs, move |cfg| {
        let wl = Workload::paper_style(cfg.n_nodes, messages, 1000);
        let factory = Glr::factory(glr_cfg.clone());
        Simulation::new(cfg, wl, factory).run()
    })
}

/// Runs epidemic routing over `runs` seeds.
pub fn run_epidemic(sim: &SimConfig, messages: usize, runs: usize) -> MultiRun {
    MultiRun::execute(sim, runs, move |cfg| {
        let wl = Workload::paper_style(cfg.n_nodes, messages, 1000);
        Simulation::new(cfg, wl, Epidemic::new).run()
    })
}

/// Runs a single GLR simulation (for benches needing one deterministic run).
pub fn single_glr(sim: SimConfig, glr: GlrConfig, messages: usize) -> RunStats {
    let wl = Workload::paper_style(sim.n_nodes, messages, 1000);
    Simulation::new(sim, wl, Glr::factory(glr)).run()
}

/// Renders `mean ± ci` with sensible precision.
pub fn fmt_summary(s: Summary, decimals: usize) -> String {
    format!("{:.*} ± {:.*}", decimals, s.mean, decimals, s.ci90)
}

/// Prints a table row: a label column then value columns.
pub fn row(label: &str, cells: &[String]) {
    print!("  {label:<26}");
    for c in cells {
        print!(" | {c:>18}");
    }
    println!();
}

/// Prints a table header and a rule underneath.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    print!("  {:<26}", "");
    for c in columns {
        print!(" | {c:>18}");
    }
    println!();
    println!("  {}", "-".repeat(26 + columns.len() * 21));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::FULL.scale(1980), 1980);
        assert_eq!(Effort::QUICK.scale(1980), 495);
        assert_eq!(Effort::QUICK.scale(1), 1);
    }

    #[test]
    fn glr_and_epidemic_drivers_run() {
        let sim = SimConfig::paper(250.0, 42).with_duration(30.0);
        let g = run_glr(&sim, &GlrConfig::paper(), 5, 2);
        assert_eq!(g.runs().len(), 2);
        let e = run_epidemic(&sim, 5, 2);
        assert_eq!(e.runs().len(), 2);
        // Both protocols must have injected the workload.
        assert!(g.runs().iter().all(|r| r.messages_created() == 5));
        assert!(e.runs().iter().all(|r| r.messages_created() == 5));
    }

    #[test]
    fn execute_cells_runs_grid_and_shards_merge() {
        let sim = SimConfig::paper(250.0, 42).with_duration(30.0);
        let cells = vec![
            Cell::glr(
                Scenario::new("glr-cell", sim.clone()).with_messages(5),
                GlrConfig::paper(),
            ),
            Cell::epidemic(Scenario::new("epi-cell", sim).with_messages(5)),
        ];
        let full = execute_cells(&cells, 2, Some(2), ThreadBudget::unlimited(), None, &[]);
        assert!(full.is_complete(2));
        assert_eq!(full.cells[0].label, "glr-cell");
        assert!(full
            .cells
            .iter()
            .all(|c| c.runs.iter().all(|r| r.messages_created == 5)));

        let s0 = execute_cells(&cells, 2, None, ThreadBudget::total(2), Some((0, 2)), &[]);
        let s1 = execute_cells(&cells, 2, None, ThreadBudget::total(2), Some((1, 2)), &[]);
        assert!(!s0.is_complete(2));
        let merged = ReportSet::merge(vec![s1, s0]).expect("disjoint shards");
        assert_eq!(merged, full);
        assert_eq!(merged.to_json(), full.to_json());
    }

    #[test]
    fn formatting_helpers() {
        let s = glr_sim::summarize(&[1.0, 2.0, 3.0]);
        let txt = fmt_summary(s, 1);
        assert!(txt.contains("2.0"));
    }
}
