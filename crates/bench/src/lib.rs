//! Shared experiment plumbing for the GLR reproduction harness.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper; this library holds the pieces it shares with the Criterion
//! benches: run drivers for both protocols, workload sizing, and
//! paper-style table printing.

#![warn(missing_docs)]

mod render;

pub use render::{plot_data, svg_topology, Series};

use glr_core::{Glr, GlrConfig};
use glr_epidemic::Epidemic;
use glr_sim::{MultiRun, RunStats, SimConfig, Simulation, Summary, Workload};

/// How much simulation an experiment buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Independent runs (seeds) per data point. The paper uses 10.
    pub runs: usize,
    /// Scale factor (per mille) applied to workload sizes. 1000 = paper
    /// scale.
    pub scale_pm: u32,
}

impl Effort {
    /// Paper-fidelity effort: 10 runs, full workloads.
    pub const FULL: Effort = Effort {
        runs: 10,
        scale_pm: 1000,
    };

    /// Default effort: 5 runs, full workloads.
    pub const DEFAULT: Effort = Effort {
        runs: 5,
        scale_pm: 1000,
    };

    /// Smoke-test effort for CI: 2 runs, quarter workloads.
    pub const QUICK: Effort = Effort {
        runs: 2,
        scale_pm: 250,
    };

    /// Scales a workload size.
    pub fn scale(&self, count: usize) -> usize {
        ((count as u64 * self.scale_pm as u64) / 1000).max(1) as usize
    }
}

/// Runs GLR over `runs` seeds with the given configs and message count.
pub fn run_glr(sim: &SimConfig, glr: &GlrConfig, messages: usize, runs: usize) -> MultiRun {
    let glr_cfg = glr.clone();
    MultiRun::execute(sim, runs, move |cfg| {
        let wl = Workload::paper_style(cfg.n_nodes, messages, 1000);
        let factory = Glr::factory(glr_cfg.clone());
        Simulation::new(cfg, wl, factory).run()
    })
}

/// Runs epidemic routing over `runs` seeds.
pub fn run_epidemic(sim: &SimConfig, messages: usize, runs: usize) -> MultiRun {
    MultiRun::execute(sim, runs, move |cfg| {
        let wl = Workload::paper_style(cfg.n_nodes, messages, 1000);
        Simulation::new(cfg, wl, Epidemic::new).run()
    })
}

/// Runs a single GLR simulation (for benches needing one deterministic run).
pub fn single_glr(sim: SimConfig, glr: GlrConfig, messages: usize) -> RunStats {
    let wl = Workload::paper_style(sim.n_nodes, messages, 1000);
    Simulation::new(sim, wl, Glr::factory(glr)).run()
}

/// Renders `mean ± ci` with sensible precision.
pub fn fmt_summary(s: Summary, decimals: usize) -> String {
    format!("{:.*} ± {:.*}", decimals, s.mean, decimals, s.ci90)
}

/// Prints a table row: a label column then value columns.
pub fn row(label: &str, cells: &[String]) {
    print!("  {label:<26}");
    for c in cells {
        print!(" | {c:>18}");
    }
    println!();
}

/// Prints a table header and a rule underneath.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    print!("  {:<26}", "");
    for c in columns {
        print!(" | {c:>18}");
    }
    println!();
    println!("  {}", "-".repeat(26 + columns.len() * 21));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::FULL.scale(1980), 1980);
        assert_eq!(Effort::QUICK.scale(1980), 495);
        assert_eq!(Effort::QUICK.scale(1), 1);
    }

    #[test]
    fn glr_and_epidemic_drivers_run() {
        let sim = SimConfig::paper(250.0, 42).with_duration(30.0);
        let g = run_glr(&sim, &GlrConfig::paper(), 5, 2);
        assert_eq!(g.runs().len(), 2);
        let e = run_epidemic(&sim, 5, 2);
        assert_eq!(e.runs().len(), 2);
        // Both protocols must have injected the workload.
        assert!(g.runs().iter().all(|r| r.messages_created() == 5));
        assert!(e.runs().iter().all(|r| r.messages_created() == 5));
    }

    #[test]
    fn formatting_helpers() {
        let s = glr_sim::summarize(&[1.0, 2.0, 3.0]);
        let txt = fmt_summary(s, 1);
        assert!(txt.contains("2.0"));
    }
}
