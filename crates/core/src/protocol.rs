//! The GLR protocol proper: Algorithm 2 (geometric routing with controlled
//! flooding) plus store-and-forward, custody transfer, location diffusion,
//! face-routing recovery and stale-location perturbation.

use crate::config::{GlrConfig, LocationMode};
use crate::decision::CopyPolicy;
use crate::location::{LocationEstimate, LocationTable};
use crate::packet::{DataPacket, GlrPacket};
use crate::spanner::{face_next_hop, first_ccw_from_direction, spanner_neighbors};
use crate::storage::{FaceState, MessageStore, StoredMessage};
use glr_geometry::{dstd_next_hop, DstdKind, Point2};
use glr_sim::{Ctx, MessageInfo, NodeId, PacketKind, Protocol, SimConfig};
use rand::Rng;

/// Timer token for the periodic route check.
const ROUTE_CHECK: u64 = 1;

/// Hop budget for one face-recovery walk.
const FACE_BUDGET: u8 = 12;

/// One node's GLR instance.
///
/// Construct per node via [`Glr::new`] (paper defaults) or
/// [`Glr::with_config`] and hand to [`glr_sim::Simulation::new`]:
///
/// ```
/// use glr_core::Glr;
/// use glr_sim::{SimConfig, Simulation, Workload};
///
/// let cfg = SimConfig::paper(250.0, 11).with_duration(60.0);
/// let wl = Workload::paper_style(50, 10, 1000);
/// let stats = Simulation::new(cfg, wl, Glr::new).run();
/// assert!(stats.delivery_ratio() > 0.0);
/// ```
#[derive(Debug)]
pub struct Glr {
    cfg: GlrConfig,
    messages: MessageStore,
    locations: LocationTable,
    timer_armed: bool,
    /// Recently admitted copies, keyed by `(id, tag)` with the sender, hop
    /// count and admission time. A frame matching all three within the
    /// retransmission window is the *same transmission* arriving again
    /// (the custody ack was lost or late): it is re-acknowledged but not
    /// re-admitted — without this, every late acknowledgement would fork
    /// another copy into the network. A frame with a different sender or
    /// hop count is a legitimate revisit (the destination estimate moved)
    /// and is admitted normally.
    seen: std::collections::HashMap<(glr_sim::MessageId, u8), (NodeId, u32, glr_sim::SimTime)>,
    /// Hash of the fresh one-hop neighbour set at the previous route check.
    last_nbr_hash: u64,
    /// Whether the neighbourhood changed since the previous check (set at
    /// the start of every routing pass).
    topology_changed: bool,
}

impl Glr {
    /// Creates a GLR instance with paper-default protocol parameters,
    /// honouring the simulation's storage limit.
    pub fn new(node: NodeId, sim: &SimConfig) -> Self {
        Self::with_config(node, sim, GlrConfig::paper())
    }

    /// Creates a GLR instance with explicit protocol parameters.
    pub fn with_config(node: NodeId, sim: &SimConfig, cfg: GlrConfig) -> Self {
        let _ = node;
        cfg.validate();
        Glr {
            cfg,
            messages: MessageStore::new(sim.storage_limit),
            locations: LocationTable::new(),
            timer_armed: false,
            seen: Default::default(),
            last_nbr_hash: 0,
            topology_changed: true,
        }
    }

    /// Returns a factory closure for [`glr_sim::Simulation::new`] that
    /// builds every node with the same protocol configuration.
    pub fn factory(cfg: GlrConfig) -> impl FnMut(NodeId, &SimConfig) -> Glr {
        move |node, sim| Glr::with_config(node, sim, cfg.clone())
    }

    /// Messages currently in the Store (waiting to send).
    pub fn store_len(&self) -> usize {
        self.messages.store_len()
    }

    /// Messages currently in the Cache (awaiting acknowledgement).
    pub fn cache_len(&self) -> usize {
        self.messages.cache_len()
    }

    fn ensure_timer(&mut self, ctx: &mut Ctx<'_, GlrPacket>) {
        if !self.timer_armed && !self.messages.is_empty() {
            ctx.set_timer(self.cfg.check_interval, ROUTE_CHECK);
            self.timer_armed = true;
        }
    }

    /// Initial destination estimate per the location-knowledge scenario.
    fn initial_dest_estimate(
        &mut self,
        ctx: &mut Ctx<'_, GlrPacket>,
        dst: NodeId,
    ) -> LocationEstimate {
        let now = ctx.now();
        match self.cfg.location_mode {
            LocationMode::AllKnow | LocationMode::SourceKnows => {
                LocationEstimate::new(ctx.true_pos(dst), now)
            }
            LocationMode::NoneKnow => {
                // "Random location is given at the beginning" — but anything
                // we have diffused beats a blind guess.
                if let Some(known) = self.locations.get(dst) {
                    return known;
                }
                let region = ctx.config().region;
                let x = ctx.rng().random_range(0.0..=region.width());
                let y = ctx.rng().random_range(0.0..=region.height());
                LocationEstimate::new(Point2::new(x, y), glr_sim::SimTime::ZERO)
            }
        }
    }

    /// Folds current radio contacts into the long-term location table.
    fn absorb_contacts(&mut self, ctx: &mut Ctx<'_, GlrPacket>) {
        for e in ctx.neighbors() {
            self.locations
                .update(e.id, LocationEstimate::new(e.pos, e.heard_at));
        }
    }

    /// One routing pass over the Store (the body of Algorithm 2).
    fn route_all(&mut self, ctx: &mut Ctx<'_, GlrPacket>) {
        let now = ctx.now();
        self.absorb_contacts(ctx);
        if self.messages.is_empty() {
            return;
        }

        let my_pos = ctx.my_pos();
        let view = ctx.local_view();
        // Link-margin filter: a neighbour whose beacon is `age` seconds old
        // may have moved up to `v_max * age` metres; transmitting to an
        // entry without enough range margin mostly burns airtime on
        // retries (and the resulting slow acks fork custody). Half the
        // worst case is used as the expected displacement.
        let v_max = ctx.config().speed_range.1;
        let range = ctx.config().radio_range;
        // One shared snapshot serves both filters (an Arc clone, not a
        // fresh table materialisation, under the default table backend).
        let nbrs = ctx.neighbors();
        let one_hop: Vec<NodeId> = nbrs
            .iter()
            .filter(|e| {
                let age = (now - e.heard_at).max(0.0);
                e.pos.dist(my_pos) <= range - 0.3 * v_max * age
            })
            .map(|e| e.id)
            .collect();
        // Direct contacts with destinations are too precious to filter: a
        // marginal link to the destination is always worth trying.
        let all_contacts: Vec<NodeId> = nbrs.iter().map(|e| e.id).collect();
        self.query_destinations(ctx, &one_hop);

        // Expired custody waits: retransmit to the same next hop once (the
        // receiver dedupes and re-acks if it already took custody), then
        // fall back to re-routing.
        for e in self.messages.take_expired(now) {
            if self.cfg.custody && e.attempts <= 1 && one_hop.contains(&e.sent_to) {
                ctx.count_event("glr.custody_retx");
                if self.transmit(ctx, e.sent_to, &e.msg) {
                    let backlog =
                        ctx.tx_queue_len() as f64 * ctx.config().tx_time(e.msg.info.size + 32);
                    self.messages.to_cache_with_attempts(
                        e.msg,
                        e.sent_to,
                        now + self.cfg.cache_timeout + backlog,
                        e.attempts + 1,
                    );
                    continue;
                }
            }
            ctx.count_event("glr.custody_reroute");
            self.messages.push(e.msg);
        }
        if self.messages.store_len() == 0 {
            return;
        }
        // Has the neighbourhood changed since the last pass? (FNV over the
        // sorted id set.)
        let mut ids: Vec<u32> = one_hop.iter().map(|n| n.0).collect();
        ids.sort_unstable();
        let mut hash: u64 = 0xcbf29ce484222325;
        for id in ids {
            hash ^= id as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        self.topology_changed = hash != self.last_nbr_hash;
        self.last_nbr_hash = hash;
        let spanner = spanner_neighbors(
            my_pos,
            &view,
            &one_hop,
            ctx.config().radio_range,
            self.cfg.k,
            self.cfg.spanner,
        );

        // Once the link-layer queue fills, further send attempts this pass
        // are pointless churn: hold the remaining messages untouched.
        let mut link_saturated = false;
        for mut msg in self.messages.drain_store() {
            if link_saturated {
                self.messages.push(msg);
                continue;
            }
            // Oracle mode refreshes the estimate at every hop/check.
            if self.cfg.location_mode == LocationMode::AllKnow {
                msg.dest_est = LocationEstimate::new(ctx.true_pos(msg.info.dst), now);
            } else if let Some(fresher) = self.locations.fresher_for(msg.info.dst, &msg.dest_est) {
                msg.dest_est = fresher;
            }

            match self.route_one(ctx, my_pos, &spanner, &all_contacts, &mut msg) {
                Some(next) => {
                    let sent = self.transmit(ctx, next, &msg);
                    if sent {
                        if self.cfg.custody {
                            // The acknowledgement cannot arrive before the
                            // frames already queued ahead have drained, so
                            // the custody timeout starts after the
                            // (locally-known) queue backlog.
                            let backlog = ctx.tx_queue_len() as f64
                                * ctx.config().tx_time(msg.info.size + 32);
                            let expires = now + self.cfg.cache_timeout + backlog;
                            self.messages.to_cache(msg, next, expires);
                        }
                        // Without custody the copy is forgotten on send.
                    } else {
                        // Queue full: keep it (and everything after it)
                        // for the next check.
                        link_saturated = true;
                        self.messages.push(msg);
                    }
                }
                None => {
                    msg.stuck_checks += 1;
                    // A copy stuck this long sits at the locally-closest
                    // node to a (probably stale) destination estimate; the
                    // paper's escape assigns a new nearby estimate "so that
                    // the node which is closest to the wrong location could
                    // deliver it out to another node". Being at the
                    // estimated spot makes staleness certain, so the escape
                    // fires sooner there; repeated escapes back off
                    // exponentially so a hard-to-reach destination does not
                    // turn into a permanent random walk.
                    let at_stale_spot = my_pos.dist(msg.dest_est.pos) <= ctx.config().radio_range;
                    let base = if at_stale_spot {
                        self.cfg.stuck_threshold
                    } else {
                        self.cfg.stuck_threshold * 4
                    };
                    let threshold = base << msg.perturbations.min(4);
                    if msg.stuck_checks >= threshold {
                        ctx.count_event("glr.perturb");
                        self.perturb_destination(ctx, &mut msg);
                    }
                    self.messages.push(msg);
                }
            }
        }
    }

    /// Picks the next hop for one copy; `None` leaves it stored.
    fn route_one(
        &mut self,
        ctx: &mut Ctx<'_, GlrPacket>,
        my_pos: Point2,
        spanner: &[(NodeId, Point2)],
        one_hop: &[NodeId],
        msg: &mut StoredMessage,
    ) -> Option<NodeId> {
        let dst = msg.info.dst;
        // Direct contact with the destination trumps everything.
        if one_hop.contains(&dst) {
            msg.face = None;
            return Some(dst);
        }
        let est = msg.dest_est.pos;
        let my_d = my_pos.dist(est);

        // Perimeter (face) mode.
        if let Some(fs) = msg.face {
            if my_d < fs.entry_dist {
                msg.face = None; // recovered: resume greedy below
            } else if fs.entry == ctx.me() && fs.prev != ctx.me() {
                // Walked the whole face back to the entry point without
                // progress: the estimate is hopeless — perturb and retry.
                msg.face = None;
                self.perturb_destination(ctx, msg);
                return None;
            } else if fs.budget == 0 {
                // Walk budget exhausted: wait for mobility instead.
                msg.face = None;
                msg.stuck_checks = msg.stuck_checks.max(1);
                return None;
            } else {
                let next = face_next_hop(my_pos, spanner, fs.prev, est)?;
                msg.face = Some(FaceState {
                    prev: ctx.me(),
                    budget: fs.budget - 1,
                    ..fs
                });
                return Some(next);
            }
        }

        // Greedy along this copy's DSTD tree.
        if let Some(next) = dstd_next_hop(my_pos, est, spanner, msg.tree) {
            return Some(next);
        }

        // Local minimum: enter face recovery — but only on a *fresh*
        // failure or after the neighbourhood changed (the paper resends
        // stored messages "when its relative location with respect to the
        // neighbouring nodes changes"); otherwise the same doomed walk
        // would be re-launched every check interval.
        if msg.stuck_checks > 0 && !self.topology_changed {
            return None;
        }
        let entry_next = first_ccw_from_direction(my_pos, spanner, est)?;
        if spanner.len() < 2 {
            // A single edge can only ping-pong; store and wait instead.
            return None;
        }
        msg.face = Some(FaceState {
            entry: ctx.me(),
            entry_dist: my_d,
            prev: ctx.me(),
            budget: FACE_BUDGET,
        });
        Some(entry_next)
    }

    /// Queues the data frame; `true` on success.
    fn transmit(&mut self, ctx: &mut Ctx<'_, GlrPacket>, to: NodeId, msg: &StoredMessage) -> bool {
        let pkt = GlrPacket::Data(DataPacket {
            info: msg.info,
            tree: msg.tree,
            copy_tag: msg.copy_tag,
            hops: msg.hops + 1,
            dest_est: msg.dest_est,
            face: msg.face,
            perturbations: msg.perturbations,
        });
        let size = pkt.wire_size();
        ctx.send(to, pkt, size, PacketKind::Data).is_ok()
    }

    /// Location diffusion during the neighbour-info collection phase of a
    /// route check: send stuck destinations' current estimates to the
    /// neighbourhood; anyone knowing better replies.
    fn query_destinations(&mut self, ctx: &mut Ctx<'_, GlrPacket>, one_hop: &[NodeId]) {
        if one_hop.is_empty() {
            return;
        }
        let mut entries: Vec<(NodeId, LocationEstimate)> = Vec::new();
        for m in self.messages.iter_store() {
            if m.stuck_checks >= 1 && !entries.iter().any(|&(d, _)| d == m.info.dst) {
                entries.push((m.info.dst, m.dest_est));
            }
        }
        if entries.is_empty() {
            return;
        }
        let pkt = GlrPacket::LocQuery(entries);
        let size = pkt.wire_size();
        for &n in one_hop {
            let _ = ctx.send(n, pkt.clone(), size, PacketKind::Control);
        }
    }

    /// Stale-location escape: assign a fresh random estimate near the old
    /// one, widening with each attempt (paper §3.3).
    ///
    /// The perturbed estimate is stamped *now*: everything the network
    /// knew before this moment was evidently not leading anywhere, so only
    /// sightings newer than the perturbation may override it. (Stamping it
    /// older lets any relay's equally-stale table entry snap the copy
    /// right back to the attractor it just escaped.)
    fn perturb_destination(&mut self, ctx: &mut Ctx<'_, GlrPacket>, msg: &mut StoredMessage) {
        let region = ctx.config().region;
        let radius = ctx.config().radio_range * (1.0 + msg.perturbations as f64);
        let angle = ctx.rng().random_range(0.0..std::f64::consts::TAU);
        let r = ctx.rng().random_range(0.5..=1.0) * radius;
        let p = region.clamp(msg.dest_est.pos + Point2::new(angle.cos(), angle.sin()) * r);
        msg.dest_est = if self.cfg.perturb_gossip {
            // Shared-rendezvous variant: the new estimate is "fresh" and
            // may spread; only sightings after this moment override it.
            LocationEstimate::new(p, ctx.now())
        } else {
            // Message-local variant: the guess inherits the base
            // observation's timestamp, so real sightings newer than the
            // base still override it (each snap-back ratchets the base
            // upward until the stale consensus is exhausted).
            LocationEstimate::guess(p, msg.dest_est.at)
        };
        msg.perturbations += 1;
        msg.stuck_checks = 0;
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_, GlrPacket>, from: NodeId, d: DataPacket) {
        // Location diffusion: learn from the carried estimate, and tell the
        // sender if we know better.
        let fresher_back = self.locations.fresher_for(d.info.dst, &d.dest_est);
        self.locations.update(d.info.dst, d.dest_est);

        if self.cfg.custody {
            let ack = GlrPacket::HopAck {
                id: d.info.id,
                copy_tag: d.copy_tag,
                fresher_dest: fresher_back.map(|est| (d.info.dst, est)),
            };
            let size = ack.wire_size();
            let _ = ctx.send(from, ack, size, PacketKind::Control);
        }

        if d.info.dst == ctx.me() {
            ctx.deliver(d.info.id, d.hops);
            return;
        }
        if d.hops >= self.cfg.max_hops {
            ctx.count_event("glr.ttl_drop");
            return; // loop safety valve
        }
        if self.messages.contains(d.info.id, d.copy_tag) {
            return; // duplicate copy already in custody here
        }
        // Exact-retransmission dedupe (same sender, same hop count, within
        // the window): re-acknowledged above but not re-admitted.
        let key = (d.info.id, d.copy_tag);
        let now = ctx.now();
        let window = 2.0 * self.cfg.cache_timeout;
        if let Some(&(from0, hops0, t)) = self.seen.get(&key) {
            if from0 == from && hops0 == d.hops && now - t < window {
                ctx.count_event("glr.retx_dedupe");
                return;
            }
        }
        self.seen.insert(key, (from, d.hops, now));
        let mut msg = StoredMessage::new(d.info, d.tree, d.copy_tag, d.dest_est);
        msg.hops = d.hops;
        msg.face = d.face;
        msg.perturbations = d.perturbations;
        // Apply any fresher local knowledge immediately.
        if let Some(fresher) = self.locations.fresher_for(d.info.dst, &msg.dest_est) {
            msg.dest_est = fresher;
        }
        let outcome = self.messages.push(msg);
        for _ in 0..outcome.evicted {
            ctx.report_storage_drop();
        }
        if !outcome.stored {
            ctx.report_storage_drop();
        }
        self.ensure_timer(ctx);
    }
}

impl Protocol for Glr {
    type Packet = GlrPacket;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
        let est = self.initial_dest_estimate(ctx, info.dst);
        let sim = ctx.config();
        // Table 2 pins copy counts per scenario via the policy; the
        // default adaptive policy decides from density (Algorithm 1).
        let copies = self
            .cfg
            .copy_policy
            .copies(sim.n_nodes, sim.radio_range, sim.region);
        for (tag, tree) in DstdKind::for_copies(copies).into_iter().enumerate() {
            self.seen
                .insert((info.id, tag as u8), (ctx.me(), 0, ctx.now()));
            let msg = StoredMessage::new(info, tree, tag as u8, est);
            let outcome = self.messages.push(msg);
            for _ in 0..outcome.evicted {
                ctx.report_storage_drop();
            }
            if !outcome.stored {
                ctx.report_storage_drop();
            }
        }
        // "A node initiates the geometric routing process if it has
        // messages in its storage area" — first pass happens immediately.
        self.route_all(ctx);
        self.ensure_timer(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, from: NodeId, packet: Self::Packet) {
        match packet {
            GlrPacket::Data(d) => self.handle_data(ctx, from, d),
            GlrPacket::HopAck {
                id,
                copy_tag,
                fresher_dest,
            } => {
                self.messages.ack(id, copy_tag);
                if let Some((dst, est)) = fresher_dest {
                    self.locations.update(dst, est);
                    self.messages.refresh_destination(dst, est);
                }
            }
            GlrPacket::LocQuery(entries) => {
                let mut fresher = Vec::new();
                for (dst, est) in entries {
                    if let Some(mine) = self.locations.fresher_for(dst, &est) {
                        fresher.push((dst, mine));
                    }
                    self.locations.update(dst, est);
                }
                if !fresher.is_empty() {
                    let pkt = GlrPacket::LocReply(fresher);
                    let size = pkt.wire_size();
                    let _ = ctx.send(from, pkt, size, PacketKind::Control);
                }
            }
            GlrPacket::LocReply(entries) => {
                for (dst, est) in entries {
                    self.locations.update(dst, est);
                    self.messages.refresh_destination(dst, est);
                }
            }
        }
    }

    fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, Self::Packet>, nbr: NodeId) {
        // Contact-time location exchange (paper §2.3.1): remember where we
        // met everyone.
        if let Some(e) = ctx.neighbors().into_iter().find(|e| e.id == nbr) {
            self.locations
                .update(e.id, LocationEstimate::new(e.pos, e.heard_at));
        }
        self.ensure_timer(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Packet>, token: u64) {
        if token != ROUTE_CHECK {
            return;
        }
        self.timer_armed = false;
        self.route_all(ctx);
        self.ensure_timer(ctx);
    }

    fn storage_used(&self) -> usize {
        self.messages.total()
    }
}

/// Convenience: `CopyPolicy` re-export is used in the decision plumbing
/// above; keeping the import alive even when the match arm is trivial.
#[allow(dead_code)]
fn _policy_witness(p: CopyPolicy) -> CopyPolicy {
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_mobility::Region;
    use glr_sim::{SimConfig, Simulation, Workload};

    fn dense_config(seed: u64) -> SimConfig {
        let mut c = SimConfig::paper(250.0, seed).with_duration(120.0);
        c.n_nodes = 10;
        c.region = Region::new(150.0, 150.0);
        c
    }

    #[test]
    fn delivers_in_dense_network() {
        let wl = Workload::paper_style(10, 5, 1000);
        let stats = Simulation::new(dense_config(1), wl, Glr::new).run();
        assert_eq!(stats.messages_created(), 5);
        assert_eq!(stats.messages_delivered(), 5, "dense GLR must deliver all");
        // Dense regime: the adaptive policy uses a single copy, so the
        // number of data transmissions stays modest (one custody chain per
        // message, not a flood).
        assert!(stats.data_tx < 60, "data_tx = {}", stats.data_tx);
    }

    #[test]
    fn single_copy_in_dense_regime() {
        // In a dense deployment the source launches exactly one copy; peak
        // storage at the source right after creation is therefore 1.
        let wl = Workload::single(NodeId(0), NodeId(5), 1.0, 1000);
        let stats = Simulation::new(dense_config(2), wl, Glr::new).run();
        assert_eq!(stats.messages_delivered(), 1);
        assert!(stats.max_peak_storage() <= 1);
    }

    #[test]
    fn paper_strip_sparse_uses_multiple_copies() {
        // 100 m in the strip is the 3-copy regime: right after creation the
        // source holds 3 copies.
        let cfg = SimConfig::paper(100.0, 3).with_duration(200.0);
        let wl = Workload::paper_style(50, 20, 1000);
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        // At least one source held 3 copies at some sample point, or the
        // copies left within the first second; peak storage across the run
        // must reflect multi-copy operation somewhere.
        assert!(
            stats.max_peak_storage() >= 2,
            "multi-copy regime should show in storage peaks (got {})",
            stats.max_peak_storage()
        );
        assert!(stats.messages_delivered() > 0);
    }

    #[test]
    fn custody_retransmits_after_loss() {
        // Two nodes, tiny collision-free world: disable custody and compare
        // isn't deterministic here; instead verify the cache drains on ack
        // and the run delivers with custody on despite contention.
        let mut cfg = dense_config(4);
        cfg.collision_prob = 0.3; // hostile channel
        let wl = Workload::paper_style(10, 10, 1000);
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        assert_eq!(
            stats.messages_delivered(),
            10,
            "custody must push everything through a lossy channel"
        );
    }

    #[test]
    fn no_custody_forgets_after_send() {
        let mut cfg = dense_config(5);
        cfg.collision_prob = 0.0;
        let wl = Workload::paper_style(10, 8, 1000);
        let factory = Glr::factory(GlrConfig::paper().with_custody(false));
        let stats = Simulation::new(cfg, wl, factory).run();
        // Without custody, clean channel: still delivers.
        assert_eq!(stats.messages_delivered(), 8);
    }

    #[test]
    fn storage_limit_respected() {
        let mut cfg = dense_config(6);
        cfg.storage_limit = Some(2);
        let wl = Workload::paper_style(10, 30, 1000);
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        assert!(stats.max_peak_storage() <= 2);
    }

    #[test]
    fn oracle_location_mode_runs() {
        let cfg = SimConfig::paper(100.0, 7).with_duration(150.0);
        let wl = Workload::paper_style(50, 10, 1000);
        let factory = Glr::factory(GlrConfig::paper().with_location_mode(LocationMode::AllKnow));
        let stats = Simulation::new(cfg, wl, factory).run();
        assert!(stats.messages_delivered() > 0);
    }

    #[test]
    fn none_know_mode_still_delivers_some() {
        let cfg = SimConfig::paper(150.0, 8).with_duration(400.0);
        let wl = Workload::paper_style(50, 10, 1000);
        let factory = Glr::factory(GlrConfig::paper().with_location_mode(LocationMode::NoneKnow));
        let stats = Simulation::new(cfg, wl, factory).run();
        assert!(
            stats.messages_delivered() > 0,
            "diffusion + perturbation must deliver something"
        );
    }

    #[test]
    fn partitioned_pair_never_delivers() {
        let mut cfg = SimConfig::paper(10.0, 9).with_duration(60.0);
        cfg.n_nodes = 2;
        cfg.region = Region::new(50_000.0, 50_000.0);
        cfg.speed_range = (0.0, 0.1);
        let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        assert_eq!(stats.messages_delivered(), 0);
        // But the source keeps custody of its copies.
        assert!(stats.max_peak_storage() >= 1);
    }

    #[test]
    fn store_and_forward_bridges_partitions_via_mobility() {
        // The paper-strip at 50 m is heavily partitioned; mobility plus
        // store-and-forward must still deliver a decent share over time.
        let cfg = SimConfig::paper(50.0, 10).with_duration(1500.0);
        let wl = Workload::paper_style(50, 30, 1000);
        let stats = Simulation::new(cfg, wl, Glr::new).run();
        let ratio = stats.delivery_ratio();
        assert!(
            ratio > 0.3,
            "store-and-forward should bridge partitions, got {ratio}"
        );
    }
}
