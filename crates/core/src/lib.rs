//! **GLR — Geometric Localized Routing for Disruption Tolerant Networks.**
//!
//! This crate is the primary contribution of *"A Geometric Routing
//! Protocol in Disruption Tolerant Network"* (Du, Kranakis, Nayak; ICDCS
//! 2009), implemented as a [`glr_sim::Protocol`]:
//!
//! * **Algorithm 1 — delay-tolerant decision making** ([`CopyPolicy`]):
//!   sources pick 1 copy in probably-connected networks and 3 (or more) in
//!   sparse ones, using the Georgiou et al. connectivity bound.
//! * **Algorithm 2 — geometric routing with controlled flooding**
//!   ([`Glr`]): each copy follows a Max/Min/Mid source-to-destination tree
//!   (re-derived hop by hop on the node-local Delaunay spanner), stores
//!   when no progress is possible, and re-checks every `check_interval`.
//! * **Custody transfer** ([`MessageStore`]): Store/Cache areas, per-hop
//!   acknowledgements, timeout-driven rescheduling; Cache entries are
//!   dropped first under storage pressure.
//! * **Location diffusion** ([`LocationTable`]): timestamped last-known
//!   locations, packet-carried destination estimates, fresher-wins merging
//!   and piggy-backed corrections on custody acks.
//! * **Face-routing recovery** and **stale-location perturbation** for
//!   local minima and runaway destinations.
//!
//! # Quick start
//!
//! ```
//! use glr_core::Glr;
//! use glr_sim::{MediumKind, Scenario, SimConfig};
//!
//! // Table 1 configuration at 250 m, 60 simulated seconds, as a
//! // declarative scenario. Swap [`MediumKind`] to re-run the identical
//! // experiment under an ideal or log-distance-shadowing radio, or hand
//! // a `Vec<Scenario>` grid to `glr_sim::Sweep` for a multi-threaded
//! // (and shardable) parameter sweep.
//! let cfg = SimConfig::paper(250.0, 1).with_duration(60.0);
//! let stats = Scenario::new("quickstart", cfg)
//!     .with_messages(20)
//!     .with_medium(MediumKind::Contention)
//!     .run(Glr::new);
//! println!("delivered {:.0}%", stats.delivery_ratio() * 100.0);
//! ```
//!
//! GLR runs unchanged at 10k+ nodes: `SimConfig::paper_scaled` (or the
//! `Scenario::large_n_tier` preset) keeps the paper's node density while
//! the engine's grid spatial index and shared-snapshot neighbour tables
//! (`glr_sim::TableBackend::Shared`) keep the beacon path near O(1) per
//! reception.

#![warn(missing_docs)]

mod config;
mod decision;
mod location;
mod packet;
mod protocol;
mod spanner;
mod storage;

pub use config::{GlrConfig, LocationMode};
pub use decision::CopyPolicy;
pub use location::{LocationEstimate, LocationTable};
pub use packet::{DataPacket, GlrPacket, ACK_BYTES, DATA_HEADER_BYTES};
pub use protocol::Glr;
pub use spanner::{face_next_hop, first_ccw_from_direction, spanner_neighbors, SpannerMode};
pub use storage::{CacheEntry, FaceState, MessageStore, PushOutcome, StoredMessage};
