//! Location diffusion (paper §2.3.1).
//!
//! Every node keeps a table of the most recent position it has learned for
//! every other node, with a timestamp. Entries come from beacons (direct
//! contact), from destination-location fields carried in data packets, and
//! from hop acknowledgements that piggy-back fresher estimates back to the
//! message holder. "Fresher timestamp wins" everywhere.

use glr_geometry::Point2;
use glr_sim::{NodeId, SimTime};
use std::collections::HashMap;

/// A position estimate with the time it was learned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationEstimate {
    /// Estimated position.
    pub pos: Point2,
    /// When the information was current.
    pub at: SimTime,
    /// `true` for *fabricated* estimates (stale-location perturbation):
    /// they guide the copy that carries them but are never knowledge —
    /// location tables reject them and gossip never spreads them.
    pub guessed: bool,
}

impl LocationEstimate {
    /// Creates a real (observed) estimate.
    pub fn new(pos: Point2, at: SimTime) -> Self {
        LocationEstimate {
            pos,
            at,
            guessed: false,
        }
    }

    /// Creates a fabricated estimate (perturbation output). Its timestamp
    /// marks the perturbation moment: only *observations made after it*
    /// may override the guess, otherwise the copy would snap right back to
    /// the stale attractor it is trying to escape.
    pub fn guess(pos: Point2, at: SimTime) -> Self {
        LocationEstimate {
            pos,
            at,
            guessed: true,
        }
    }

    /// `true` when `self` is strictly fresher than `other`.
    pub fn fresher_than(&self, other: &LocationEstimate) -> bool {
        self.at > other.at
    }
}

/// Per-node table of last-known locations of other nodes.
///
/// # Examples
///
/// ```
/// use glr_core::{LocationEstimate, LocationTable};
/// use glr_geometry::Point2;
/// use glr_sim::{NodeId, SimTime};
///
/// let mut t = LocationTable::default();
/// let a = NodeId(7);
/// t.update(a, LocationEstimate::new(Point2::new(1.0, 2.0), SimTime::from_secs(10.0)));
/// // Staler information never overwrites fresher information:
/// t.update(a, LocationEstimate::new(Point2::new(9.0, 9.0), SimTime::from_secs(5.0)));
/// assert_eq!(t.get(a).unwrap().pos, Point2::new(1.0, 2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocationTable {
    entries: HashMap<NodeId, LocationEstimate>,
}

impl LocationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `est` for `node` if it is fresher than (or equal to) what we
    /// have. Returns `true` when the table changed. Fabricated estimates
    /// ([`LocationEstimate::guess`]) are rejected — tables hold knowledge,
    /// not speculation.
    pub fn update(&mut self, node: NodeId, est: LocationEstimate) -> bool {
        if est.guessed {
            return false;
        }
        match self.entries.get(&node) {
            Some(cur) if cur.at > est.at => false,
            _ => {
                self.entries.insert(node, est);
                true
            }
        }
    }

    /// Last known estimate for `node`.
    pub fn get(&self, node: NodeId) -> Option<LocationEstimate> {
        self.entries.get(&node).copied()
    }

    /// Returns our estimate for `node` only when it is strictly fresher
    /// than `than` — the "notify the message holder" check of the location
    /// diffusion protocol.
    pub fn fresher_for(&self, node: NodeId, than: &LocationEstimate) -> Option<LocationEstimate> {
        self.get(node).filter(|mine| mine.fresher_than(than))
    }

    /// Number of nodes with known locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(x: f64, t: f64) -> LocationEstimate {
        LocationEstimate::new(Point2::new(x, 0.0), SimTime::from_secs(t))
    }

    #[test]
    fn fresher_wins() {
        let mut t = LocationTable::new();
        let n = NodeId(1);
        assert!(t.update(n, est(1.0, 10.0)));
        assert!(!t.update(n, est(2.0, 5.0)), "stale must not overwrite");
        assert_eq!(t.get(n).unwrap().pos.x, 1.0);
        assert!(t.update(n, est(3.0, 20.0)));
        assert_eq!(t.get(n).unwrap().pos.x, 3.0);
    }

    #[test]
    fn equal_timestamp_updates() {
        // Ties refresh (a node re-hearing the same beacon keeps working).
        let mut t = LocationTable::new();
        let n = NodeId(2);
        t.update(n, est(1.0, 10.0));
        assert!(t.update(n, est(5.0, 10.0)));
        assert_eq!(t.get(n).unwrap().pos.x, 5.0);
    }

    #[test]
    fn fresher_for_notification() {
        let mut t = LocationTable::new();
        let n = NodeId(3);
        t.update(n, est(1.0, 50.0));
        // Holder carries an estimate from t=10: we should notify.
        assert!(t.fresher_for(n, &est(0.0, 10.0)).is_some());
        // Holder's estimate from t=90 beats ours: stay silent.
        assert!(t.fresher_for(n, &est(0.0, 90.0)).is_none());
        // Unknown node: nothing to say.
        assert!(t.fresher_for(NodeId(99), &est(0.0, 0.0)).is_none());
    }

    #[test]
    fn size_accounting() {
        let mut t = LocationTable::new();
        assert!(t.is_empty());
        t.update(NodeId(1), est(0.0, 1.0));
        t.update(NodeId(2), est(0.0, 1.0));
        t.update(NodeId(1), est(0.0, 2.0));
        assert_eq!(t.len(), 2);
    }
}
