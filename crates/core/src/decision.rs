//! The delay-tolerant decision process (paper Algorithm 1).
//!
//! Before a source injects a message it decides how many identical copies
//! to launch. The decision uses only globally-known constants — node count,
//! radio range, region area — through the Georgiou et al. connectivity
//! bound: dense networks that are probably connected get a **single copy**
//! (more would only add contention); sparse, probably-partitioned networks
//! get **multiple copies** along different DSTD trees to cut delay.

use glr_geometry::connectivity_probability;
use glr_mobility::Region;

/// Copy-count policy for GLR sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPolicy {
    /// Always use this many copies (ablation baseline).
    Fixed(usize),
    /// Algorithm 1: single copy when the connectivity probability is at
    /// least the threshold (as per mille, 0–1000), multiple otherwise.
    Adaptive {
        /// Connectivity-probability threshold in per-mille (e.g. 500 =
        /// 0.5). Stored as an integer so the policy stays `Eq`/hashable.
        threshold_pm: u16,
        /// Copies used in the sparse regime (the paper uses 3).
        sparse_copies: usize,
        /// Copies in the *extremely* sparse regime (connectivity
        /// probability indistinguishable from zero at half the threshold
        /// radius); extra copies take additional MidDSTD trees.
        very_sparse_copies: usize,
    },
}

impl Default for CopyPolicy {
    fn default() -> Self {
        CopyPolicy::PAPER
    }
}

impl CopyPolicy {
    /// The paper's configuration: threshold 0.5, three copies when sparse.
    /// With 50 nodes in the 1500 m x 300 m strip this yields 3 copies at
    /// 50/100 m and 1 copy at 150/200/250 m — exactly the regimes used in
    /// Figures 4–7 and Tables 4–6.
    pub const PAPER: CopyPolicy = CopyPolicy::Adaptive {
        threshold_pm: 500,
        sparse_copies: 3,
        very_sparse_copies: 3,
    };

    /// Number of copies a source should launch.
    ///
    /// # Examples
    ///
    /// ```
    /// use glr_core::CopyPolicy;
    /// use glr_mobility::Region;
    ///
    /// let policy = CopyPolicy::PAPER;
    /// // The paper's regimes:
    /// assert_eq!(policy.copies(50, 100.0, Region::PAPER_STRIP), 3);
    /// assert_eq!(policy.copies(50, 150.0, Region::PAPER_STRIP), 1);
    /// ```
    pub fn copies(&self, n_nodes: usize, radio_range: f64, region: Region) -> usize {
        match *self {
            CopyPolicy::Fixed(k) => k.max(1),
            CopyPolicy::Adaptive {
                threshold_pm,
                sparse_copies,
                very_sparse_copies,
            } => {
                let p = connectivity_probability(
                    n_nodes.max(2),
                    radio_range,
                    region.width(),
                    region.height(),
                );
                if p >= threshold_pm as f64 / 1000.0 {
                    1
                } else {
                    // Probe the "half radius" regime for extreme sparsity.
                    let p_half = connectivity_probability(
                        n_nodes.max(2),
                        radio_range * 2.0,
                        region.width(),
                        region.height(),
                    );
                    if p_half < threshold_pm as f64 / 1000.0 {
                        very_sparse_copies.max(sparse_copies)
                    } else {
                        sparse_copies
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regimes_match_evaluation() {
        let p = CopyPolicy::PAPER;
        let strip = Region::PAPER_STRIP;
        // "3 copies for 50m/100m and 1 copy for 150m/200m/250m".
        assert_eq!(p.copies(50, 50.0, strip), 3);
        assert_eq!(p.copies(50, 100.0, strip), 3);
        assert_eq!(p.copies(50, 150.0, strip), 1);
        assert_eq!(p.copies(50, 200.0, strip), 1);
        assert_eq!(p.copies(50, 250.0, strip), 1);
    }

    #[test]
    fn fixed_policy_is_constant() {
        let p = CopyPolicy::Fixed(5);
        assert_eq!(p.copies(50, 50.0, Region::PAPER_STRIP), 5);
        assert_eq!(p.copies(50, 250.0, Region::PAPER_STRIP), 5);
        // Zero is clamped to one copy.
        assert_eq!(
            CopyPolicy::Fixed(0).copies(50, 50.0, Region::PAPER_STRIP),
            1
        );
    }

    #[test]
    fn denser_deployments_need_fewer_copies() {
        let p = CopyPolicy::PAPER;
        // 500 nodes in the same strip: connected even at 50 m.
        assert_eq!(p.copies(500, 100.0, Region::PAPER_STRIP), 1);
    }

    #[test]
    fn square_region_fig1_regimes() {
        // Figure 1: 50 nodes in 1000x1000; 250 m is (nearly) connected,
        // 100 m is "almost impossible" to connect.
        let p = CopyPolicy::PAPER;
        assert_eq!(p.copies(50, 250.0, Region::PAPER_SQUARE), 1);
        assert!(p.copies(50, 100.0, Region::PAPER_SQUARE) >= 3);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CopyPolicy::default(), CopyPolicy::PAPER);
    }
}
