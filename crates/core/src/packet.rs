//! GLR's over-the-air packet formats.

use crate::location::LocationEstimate;
use crate::storage::FaceState;
use glr_geometry::DstdKind;
use glr_sim::{MessageId, MessageInfo, NodeId};

/// A data frame carrying one message copy one hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPacket {
    /// End-to-end message facts.
    pub info: MessageInfo,
    /// The DSTD tree this copy follows (the message "flag" of Algorithm 2).
    pub tree: DstdKind,
    /// Copy/branch tag for custody acknowledgements.
    pub copy_tag: u8,
    /// Link hops taken *including* this transmission.
    pub hops: u32,
    /// Destination-location estimate carried in the header (location
    /// diffusion).
    pub dest_est: LocationEstimate,
    /// Face-recovery state, when the copy is in perimeter mode.
    pub face: Option<FaceState>,
    /// Times the destination estimate has been perturbed so far.
    pub perturbations: u32,
}

/// GLR packets.
#[derive(Debug, Clone, PartialEq)]
pub enum GlrPacket {
    /// A message copy moving one hop.
    Data(DataPacket),
    /// Custody acknowledgement for `(id, copy_tag)`, optionally carrying a
    /// fresher destination-location estimate back to the sender.
    HopAck {
        /// Acknowledged message.
        id: MessageId,
        /// Acknowledged copy/branch.
        copy_tag: u8,
        /// "I know a fresher destination location than your header did."
        fresher_dest: Option<(NodeId, LocationEstimate)>,
    },
    /// Part of the route check's neighbour-information collection (paper
    /// §2.3.1): "message holder adds destination location information in
    /// the packet which is used to collect neighbouring nodes'
    /// information". Receivers adopt fresher entries and reply with
    /// [`GlrPacket::LocReply`] for any destination they know better.
    LocQuery(Vec<(NodeId, LocationEstimate)>),
    /// Fresher destination locations returned to a querying holder.
    LocReply(Vec<(NodeId, LocationEstimate)>),
}

/// Bytes added to the payload for GLR's data header (ids, flags, location,
/// timestamps).
pub const DATA_HEADER_BYTES: u32 = 32;
/// Size of a custody acknowledgement on the wire.
pub const ACK_BYTES: u32 = 24;
/// Fixed header of a location query/reply.
pub const LOC_HDR_BYTES: u32 = 12;
/// Per-entry size of a location query/reply (id + position + timestamp).
pub const LOC_ENTRY_BYTES: u32 = 20;

impl GlrPacket {
    /// Wire size of the packet in bytes.
    pub fn wire_size(&self) -> u32 {
        match self {
            GlrPacket::Data(d) => d.info.size + DATA_HEADER_BYTES,
            GlrPacket::HopAck { .. } => ACK_BYTES,
            GlrPacket::LocQuery(v) | GlrPacket::LocReply(v) => {
                LOC_HDR_BYTES + LOC_ENTRY_BYTES * v.len() as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_geometry::Point2;
    use glr_sim::SimTime;

    #[test]
    fn wire_sizes() {
        let info = MessageInfo {
            id: MessageId {
                src: NodeId(0),
                seq: 1,
            },
            dst: NodeId(2),
            size: 1000,
            created: SimTime::ZERO,
        };
        let d = GlrPacket::Data(DataPacket {
            info,
            tree: DstdKind::Max,
            copy_tag: 0,
            hops: 1,
            dest_est: LocationEstimate::new(Point2::ORIGIN, SimTime::ZERO),
            face: None,
            perturbations: 0,
        });
        assert_eq!(d.wire_size(), 1032);
        let a = GlrPacket::HopAck {
            id: info.id,
            copy_tag: 0,
            fresher_dest: None,
        };
        assert_eq!(a.wire_size(), 24);
    }
}
