//! Node-local routing-spanner construction from collected neighbourhood
//! views.
//!
//! At every route check a GLR node rebuilds its local view of the planar
//! spanner from whatever (stale) position information beaconing has
//! gathered. Two constructions are offered:
//!
//! * [`SpannerMode::LocalDelaunay`] — the Delaunay triangulation of the
//!   node's k-hop view, keeping edges incident to the node that are radio
//!   links. One triangulation per check: the fast path used in the big
//!   simulations.
//! * [`SpannerMode::KLocalDelaunay`] — the paper's full k-LDTG acceptance
//!   rule evaluated within the view (every view member's local Delaunay
//!   triangulation is consulted as a witness). More faithful, ~|view|×
//!   more expensive; used by the fidelity ablation.

use glr_geometry::{ldtg_local_neighbors, Point2, Triangulation};
use glr_sim::{NeighborEntry, NodeId};

/// Which local spanner construction a GLR node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpannerMode {
    /// One local Delaunay triangulation per check (default).
    #[default]
    LocalDelaunay,
    /// The paper's witness-checked k-LDTG rule within the view.
    KLocalDelaunay,
}

/// This node's spanner neighbours: the subset of its radio neighbours kept
/// by the local planar spanner, with their last-known positions.
///
/// `view` is the merged 1+2-hop table, `one_hop` the fresh radio
/// neighbours; only one-hop nodes can be next hops, but two-hop entries
/// shape the triangulation. Results are sorted by angle around `my_pos`
/// (the rotation order face routing needs).
///
/// # Examples
///
/// ```
/// use glr_core::{spanner_neighbors, SpannerMode};
/// use glr_geometry::Point2;
/// use glr_sim::{NeighborEntry, NodeId, SimTime};
///
/// let t = SimTime::from_secs(1.0);
/// let mk = |id, x, y| NeighborEntry { id: NodeId(id), pos: Point2::new(x, y), heard_at: t };
/// let view = vec![mk(1, 60.0, 0.0), mk(2, 0.0, 60.0)];
/// let nbrs = spanner_neighbors(
///     Point2::ORIGIN,
///     &view,
///     &[NodeId(1), NodeId(2)],
///     100.0,
///     2,
///     SpannerMode::LocalDelaunay,
/// );
/// assert_eq!(nbrs.len(), 2);
/// ```
pub fn spanner_neighbors(
    my_pos: Point2,
    view: &[NeighborEntry],
    one_hop: &[NodeId],
    radio_range: f64,
    k: usize,
    mode: SpannerMode,
) -> Vec<(NodeId, Point2)> {
    if view.is_empty() {
        return Vec::new();
    }
    // Index 0 is self; the rest mirror `view`.
    let mut points = Vec::with_capacity(view.len() + 1);
    points.push(my_pos);
    points.extend(view.iter().map(|e| e.pos));

    let incident: Vec<usize> = match mode {
        SpannerMode::LocalDelaunay => {
            let tri = Triangulation::build(&points);
            (1..points.len())
                .filter(|&i| tri.has_edge(0, i) && points[i].dist(my_pos) <= radio_range)
                .collect()
        }
        SpannerMode::KLocalDelaunay => ldtg_local_neighbors(&points, 0, radio_range, k),
    };

    let mut out: Vec<(NodeId, Point2)> = incident
        .into_iter()
        .map(|i| (view[i - 1].id, view[i - 1].pos))
        .filter(|(id, _)| one_hop.contains(id))
        .collect();
    out.sort_by(|a, b| {
        my_pos
            .angle_to(a.1)
            .partial_cmp(&my_pos.angle_to(b.1))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

/// The neighbour following `prev` counter-clockwise around this node — the
/// right-hand-rule step of face recovery, evaluated on the node's own
/// (angle-sorted) spanner neighbours.
///
/// Returns `None` when `nbrs` is empty. When `prev` is no longer a
/// neighbour (it moved away), falls back to the first neighbour
/// counter-clockwise from the ray towards `toward`.
pub fn face_next_hop(
    my_pos: Point2,
    nbrs: &[(NodeId, Point2)],
    prev: NodeId,
    toward: Point2,
) -> Option<NodeId> {
    if nbrs.is_empty() {
        return None;
    }
    if let Some(i) = nbrs.iter().position(|&(id, _)| id == prev) {
        return Some(nbrs[(i + 1) % nbrs.len()].0);
    }
    first_ccw_from_direction(my_pos, nbrs, toward)
}

/// First neighbour counter-clockwise from the ray `my_pos -> toward`
/// (perimeter-mode entry edge).
pub fn first_ccw_from_direction(
    my_pos: Point2,
    nbrs: &[(NodeId, Point2)],
    toward: Point2,
) -> Option<NodeId> {
    if nbrs.is_empty() {
        return None;
    }
    let base = my_pos.angle_to(toward);
    nbrs.iter()
        .min_by(|a, b| {
            let oa = offset(base, my_pos.angle_to(a.1));
            let ob = offset(base, my_pos.angle_to(b.1));
            oa.partial_cmp(&ob).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|&(id, _)| id)
}

fn offset(base: f64, angle: f64) -> f64 {
    let mut d = angle - base;
    while d < 0.0 {
        d += std::f64::consts::TAU;
    }
    while d >= std::f64::consts::TAU {
        d -= std::f64::consts::TAU;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_sim::SimTime;

    fn entry(id: u32, x: f64, y: f64) -> NeighborEntry {
        NeighborEntry {
            id: NodeId(id),
            pos: Point2::new(x, y),
            heard_at: SimTime::from_secs(1.0),
        }
    }

    #[test]
    fn keeps_only_radio_one_hop_neighbors() {
        // Node 3 is within Delaunay but beyond radio range; node 2 is a
        // 2-hop entry (not in one_hop).
        let view = vec![
            entry(1, 50.0, 0.0),
            entry(2, 0.0, 50.0),
            entry(3, 300.0, 300.0),
        ];
        let nbrs = spanner_neighbors(
            Point2::ORIGIN,
            &view,
            &[NodeId(1)],
            100.0,
            2,
            SpannerMode::LocalDelaunay,
        );
        assert_eq!(nbrs.len(), 1);
        assert_eq!(nbrs[0].0, NodeId(1));
    }

    #[test]
    fn delaunay_prunes_crossing_candidates() {
        // Four close neighbours around self plus one far on the same ray as
        // another: the Delaunay triangulation drops the long "shadowed" edge.
        let view = vec![
            entry(1, 40.0, 0.0),
            entry(2, 90.0, 1.0), // nearly behind node 1
            entry(3, 0.0, 40.0),
            entry(4, -40.0, 0.0),
            entry(5, 0.0, -40.0),
        ];
        let one_hop: Vec<NodeId> = (1..=5).map(NodeId).collect();
        let nbrs = spanner_neighbors(
            Point2::ORIGIN,
            &view,
            &one_hop,
            100.0,
            2,
            SpannerMode::LocalDelaunay,
        );
        let ids: Vec<u32> = nbrs.iter().map(|&(id, _)| id.0).collect();
        assert!(ids.contains(&1));
        assert!(
            !ids.contains(&2),
            "shadowed long edge must be pruned: {ids:?}"
        );
    }

    #[test]
    fn modes_agree_on_tiny_symmetric_views() {
        let view = vec![
            entry(1, 60.0, 0.0),
            entry(2, 0.0, 60.0),
            entry(3, -60.0, 0.0),
        ];
        let one_hop: Vec<NodeId> = (1..=3).map(NodeId).collect();
        let a = spanner_neighbors(
            Point2::ORIGIN,
            &view,
            &one_hop,
            100.0,
            2,
            SpannerMode::LocalDelaunay,
        );
        let b = spanner_neighbors(
            Point2::ORIGIN,
            &view,
            &one_hop,
            100.0,
            2,
            SpannerMode::KLocalDelaunay,
        );
        let ids = |v: &[(NodeId, Point2)]| v.iter().map(|&(i, _)| i).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn results_sorted_by_angle() {
        let view = vec![
            entry(1, 50.0, 1.0),  // ~0 rad
            entry(2, 0.0, 50.0),  // pi/2
            entry(3, -50.0, 1.0), // ~pi
            entry(4, 0.0, -50.0), // -pi/2
        ];
        let one_hop: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let nbrs = spanner_neighbors(
            Point2::ORIGIN,
            &view,
            &one_hop,
            100.0,
            2,
            SpannerMode::LocalDelaunay,
        );
        let angles: Vec<f64> = nbrs
            .iter()
            .map(|&(_, p)| Point2::ORIGIN.angle_to(p))
            .collect();
        for w in angles.windows(2) {
            assert!(w[0] <= w[1], "not angle-sorted: {angles:?}");
        }
    }

    #[test]
    fn empty_view_no_neighbors() {
        assert!(spanner_neighbors(
            Point2::ORIGIN,
            &[],
            &[],
            100.0,
            2,
            SpannerMode::LocalDelaunay
        )
        .is_empty());
    }

    #[test]
    fn face_next_hop_rotates_ccw() {
        let nbrs = vec![
            (NodeId(1), Point2::new(10.0, 0.0)),
            (NodeId(2), Point2::new(0.0, 10.0)),
            (NodeId(3), Point2::new(-10.0, 0.0)),
        ]; // already angle-sorted
        assert_eq!(
            face_next_hop(Point2::ORIGIN, &nbrs, NodeId(1), Point2::new(5.0, 5.0)),
            Some(NodeId(2))
        );
        assert_eq!(
            face_next_hop(Point2::ORIGIN, &nbrs, NodeId(3), Point2::new(5.0, 5.0)),
            Some(NodeId(1)),
            "rotation wraps"
        );
        // Unknown prev falls back to direction-based entry.
        let got = face_next_hop(Point2::ORIGIN, &nbrs, NodeId(9), Point2::new(10.0, 1.0));
        assert!(got.is_some());
        assert!(face_next_hop(Point2::ORIGIN, &[], NodeId(1), Point2::ORIGIN).is_none());
    }

    #[test]
    fn first_ccw_entry_edge() {
        let nbrs = vec![
            (NodeId(1), Point2::new(10.0, -1.0)),
            (NodeId(2), Point2::new(0.0, 10.0)),
        ];
        // Heading due east: node 1 sits just clockwise of the ray, so the
        // first *counter-clockwise* edge is node 2.
        assert_eq!(
            first_ccw_from_direction(Point2::ORIGIN, &nbrs, Point2::new(100.0, 0.0)),
            Some(NodeId(2))
        );
    }
}
