//! GLR's two storage areas (paper §2.3.2).
//!
//! The **Store** holds message copies waiting to be sent; the **Cache**
//! holds copies that have been sent and await the next hop's custody
//! acknowledgement. An acknowledged copy is deleted; an unacknowledged one
//! moves back to the Store after a timeout for another round of transfer
//! scheduling. Under storage pressure, Cache entries are dropped first
//! (they have at least been transmitted once).

use crate::location::LocationEstimate;
use glr_geometry::DstdKind;
use glr_sim::{MessageId, MessageInfo, NodeId, SimTime};
use std::collections::VecDeque;

/// Face-routing recovery state carried by a message copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceState {
    /// Node where greedy forwarding failed (recovery entry point).
    pub entry: NodeId,
    /// Distance from the entry point to the destination estimate; greedy
    /// resumes when beaten.
    pub entry_dist: f64,
    /// The node the copy came from (right-hand-rule reference).
    pub prev: NodeId,
    /// Remaining face hops before the walk gives up and the copy waits for
    /// mobility instead. In a DTN the "planar graph" is stitched from
    /// stale per-node views, so an unbounded walk can bounce forever on
    /// tree-like sparse topologies; the budget caps that churn.
    pub budget: u8,
}

/// One message copy as held by a GLR node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredMessage {
    /// End-to-end message facts.
    pub info: MessageInfo,
    /// Which DSTD tree this copy follows.
    pub tree: DstdKind,
    /// Distinguishes the copies of one message (the "extracted tree branch
    /// information" in custody acknowledgements).
    pub copy_tag: u8,
    /// Link hops taken so far.
    pub hops: u32,
    /// Current destination-location estimate carried with the copy.
    pub dest_est: LocationEstimate,
    /// Face-routing recovery state, when in recovery mode.
    pub face: Option<FaceState>,
    /// Consecutive route checks that failed to forward this copy.
    pub stuck_checks: u32,
    /// Times the destination estimate has been perturbed (stale-location
    /// escape, paper §3.3).
    pub perturbations: u32,
}

impl StoredMessage {
    /// A fresh copy at the source.
    pub fn new(
        info: MessageInfo,
        tree: DstdKind,
        copy_tag: u8,
        dest_est: LocationEstimate,
    ) -> Self {
        StoredMessage {
            info,
            tree,
            copy_tag,
            hops: 0,
            dest_est,
            face: None,
            stuck_checks: 0,
            perturbations: 0,
        }
    }

    /// The copy's `(message id, copy tag)` key.
    pub fn key(&self) -> (MessageId, u8) {
        (self.info.id, self.copy_tag)
    }
}

/// A sent copy awaiting its custody acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// The copy.
    pub msg: StoredMessage,
    /// Who it was sent to.
    pub sent_to: NodeId,
    /// When to give up waiting and reschedule.
    pub expires: SimTime,
    /// Transmissions attempted to `sent_to` so far (a timed-out entry is
    /// retransmitted to the *same* next hop once before re-routing — a
    /// different next hop would fork custody if the first transfer in fact
    /// succeeded and only its acknowledgement was lost).
    pub attempts: u32,
}

/// What happened when a message was offered to [`MessageStore::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// `true` when the offered message was stored.
    pub stored: bool,
    /// Number of older messages evicted to make room.
    pub evicted: usize,
}

/// The Store + Cache pair with the paper's eviction policy.
///
/// # Examples
///
/// ```
/// use glr_core::{LocationEstimate, MessageStore, StoredMessage};
/// use glr_geometry::{DstdKind, Point2};
/// use glr_sim::{MessageId, MessageInfo, NodeId, SimTime};
///
/// let mut s = MessageStore::new(Some(2));
/// let info = MessageInfo {
///     id: MessageId { src: NodeId(0), seq: 0 },
///     dst: NodeId(1),
///     size: 1000,
///     created: SimTime::ZERO,
/// };
/// let est = LocationEstimate::new(Point2::ORIGIN, SimTime::ZERO);
/// let m = StoredMessage::new(info, DstdKind::Max, 0, est);
/// assert!(s.push(m).stored);
/// assert_eq!(s.total(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageStore {
    store: VecDeque<StoredMessage>,
    cache: Vec<CacheEntry>,
    limit: Option<usize>,
}

impl MessageStore {
    /// Creates a store with the given total capacity (Store + Cache), or
    /// unlimited when `None`.
    pub fn new(limit: Option<usize>) -> Self {
        MessageStore {
            store: VecDeque::new(),
            cache: Vec::new(),
            limit,
        }
    }

    /// Messages waiting to be sent.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Messages sent and awaiting acknowledgement.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Total storage occupancy (what Tables 4/5 measure).
    pub fn total(&self) -> usize {
        self.store.len() + self.cache.len()
    }

    /// `true` when both areas are empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty() && self.cache.is_empty()
    }

    /// `true` when the copy `(id, tag)` is in either area.
    pub fn contains(&self, id: MessageId, tag: u8) -> bool {
        self.store.iter().any(|m| m.key() == (id, tag))
            || self.cache.iter().any(|e| e.msg.key() == (id, tag))
    }

    /// Offers a message. Under pressure, evicts the oldest Cache entry
    /// first, then the oldest Store entry; a `limit` of 0 rejects outright.
    pub fn push(&mut self, msg: StoredMessage) -> PushOutcome {
        let mut evicted = 0;
        if let Some(limit) = self.limit {
            if limit == 0 {
                return PushOutcome {
                    stored: false,
                    evicted,
                };
            }
            while self.total() >= limit {
                if !self.cache.is_empty() {
                    self.cache.remove(0);
                } else {
                    self.store.pop_front();
                }
                evicted += 1;
            }
        }
        self.store.push_back(msg);
        PushOutcome {
            stored: true,
            evicted,
        }
    }

    /// Drains the Store for a routing pass (put unsent copies back with
    /// [`MessageStore::push`] — room is guaranteed since they just left).
    pub fn drain_store(&mut self) -> Vec<StoredMessage> {
        self.store.drain(..).collect()
    }

    /// Moves a sent copy into the Cache pending acknowledgement.
    pub fn to_cache(&mut self, msg: StoredMessage, sent_to: NodeId, expires: SimTime) {
        self.to_cache_with_attempts(msg, sent_to, expires, 1);
    }

    /// [`MessageStore::to_cache`] with an explicit attempt count (used when
    /// re-caching a retransmission).
    pub fn to_cache_with_attempts(
        &mut self,
        msg: StoredMessage,
        sent_to: NodeId,
        expires: SimTime,
        attempts: u32,
    ) {
        self.cache.push(CacheEntry {
            msg,
            sent_to,
            expires,
            attempts,
        });
    }

    /// Removes and returns the Cache entries whose acknowledgement wait
    /// has expired; the caller decides between retransmission and
    /// re-routing.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<CacheEntry> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.cache.len() {
            if self.cache[i].expires <= now {
                out.push(self.cache.remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Removes (acknowledges) the cached copy `(id, tag)`; returns whether
    /// it was present.
    pub fn ack(&mut self, id: MessageId, tag: u8) -> bool {
        let before = self.cache.len();
        self.cache.retain(|e| e.msg.key() != (id, tag));
        self.cache.len() != before
    }

    /// Moves expired Cache entries back to the Store ("another round of
    /// transfer rescheduling"); returns how many moved.
    pub fn expire_cache(&mut self, now: SimTime) -> usize {
        let expired = self.take_expired(now);
        let moved = expired.len();
        for e in expired {
            self.store.push_back(e.msg);
        }
        moved
    }

    /// Applies a fresher destination estimate to every held copy bound for
    /// `dst` (location diffusion touching stored traffic).
    pub fn refresh_destination(&mut self, dst: NodeId, est: LocationEstimate) {
        for m in self.store.iter_mut() {
            if m.info.dst == dst && est.fresher_than(&m.dest_est) {
                m.dest_est = est;
            }
        }
        for e in self.cache.iter_mut() {
            if e.msg.info.dst == dst && est.fresher_than(&e.msg.dest_est) {
                e.msg.dest_est = est;
            }
        }
    }

    /// Iterates over stored (unsent) messages.
    pub fn iter_store(&self) -> impl Iterator<Item = &StoredMessage> {
        self.store.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glr_geometry::Point2;

    fn msg(seq: u32, tag: u8) -> StoredMessage {
        StoredMessage::new(
            MessageInfo {
                id: MessageId {
                    src: NodeId(0),
                    seq,
                },
                dst: NodeId(9),
                size: 1000,
                created: SimTime::ZERO,
            },
            DstdKind::Max,
            tag,
            LocationEstimate::new(Point2::ORIGIN, SimTime::ZERO),
        )
    }

    #[test]
    fn push_and_drain() {
        let mut s = MessageStore::new(None);
        s.push(msg(0, 0));
        s.push(msg(1, 0));
        assert_eq!(s.store_len(), 2);
        let drained = s.drain_store();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn cache_ack_lifecycle() {
        let mut s = MessageStore::new(None);
        let m = msg(0, 1);
        s.to_cache(m, NodeId(2), SimTime::from_secs(10.0));
        assert_eq!(s.cache_len(), 1);
        assert!(s.contains(m.info.id, 1));
        assert!(s.ack(m.info.id, 1));
        assert!(!s.ack(m.info.id, 1), "double ack is a no-op");
        assert!(s.is_empty());
    }

    #[test]
    fn ack_matches_copy_tag() {
        let mut s = MessageStore::new(None);
        let m0 = msg(0, 0);
        let m1 = msg(0, 1); // same id, different branch
        s.to_cache(m0, NodeId(2), SimTime::from_secs(10.0));
        s.to_cache(m1, NodeId(3), SimTime::from_secs(10.0));
        assert!(s.ack(m0.info.id, 0));
        assert_eq!(s.cache_len(), 1, "other branch must stay cached");
    }

    #[test]
    fn expiry_moves_back_to_store() {
        let mut s = MessageStore::new(None);
        s.to_cache(msg(0, 0), NodeId(2), SimTime::from_secs(5.0));
        s.to_cache(msg(1, 0), NodeId(2), SimTime::from_secs(50.0));
        let moved = s.expire_cache(SimTime::from_secs(10.0));
        assert_eq!(moved, 1);
        assert_eq!(s.store_len(), 1);
        assert_eq!(s.cache_len(), 1);
    }

    #[test]
    fn eviction_prefers_cache() {
        let mut s = MessageStore::new(Some(2));
        s.to_cache(msg(0, 0), NodeId(1), SimTime::from_secs(99.0));
        s.push(msg(1, 0));
        assert_eq!(s.total(), 2);
        // Full: pushing must evict the cached entry, not the stored one.
        let out = s.push(msg(2, 0));
        assert!(out.stored);
        assert_eq!(out.evicted, 1);
        assert_eq!(s.cache_len(), 0);
        assert!(s.contains(msg(1, 0).info.id, 0));
        assert!(s.contains(msg(2, 0).info.id, 0));
    }

    #[test]
    fn eviction_falls_back_to_store_fifo() {
        let mut s = MessageStore::new(Some(2));
        s.push(msg(0, 0));
        s.push(msg(1, 0));
        let out = s.push(msg(2, 0));
        assert_eq!(out.evicted, 1);
        assert!(!s.contains(msg(0, 0).info.id, 0), "oldest dropped");
        assert!(s.contains(msg(2, 0).info.id, 0));
    }

    #[test]
    fn zero_limit_rejects() {
        let mut s = MessageStore::new(Some(0));
        let out = s.push(msg(0, 0));
        assert!(!out.stored);
        assert!(s.is_empty());
    }

    #[test]
    fn refresh_destination_updates_fresher_only() {
        let mut s = MessageStore::new(None);
        s.push(msg(0, 0));
        s.to_cache(msg(1, 0), NodeId(1), SimTime::from_secs(99.0));
        let fresh = LocationEstimate::new(Point2::new(5.0, 5.0), SimTime::from_secs(10.0));
        s.refresh_destination(NodeId(9), fresh);
        assert_eq!(
            s.iter_store().next().unwrap().dest_est.pos,
            Point2::new(5.0, 5.0)
        );
        // A staler estimate must not override.
        let stale = LocationEstimate::new(Point2::new(7.0, 7.0), SimTime::from_secs(1.0));
        s.refresh_destination(NodeId(9), stale);
        assert_eq!(
            s.iter_store().next().unwrap().dest_est.pos,
            Point2::new(5.0, 5.0)
        );
    }
}
