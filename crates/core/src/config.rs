//! GLR protocol configuration.

use crate::decision::CopyPolicy;
use crate::spanner::SpannerMode;

/// How much destination-location knowledge nodes have (Table 2 scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocationMode {
    /// Every node always knows the destination's true location (oracle).
    AllKnow,
    /// Only the source stamps the true location at creation; relays rely
    /// on the carried estimate plus location diffusion (the default and
    /// the paper's headline assumption).
    #[default]
    SourceKnows,
    /// Nobody knows: the source stamps a random location and diffusion has
    /// to correct it en route.
    NoneKnow,
}

/// Tunables of the GLR protocol (paper defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct GlrConfig {
    /// Store-and-forward route check interval in seconds (paper: 0.9 s
    /// default, swept 0.6–1.6 s in Figure 3).
    pub check_interval: f64,
    /// How long a sent copy waits in the Cache for its custody
    /// acknowledgement before being rescheduled.
    pub cache_timeout: f64,
    /// Copy-count decision (Algorithm 1).
    pub copy_policy: CopyPolicy,
    /// Whether custody transfer (hop acks + retransmission) is enabled
    /// (Table 3 ablates this).
    pub custody: bool,
    /// Local spanner construction.
    pub spanner: SpannerMode,
    /// Locality parameter `k` of the k-LDTG (paper: distance-2 information).
    pub k: usize,
    /// Destination-location knowledge scenario.
    pub location_mode: LocationMode,
    /// Route checks without progress before the destination estimate is
    /// perturbed (stale-location escape).
    pub stuck_threshold: u32,
    /// When `true` (default), perturbed destination estimates are stamped
    /// with the current time and allowed into location tables and gossip,
    /// acting as a shared rendezvous that genuinely fresh sightings still
    /// override. When `false`, perturbations stay message-local guesses
    /// that only observations newer than their base can override (the
    /// conservative variant; measurably slower at paper densities — see
    /// the `ablation-perturb` experiment).
    pub perturb_gossip: bool,
    /// Link hops after which a copy is discarded (loop safety valve; far
    /// above any observed path length).
    pub max_hops: u32,
}

impl Default for GlrConfig {
    fn default() -> Self {
        GlrConfig {
            check_interval: 0.9,
            cache_timeout: 4.0,
            copy_policy: CopyPolicy::PAPER,
            custody: true,
            spanner: SpannerMode::LocalDelaunay,
            k: 2,
            location_mode: LocationMode::SourceKnows,
            stuck_threshold: 10,
            perturb_gossip: true,
            max_hops: 512,
        }
    }
}

impl GlrConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Returns the config with a different route check interval (Figure 3).
    pub fn with_check_interval(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "check interval must be positive");
        self.check_interval = secs;
        self
    }

    /// Returns the config with custody transfer switched on or off
    /// (Table 3).
    pub fn with_custody(mut self, on: bool) -> Self {
        self.custody = on;
        self
    }

    /// Returns the config with a different copy policy.
    pub fn with_copy_policy(mut self, policy: CopyPolicy) -> Self {
        self.copy_policy = policy;
        self
    }

    /// Returns the config with a different location-knowledge scenario
    /// (Table 2).
    pub fn with_location_mode(mut self, mode: LocationMode) -> Self {
        self.location_mode = mode;
        self
    }

    /// Returns the config with a different spanner construction.
    pub fn with_spanner(mut self, mode: SpannerMode) -> Self {
        self.spanner = mode;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.check_interval > 0.0, "check interval must be positive");
        assert!(self.cache_timeout > 0.0, "cache timeout must be positive");
        assert!(self.k >= 1, "k must be at least 1");
        assert!(self.max_hops >= 1, "max hops must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GlrConfig::paper();
        assert_eq!(c.check_interval, 0.9);
        assert!(c.custody);
        assert_eq!(c.k, 2);
        assert_eq!(c.location_mode, LocationMode::SourceKnows);
        c.validate();
    }

    #[test]
    fn builders() {
        let c = GlrConfig::paper()
            .with_check_interval(1.4)
            .with_custody(false)
            .with_location_mode(LocationMode::NoneKnow);
        assert_eq!(c.check_interval, 1.4);
        assert!(!c.custody);
        assert_eq!(c.location_mode, LocationMode::NoneKnow);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "check interval")]
    fn zero_interval_rejected() {
        GlrConfig::paper().with_check_interval(0.0);
    }
}
