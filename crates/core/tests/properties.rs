//! Property-based tests for GLR's storage, location and decision logic.

use glr_core::{CopyPolicy, LocationEstimate, LocationTable, MessageStore, StoredMessage};
use glr_geometry::{DstdKind, Point2};
use glr_mobility::Region;
use glr_sim::{MessageId, MessageInfo, NodeId, SimTime};
use proptest::prelude::*;

fn msg(seq: u32, tag: u8) -> StoredMessage {
    StoredMessage::new(
        MessageInfo {
            id: MessageId {
                src: NodeId(0),
                seq,
            },
            dst: NodeId(9),
            size: 1000,
            created: SimTime::ZERO,
        },
        DstdKind::Max,
        tag,
        LocationEstimate::new(Point2::ORIGIN, SimTime::ZERO),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn store_never_exceeds_limit(limit in 1usize..20, ops in prop::collection::vec((0u32..50, 0u8..3), 1..80)) {
        let mut s = MessageStore::new(Some(limit));
        for (i, &(seq, tag)) in ops.iter().enumerate() {
            if i % 3 == 2 {
                // Occasionally move the head to cache.
                let drained = s.drain_store();
                for (j, m) in drained.into_iter().enumerate() {
                    if j == 0 {
                        s.to_cache(m, NodeId(1), SimTime::from_secs(10.0));
                    } else {
                        s.push(m);
                    }
                }
            }
            s.push(msg(seq, tag));
            prop_assert!(s.total() <= limit, "total {} > limit {}", s.total(), limit);
        }
    }

    #[test]
    fn ack_is_idempotent_and_precise(tags in prop::collection::vec(0u8..4, 1..10)) {
        let mut s = MessageStore::new(None);
        for (i, &t) in tags.iter().enumerate() {
            s.to_cache(msg(i as u32, t), NodeId(2), SimTime::from_secs(100.0));
        }
        let n = s.cache_len();
        // Acking an absent copy changes nothing.
        let absent = MessageId { src: NodeId(7), seq: 0 };
        let absent_ack = s.ack(absent, 0);
        prop_assert!(!absent_ack);
        prop_assert_eq!(s.cache_len(), n);
        // Acking each exactly once empties the cache.
        for (i, &t) in tags.iter().enumerate() {
            let id = MessageId { src: NodeId(0), seq: i as u32 };
            let acked = s.ack(id, t);
            prop_assert!(acked);
        }
        prop_assert_eq!(s.cache_len(), 0);
    }

    #[test]
    fn expiry_conserves_copies(n in 1usize..15, cutoff in 0.0..20.0f64) {
        let mut s = MessageStore::new(None);
        for i in 0..n {
            s.to_cache(msg(i as u32, 0), NodeId(1), SimTime::from_secs(i as f64));
        }
        let before = s.total();
        let moved = s.expire_cache(SimTime::from_secs(cutoff));
        prop_assert_eq!(s.total(), before, "expiry must not lose copies");
        prop_assert_eq!(s.store_len(), moved);
        // Everything with deadline <= cutoff moved.
        let expect = n.min(cutoff.floor() as usize + 1).min(n);
        prop_assert!(moved <= n);
        if cutoff >= (n - 1) as f64 {
            prop_assert_eq!(moved, n);
        } else {
            prop_assert_eq!(moved, expect);
        }
    }

    #[test]
    fn location_table_is_monotone_in_time(updates in prop::collection::vec((0.0..100.0f64, -500.0..500.0f64), 1..40)) {
        let mut t = LocationTable::new();
        let node = NodeId(3);
        let mut freshest = f64::NEG_INFINITY;
        for &(at, x) in &updates {
            t.update(node, LocationEstimate::new(Point2::new(x, 0.0), SimTime::from_secs(at)));
            freshest = freshest.max(at);
            let cur = t.get(node).unwrap();
            prop_assert!((cur.at.as_secs() - freshest).abs() < 1e-12,
                "table regressed to {} when freshest is {}", cur.at.as_secs(), freshest);
        }
    }

    #[test]
    fn guesses_never_enter_tables(at in 0.0..100.0f64) {
        let mut t = LocationTable::new();
        let node = NodeId(5);
        prop_assert!(!t.update(node, LocationEstimate::guess(Point2::ORIGIN, SimTime::from_secs(at))));
        prop_assert!(t.get(node).is_none());
    }

    #[test]
    fn copy_policy_monotone_in_radius(n in 5usize..200) {
        // More range never increases the copy count.
        let policy = CopyPolicy::PAPER;
        let mut last = usize::MAX;
        for r in [30.0, 60.0, 90.0, 120.0, 150.0, 200.0, 300.0] {
            let c = policy.copies(n, r, Region::PAPER_STRIP);
            prop_assert!(c <= last, "copies increased with radius at n={} r={}", n, r);
            prop_assert!(c >= 1);
            last = c;
        }
    }

    #[test]
    fn refresh_destination_never_stales(offsets in prop::collection::vec(0.0..50.0f64, 1..10)) {
        let mut s = MessageStore::new(None);
        s.push(msg(0, 0));
        let mut best = 0.0f64;
        for &dt in &offsets {
            let est = LocationEstimate::new(Point2::new(dt, dt), SimTime::from_secs(dt));
            s.refresh_destination(NodeId(9), est);
            best = best.max(dt);
            let cur = s.iter_store().next().unwrap().dest_est;
            prop_assert!((cur.at.as_secs() - best).abs() < 1e-12);
        }
    }
}
