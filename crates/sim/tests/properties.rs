//! Property-based tests for the simulator's statistics and workloads.

use glr_sim::{summarize, MessageId, NodeId, RunStats, SimTime, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn summary_mean_within_bounds(xs in prop::collection::vec(-1.0e6..1.0e6f64, 1..40)) {
        let s = summarize(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= lo - 1e-9 && s.mean <= hi + 1e-9);
        prop_assert!(s.ci90 >= 0.0);
        prop_assert_eq!(s.n, xs.len());
    }

    #[test]
    fn summary_constant_samples_have_zero_ci(x in -1.0e3..1.0e3f64, n in 1usize..20) {
        let xs = vec![x; n];
        let s = summarize(&xs);
        prop_assert!((s.mean - x).abs() < 1e-9);
        prop_assert!(s.ci90.abs() < 1e-9);
    }

    #[test]
    fn summary_shift_invariance(xs in prop::collection::vec(-1.0e3..1.0e3f64, 2..20), shift in -100.0..100.0f64) {
        let s1 = summarize(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s2 = summarize(&shifted);
        prop_assert!((s2.mean - s1.mean - shift).abs() < 1e-6);
        prop_assert!((s2.ci90 - s1.ci90).abs() < 1e-6);
    }

    #[test]
    fn workload_paper_style_always_valid(n in 3usize..60, count in 1usize..500) {
        let w = Workload::paper_style(n, count, 1000);
        prop_assert_eq!(w.len(), count);
        let active = n.saturating_sub(5).max(2);
        let mut last = SimTime::ZERO;
        for m in w.messages() {
            prop_assert!(m.src != m.dst);
            prop_assert!(m.src.index() < active);
            prop_assert!(m.dst.index() < active);
            prop_assert!(m.at >= last);
            last = m.at;
        }
    }

    #[test]
    fn workload_message_ids_unique(count in 1usize..300) {
        let w = Workload::paper_style(50, count, 100);
        let mut seen = std::collections::HashSet::new();
        for i in 0..w.len() {
            prop_assert!(seen.insert(w.message_id(i)));
        }
    }

    #[test]
    fn delivery_ratio_counts(delivered in 0usize..30, extra in 0usize..30) {
        let total = delivered + extra;
        prop_assume!(total > 0);
        let mut s = RunStats::new(4);
        for i in 0..total {
            let id = MessageId { src: NodeId(0), seq: i as u32 };
            s.register_message(id, NodeId(0), NodeId(1), SimTime::ZERO);
            if i < delivered {
                s.record_delivery(id, SimTime::from_secs(1.0 + i as f64), 1 + (i % 5) as u32);
            }
        }
        prop_assert_eq!(s.messages_delivered(), delivered);
        let want = delivered as f64 / total as f64;
        prop_assert!((s.delivery_ratio() - want).abs() < 1e-12);
        if delivered > 0 {
            prop_assert!(s.avg_latency().unwrap() >= 1.0);
            prop_assert!(s.avg_hops().unwrap() >= 1.0);
        } else {
            prop_assert!(s.avg_latency().is_none());
        }
    }

    #[test]
    fn storage_peaks_dominate_samples(samples in prop::collection::vec((0u32..4, 0usize..100), 1..50)) {
        let mut s = RunStats::new(4);
        for &(node, used) in &samples {
            s.sample_storage(NodeId(node), used);
        }
        let max_sample = samples.iter().map(|&(_, u)| u).max().unwrap();
        prop_assert_eq!(s.max_peak_storage(), max_sample);
        prop_assert!(s.avg_peak_storage() <= max_sample as f64);
        prop_assert!(s.mean_storage_occupancy() <= max_sample as f64);
    }
}
