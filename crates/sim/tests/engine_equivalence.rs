//! Refactor-safety properties for the execution engine: the parallel
//! engine (same-tick batch drain + per-receiver reception compute fanned
//! across the persistent worker pool + in-order commit) must be
//! *exactly* equivalent to the serial reference — bit-identical
//! [`RunStats`] from full simulation runs for every thread count
//! (including the degenerate `Parallel(1)`, which degrades to the
//! serial path) and for any [`ThreadBudget`], across all media, both
//! spatial-index backends and both neighbour-table backends. Same
//! pattern as `grid_equivalence.rs` / `table_equivalence.rs`.
//!
//! All runs force `parallel_grain = 1` so even the small deployments the
//! proptests use actually exercise the parallel fan-out (with the
//! default grain, narrow beacons stay on the serial path and the test
//! would prove nothing).

use glr_sim::{
    Ctx, EngineKind, IndexBackend, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, RunStats,
    SimConfig, TableBackend, ThreadBudget, Workload,
};
use proptest::prelude::*;

/// Floods over the 1-hop table and greedily forwards over the 2-hop
/// view; between them every reception-order-sensitive surface (queueing,
/// contention RNG draws, table content and ordering, hook order) feeds
/// back into the statistics.
struct Mixed;

#[derive(Debug, Clone)]
struct Pkt {
    info: MessageInfo,
    hops: u32,
}

impl Protocol for Mixed {
    type Packet = Pkt;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Pkt>, info: MessageInfo) {
        for e in ctx.neighbors() {
            let _ = ctx.send(e.id, Pkt { info, hops: 1 }, info.size, PacketKind::Data);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: NodeId, pkt: Pkt) {
        if pkt.info.dst == ctx.me() {
            ctx.deliver(pkt.info.id, pkt.hops);
        } else if pkt.hops < 4 {
            let dst_pos = ctx.true_pos(pkt.info.dst);
            let view = ctx.local_view();
            let next = view
                .iter()
                .min_by(|a, b| a.pos.dist(dst_pos).total_cmp(&b.pos.dist(dst_pos)))
                .map(|e| e.id);
            if let Some(next) = next {
                let size = pkt.info.size;
                let fwd = Pkt {
                    info: pkt.info,
                    hops: pkt.hops + 1,
                };
                let _ = ctx.send(next, fwd, size, PacketKind::Data);
            }
        }
    }

    /// New radio contacts matter too: the hook order is part of the
    /// commit phase's contract.
    fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, Pkt>, _nbr: NodeId) {
        ctx.count_event("contact");
    }
}

fn medium_for(choice: u8) -> MediumKind {
    match choice % 4 {
        0 => MediumKind::Contention,
        1 => MediumKind::Ideal,
        2 => MediumKind::shadowing(),
        _ => MediumKind::duty_cycled(MediumKind::Contention, 0.6, 1.5),
    }
}

fn run(cfg: &SimConfig, wl: &Workload, medium: &MediumKind, engine: EngineKind) -> RunStats {
    let cfg = cfg.clone().with_engine(engine).with_parallel_grain(1);
    glr_sim::Simulation::with_boxed_medium(
        cfg.clone(),
        wl.clone(),
        |_, _| Mixed,
        medium.build(cfg.n_nodes),
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serial vs pool-backed Parallel(1/2/3/4/8): bit-identical
    /// full-run statistics for random configurations, seeds and media —
    /// under both spatial-index backends and both neighbour-table
    /// backends.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        seed in 0u64..100_000,
        range in 30.0..300.0f64,
        msgs in 1usize..20,
        medium_choice in 0u8..4,
    ) {
        let medium = medium_for(medium_choice);
        for index in [IndexBackend::Grid, IndexBackend::LinearScan] {
            for tables in [TableBackend::Shared, TableBackend::CloneMerge] {
                let cfg = SimConfig::paper(range, seed)
                    .with_nodes(30)
                    .with_duration(45.0)
                    .with_neighbor_index(index)
                    .with_neighbor_tables(tables);
                let wl = Workload::paper_style(cfg.n_nodes, msgs, 1000);
                let serial = run(&cfg, &wl, &medium, EngineKind::Serial);
                for threads in [1usize, 2, 3, 4, 8] {
                    let parallel = run(&cfg, &wl, &medium, EngineKind::Parallel(threads));
                    prop_assert_eq!(
                        &serial, &parallel,
                        "seed={} range={} msgs={} medium={} index={:?} tables={:?} threads={}",
                        seed, range, msgs, medium, index, tables, threads
                    );
                }
            }
        }
    }
}

/// Dense enough that receiver sets comfortably exceed any chunk size,
/// long enough to cross TTL horizons; threads beyond the receiver count
/// must also be harmless.
#[test]
fn dense_long_run_parallel_matches_serial() {
    let cfg = SimConfig::paper(250.0, 23)
        .with_nodes(60)
        .with_duration(120.0);
    let wl = Workload::paper_style(cfg.n_nodes, 40, 1000);
    let medium = MediumKind::Contention;
    let serial = run(&cfg, &wl, &medium, EngineKind::Serial);
    for threads in [2usize, 3, 64] {
        let parallel = run(&cfg, &wl, &medium, EngineKind::Parallel(threads));
        assert_eq!(serial, parallel, "threads={threads}");
    }
    // The run must actually have had wide beacons for this to test the
    // fan-out: at 250 m over the paper strip almost everyone is a
    // receiver.
    assert!(serial.control_tx > 0);
}

/// A thread budget is purely a scheduling lever: however few threads
/// the ledger grants the engine's pool — none at all under a budget of
/// 1, which degrades to the serial path — the statistics are
/// bit-identical. Also checks the engine returns its claim: after a
/// budget-limited run completes, the ledger is full again.
#[test]
fn thread_budget_never_changes_results() {
    let medium = MediumKind::Contention;
    let base = SimConfig::paper(200.0, 31)
        .with_nodes(40)
        .with_duration(60.0);
    let wl = Workload::paper_style(base.n_nodes, 20, 1000);
    let reference = run(&base, &wl, &medium, EngineKind::Serial);
    for total in [1usize, 2, 3, 16] {
        let budget = ThreadBudget::total(total);
        let cfg = base.clone().with_thread_budget(budget.clone());
        let got = run(&cfg, &wl, &medium, EngineKind::Parallel(4));
        assert_eq!(reference, got, "budget={total}");
        assert_eq!(
            budget.claim(total).granted(),
            total - 1,
            "run must return its claim to the ledger (budget={total})"
        );
    }
}

/// The parallel-grain knob is purely a performance lever: any value
/// yields the same statistics.
#[test]
fn parallel_grain_never_changes_results() {
    let medium = MediumKind::Contention;
    let base = SimConfig::paper(150.0, 9)
        .with_nodes(40)
        .with_duration(60.0);
    let wl = Workload::paper_style(base.n_nodes, 25, 1000);
    let reference = run(&base, &wl, &medium, EngineKind::Serial);
    for grain in [1usize, 4, 16, usize::MAX] {
        let cfg = base.clone().with_parallel_grain(grain);
        let got = glr_sim::Simulation::with_boxed_medium(
            cfg.clone().with_engine(EngineKind::Parallel(4)),
            wl.clone(),
            |_, _| Mixed,
            medium.build(cfg.n_nodes),
        )
        .run();
        assert_eq!(reference, got, "grain={grain}");
    }
}
