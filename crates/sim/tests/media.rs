//! Cross-medium invariants: for a fixed seed, the ideal medium never
//! does worse than the contention medium, never records a contention
//! loss, and the shadowing medium is deterministic and actually fades.

use glr_sim::{
    Ctx, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, RunStats, Scenario, SimConfig,
    SHADOWING_FADE_LOSS,
};

/// A TTL-bounded flooder: enough traffic to make contention bite, simple
/// enough that delivery depends only on what the medium lets through.
struct Flood;

#[derive(Debug, Clone)]
struct FloodPkt {
    info: MessageInfo,
    ttl: u32,
    hops: u32,
}

impl Protocol for Flood {
    type Packet = FloodPkt;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, FloodPkt>, info: MessageInfo) {
        let pkt = FloodPkt {
            info,
            ttl: 4,
            hops: 1,
        };
        for nbr in ctx.neighbors() {
            let _ = ctx.send(nbr.id, pkt.clone(), pkt.info.size, PacketKind::Data);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, FloodPkt>, from: NodeId, pkt: FloodPkt) {
        if pkt.info.dst == ctx.me() {
            ctx.deliver(pkt.info.id, pkt.hops);
            return;
        }
        if pkt.ttl == 0 {
            return;
        }
        let fwd = FloodPkt {
            info: pkt.info,
            ttl: pkt.ttl - 1,
            hops: pkt.hops + 1,
        };
        for nbr in ctx.neighbors() {
            if nbr.id != from {
                let _ = ctx.send(nbr.id, fwd.clone(), fwd.info.size, PacketKind::Data);
            }
        }
    }
}

fn run_under(medium: MediumKind, seed: u64) -> RunStats {
    let cfg = SimConfig::paper(150.0, seed).with_duration(90.0);
    Scenario::new(format!("media-{medium}"), cfg)
        .with_messages(120)
        .with_medium(medium)
        .run(|_, _| Flood)
}

#[test]
fn ideal_medium_never_records_contention_losses() {
    for seed in [1u64, 17, 42] {
        let ideal = run_under(MediumKind::Ideal, seed);
        assert_eq!(ideal.collisions, 0, "seed {seed}");
        assert_eq!(ideal.out_of_range, 0, "seed {seed}");
        assert_eq!(ideal.event_count(SHADOWING_FADE_LOSS), 0, "seed {seed}");
    }
}

#[test]
fn ideal_delivery_dominates_contention() {
    for seed in [1u64, 17, 42] {
        let ideal = run_under(MediumKind::Ideal, seed);
        let contention = run_under(MediumKind::Contention, seed);
        assert!(
            ideal.delivery_ratio() >= contention.delivery_ratio(),
            "seed {seed}: ideal {} < contention {}",
            ideal.delivery_ratio(),
            contention.delivery_ratio()
        );
        // The comparison is only meaningful if the contention model
        // actually lost frames in this configuration.
        assert!(
            contention.collisions + contention.out_of_range > 0,
            "seed {seed}: contention run saw no losses — test too lenient"
        );
    }
}

#[test]
fn shadowing_is_deterministic_and_fades() {
    let a = run_under(MediumKind::shadowing(), 7);
    let b = run_under(MediumKind::shadowing(), 7);
    assert_eq!(a, b, "same seed, same medium must be bit-identical");
    assert!(
        a.event_count(SHADOWING_FADE_LOSS) > 0,
        "a 90 s flood at paper density should hit at least one fade"
    );
    // Shadowing losses are its own mechanism, not the unit-disk ones.
    assert_eq!(a.collisions, 0);
    assert_eq!(a.out_of_range, 0);
}

#[test]
fn media_actually_differ() {
    let seed = 5;
    let ideal = run_under(MediumKind::Ideal, seed);
    let contention = run_under(MediumKind::Contention, seed);
    let shadowing = run_under(MediumKind::shadowing(), seed);
    // Identical workloads and mobility, different PHY: the link-layer
    // traffic counts must diverge (otherwise the selector is a no-op).
    assert_ne!(ideal.data_tx, contention.data_tx);
    assert_ne!(shadowing.data_tx, contention.data_tx);
}

#[test]
fn duty_cycled_drops_sleeping_receptions_and_never_beats_its_inner() {
    for seed in [1u64, 17] {
        let inner = run_under(MediumKind::Ideal, seed);
        let duty = run_under(MediumKind::duty_cycled(MediumKind::Ideal, 0.3, 1.0), seed);
        // Sleeping 70% of the time over an ideal radio must drop frames…
        assert!(
            duty.event_count(glr_sim::DUTY_SLEEP_DROP) > 0,
            "seed {seed}: no sleep drops in a 90 s flood at 30% duty"
        );
        // …and can only lower delivery relative to the always-on inner.
        assert!(
            duty.delivery_ratio() <= inner.delivery_ratio(),
            "seed {seed}: duty {} > inner {}",
            duty.delivery_ratio(),
            inner.delivery_ratio()
        );
        // The wrapper adds no losses of the inner media's kinds.
        assert_eq!(duty.collisions, 0, "seed {seed}");
        assert_eq!(duty.out_of_range, 0, "seed {seed}");
    }
}

#[test]
fn duty_cycled_is_deterministic_and_full_duty_is_transparent() {
    let a = run_under(MediumKind::duty_cycled(MediumKind::Contention, 0.5, 2.0), 7);
    let b = run_under(MediumKind::duty_cycled(MediumKind::Contention, 0.5, 2.0), 7);
    assert_eq!(a, b, "same seed, same medium must be bit-identical");
    // on_fraction == 1.0 never sleeps: statistics match the bare inner
    // medium exactly.
    let always_on = run_under(MediumKind::duty_cycled(MediumKind::Contention, 1.0, 2.0), 7);
    let bare = run_under(MediumKind::Contention, 7);
    assert_eq!(always_on, bare);
    assert_eq!(always_on.event_count(glr_sim::DUTY_SLEEP_DROP), 0);
}
