//! Refactor-safety properties for the neighbour-table layer: the shared
//! (`Arc`-interned snapshots, incremental two-hop merges, lazy staleness
//! sweeping) backend must be *exactly* equivalent to the clone-and-merge
//! reference — bit-identical [`RunStats`] from full simulation runs
//! across random configurations, seeds, all three media, and both
//! spatial-index backends. Same pattern as `grid_equivalence.rs`.

use glr_sim::{
    Ctx, IndexBackend, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, RunStats, SimConfig,
    TableBackend, Workload,
};
use proptest::prelude::*;

/// A controlled flood over the fresh 1-hop table: any divergence in entry
/// *content or order* changes queueing order, contention, RNG draws and
/// therefore the statistics.
struct Flood;

#[derive(Debug, Clone)]
struct FloodPacket {
    info: MessageInfo,
    hops: u32,
}

impl Protocol for Flood {
    type Packet = FloodPacket;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
        for e in ctx.neighbors() {
            let _ = ctx.send(
                e.id,
                FloodPacket { info, hops: 1 },
                info.size,
                PacketKind::Data,
            );
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, _from: NodeId, pkt: Self::Packet) {
        if pkt.info.dst == ctx.me() {
            ctx.deliver(pkt.info.id, pkt.hops);
        } else if pkt.hops < 3 {
            for e in ctx.neighbors() {
                let _ = ctx.send(
                    e.id,
                    FloodPacket {
                        info: pkt.info,
                        hops: pkt.hops + 1,
                    },
                    pkt.info.size,
                    PacketKind::Data,
                );
            }
        }
    }
}

/// Greedy forwarding over the merged 1-/2-hop view (`Ctx::local_view`),
/// the consumer GLR's LDTG construction feeds on: picks the view entry
/// nearest the destination's believed position, so any difference in the
/// two-hop merge (entry set, freshest-wins winner, or ordering) redirects
/// traffic and shows up in the statistics.
struct ViewGreedy;

#[derive(Debug, Clone)]
struct GreedyPacket {
    info: MessageInfo,
    hops: u32,
}

impl Protocol for ViewGreedy {
    type Packet = GreedyPacket;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
        self.forward(ctx, GreedyPacket { info, hops: 0 });
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, _from: NodeId, pkt: Self::Packet) {
        if pkt.info.dst == ctx.me() {
            ctx.deliver(pkt.info.id, pkt.hops);
        } else if pkt.hops < 6 {
            self.forward(ctx, pkt);
        }
    }
}

impl ViewGreedy {
    fn forward(&mut self, ctx: &mut Ctx<'_, GreedyPacket>, mut pkt: GreedyPacket) {
        let dst_pos = ctx.true_pos(pkt.info.dst);
        let view = ctx.local_view();
        let next = view
            .iter()
            .min_by(|a, b| a.pos.dist(dst_pos).total_cmp(&b.pos.dist(dst_pos)))
            .map(|e| e.id);
        if let Some(next) = next {
            pkt.hops += 1;
            let size = pkt.info.size;
            let _ = ctx.send(next, pkt, size, PacketKind::Data);
        }
    }
}

fn medium_for(choice: u8) -> MediumKind {
    match choice % 3 {
        0 => MediumKind::Contention,
        1 => MediumKind::Ideal,
        _ => MediumKind::shadowing(),
    }
}

fn run<P: Protocol>(
    cfg: &SimConfig,
    wl: &Workload,
    medium: &MediumKind,
    tables: TableBackend,
    factory: impl FnMut(NodeId, &SimConfig) -> P,
) -> RunStats {
    let cfg = cfg.clone().with_neighbor_tables(tables);
    glr_sim::Simulation::with_boxed_medium(
        cfg.clone(),
        wl.clone(),
        factory,
        medium.build(cfg.n_nodes),
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full engine equivalence on the 1-hop path: for random
    /// configurations, seeds, and media, a complete run produces
    /// bit-identical `RunStats` under both table backends — under both
    /// spatial-index backends.
    #[test]
    fn flood_runs_are_bit_identical_across_table_backends(
        seed in 0u64..100_000,
        range in 30.0..300.0f64,
        msgs in 1usize..25,
        medium_choice in 0u8..3,
    ) {
        let medium = medium_for(medium_choice);
        for index in [IndexBackend::Grid, IndexBackend::LinearScan] {
            let cfg = SimConfig::paper(range, seed)
                .with_nodes(30)
                .with_duration(60.0)
                .with_neighbor_index(index);
            let wl = Workload::paper_style(cfg.n_nodes, msgs, 1000);
            let shared = run(&cfg, &wl, &medium, TableBackend::Shared, |_, _| Flood);
            let reference = run(&cfg, &wl, &medium, TableBackend::CloneMerge, |_, _| Flood);
            prop_assert_eq!(
                shared, reference,
                "seed={} range={} msgs={} medium={} index={:?}", seed, range, msgs, medium, index
            );
        }
    }

    /// Same property on the 2-hop path: greedy forwarding over
    /// `local_view` (the merged 1-/2-hop tables) is bit-identical, so the
    /// interned-snapshot two-hop representation is observably equal to
    /// the entry-by-entry merge.
    #[test]
    fn view_greedy_runs_are_bit_identical_across_table_backends(
        seed in 0u64..100_000,
        range in 30.0..250.0f64,
        msgs in 1usize..20,
        medium_choice in 0u8..3,
    ) {
        let medium = medium_for(medium_choice);
        let cfg = SimConfig::paper(range, seed)
            .with_nodes(30)
            .with_duration(60.0);
        let wl = Workload::paper_style(cfg.n_nodes, msgs, 1000);
        let shared = run(&cfg, &wl, &medium, TableBackend::Shared, |_, _| ViewGreedy);
        let reference = run(&cfg, &wl, &medium, TableBackend::CloneMerge, |_, _| ViewGreedy);
        prop_assert_eq!(
            shared, reference,
            "seed={} range={} msgs={} medium={}", seed, range, msgs, medium
        );
    }
}

/// Long runs cross many TTL horizons (entries expire and revive), which
/// is where the lazy sweep and the eager reference could drift; pin a few
/// fixed seeds at paper duration scale.
#[test]
fn long_runs_with_churn_stay_bit_identical() {
    for (seed, range) in [(3u64, 60.0), (11, 120.0), (29, 200.0)] {
        let cfg = SimConfig::paper(range, seed)
            .with_nodes(40)
            .with_duration(300.0);
        let wl = Workload::paper_style(cfg.n_nodes, 30, 1000);
        let shared = run(
            &cfg,
            &wl,
            &MediumKind::Contention,
            TableBackend::Shared,
            |_, _| ViewGreedy,
        );
        let reference = run(
            &cfg,
            &wl,
            &MediumKind::Contention,
            TableBackend::CloneMerge,
            |_, _| ViewGreedy,
        );
        assert_eq!(shared, reference, "seed={seed} range={range}");
    }
}
