//! Round-trip edge cases for the serde-free report JSON: hostile
//! strings, empty sets, extreme floats, non-finite rejection, and the
//! mismatched-grid-context merge guard — everything the shard-merge
//! pipeline's byte-identity depends on at the format boundary.

use glr_sim::{CellReport, ReportSet, RunMetrics};

fn metrics() -> RunMetrics {
    RunMetrics {
        messages_created: 4,
        messages_delivered: 2,
        delivery_ratio: 0.5,
        avg_latency: Some(7.5),
        avg_hops: Some(3.0),
        duplicate_deliveries: 1,
        max_peak_storage: 4,
        avg_peak_storage: 2.5,
        mean_storage_occupancy: 1.25,
        data_tx: 10,
        control_tx: 20,
        collisions: 2,
        out_of_range: 1,
        queue_drops: 0,
        storage_drops: 0,
        counters: Vec::new(),
    }
}

fn roundtrip(set: &ReportSet) -> ReportSet {
    let text = set.to_json();
    let back = ReportSet::from_json(&text).expect("round trip parses");
    // Byte-identical re-serialisation — the merge pipeline's invariant.
    assert_eq!(back.to_json(), text);
    back
}

#[test]
fn escaped_strings_round_trip_everywhere() {
    let hostile = "quote \" backslash \\ newline \n tab \t cr \r ctrl \u{1} unicode ±μ€ 网";
    let set = ReportSet {
        context: format!("ctx {hostile}"),
        cells: vec![CellReport {
            cell: 0,
            label: format!("label {hostile}"),
            runs: vec![RunMetrics {
                counters: vec![(format!("counter.{hostile}"), 3)],
                ..metrics()
            }],
        }],
    };
    let back = roundtrip(&set);
    assert_eq!(back, set);
    assert_eq!(
        back.cells[0].runs[0].counter(&format!("counter.{hostile}")),
        3
    );
}

#[test]
fn empty_report_set_round_trips() {
    let empty = ReportSet::default();
    let back = roundtrip(&empty);
    assert_eq!(back, empty);
    assert!(back.is_complete(0));
    assert!(back.completed_cells().is_empty());
    // An empty set merges with itself into an empty set.
    let merged = ReportSet::merge(vec![empty.clone(), ReportSet::default()]).unwrap();
    assert_eq!(merged, empty);
}

#[test]
fn cell_with_no_runs_round_trips() {
    let set = ReportSet {
        context: String::new(),
        cells: vec![CellReport {
            cell: 0,
            label: "empty cell".into(),
            runs: Vec::new(),
        }],
    };
    assert_eq!(roundtrip(&set), set);
}

#[test]
fn extreme_floats_round_trip_bit_exactly() {
    // Largest finite, smallest normal, a subnormal, negative zero, and a
    // value whose shortest decimal form exercises many digits.
    let extremes = [f64::MAX, f64::MIN_POSITIVE, 5e-324, -0.0, 1.0 / 3.0, 1e300];
    for (i, &x) in extremes.iter().enumerate() {
        let set = ReportSet {
            context: format!("extreme {i}"),
            cells: vec![CellReport {
                cell: 0,
                label: "x".into(),
                runs: vec![RunMetrics {
                    delivery_ratio: x,
                    avg_latency: Some(x),
                    avg_hops: None,
                    avg_peak_storage: x,
                    mean_storage_occupancy: x,
                    ..metrics()
                }],
            }],
        };
        let back = roundtrip(&set);
        let m = &back.cells[0].runs[0];
        assert_eq!(
            m.delivery_ratio.to_bits(),
            x.to_bits(),
            "lost bits for {x:e}"
        );
        assert_eq!(m.avg_latency.unwrap().to_bits(), x.to_bits());
        assert_eq!(m.avg_hops, None);
    }
}

#[test]
fn huge_u64_counters_round_trip_without_f64_detour() {
    let set = ReportSet {
        context: String::new(),
        cells: vec![CellReport {
            cell: 0,
            label: "big".into(),
            runs: vec![RunMetrics {
                data_tx: u64::MAX,
                control_tx: u64::MAX - 1, // not representable in f64
                counters: vec![("huge".into(), (1u64 << 53) + 1)],
                ..metrics()
            }],
        }],
    };
    let back = roundtrip(&set);
    assert_eq!(back.cells[0].runs[0].data_tx, u64::MAX);
    assert_eq!(back.cells[0].runs[0].control_tx, u64::MAX - 1);
    assert_eq!(back.cells[0].runs[0].counter("huge"), (1u64 << 53) + 1);
}

#[test]
#[should_panic(expected = "non-finite metric")]
fn non_finite_metric_is_rejected_at_serialisation() {
    let set = ReportSet {
        context: String::new(),
        cells: vec![CellReport {
            cell: 0,
            label: "nan".into(),
            runs: vec![RunMetrics {
                delivery_ratio: f64::NAN,
                ..metrics()
            }],
        }],
    };
    let _ = set.to_json();
}

#[test]
#[should_panic(expected = "non-finite metric")]
fn infinite_optional_metric_is_rejected_at_serialisation() {
    let set = ReportSet {
        context: String::new(),
        cells: vec![CellReport {
            cell: 0,
            label: "inf".into(),
            runs: vec![RunMetrics {
                avg_latency: Some(f64::INFINITY),
                ..metrics()
            }],
        }],
    };
    let _ = set.to_json();
}

#[test]
fn non_finite_tokens_are_parse_errors_not_values() {
    let good = ReportSet {
        context: String::new(),
        cells: vec![CellReport {
            cell: 0,
            label: "x".into(),
            runs: vec![metrics()],
        }],
    }
    .to_json();
    // JSON has no NaN/Infinity literals, and overflowing lexemes must not
    // silently become f64::INFINITY.
    for bad in ["NaN", "Infinity", "-Infinity", "1e999", "-1e999"] {
        let text = good.replace(
            "\"delivery_ratio\": 0.5",
            &format!("\"delivery_ratio\": {bad}"),
        );
        assert_ne!(text, good, "replacement for {bad} did not apply");
        assert!(
            ReportSet::from_json(&text).is_err(),
            "{bad} must be rejected"
        );
    }
}

#[test]
fn merge_of_parsed_files_rejects_mismatched_grid_contexts() {
    // Two shard files with disjoint cells but from different grids (e.g.
    // different experiment ids or effort): the context guard must refuse,
    // otherwise they would silently interleave into one corrupt report.
    let shard0 = ReportSet {
        context: "ids=tab6; effort=2runs/250pm; cells=6; grid=0123456789abcdef".into(),
        cells: vec![CellReport {
            cell: 0,
            label: "radius 250 m / glr".into(),
            runs: vec![metrics()],
        }],
    };
    let shard1 = ReportSet {
        context: "ids=tab6; effort=5runs/1000pm; cells=6; grid=fedcba9876543210".into(),
        cells: vec![CellReport {
            cell: 1,
            label: "radius 250 m / epidemic".into(),
            runs: vec![metrics()],
        }],
    };
    let parts: Vec<ReportSet> = [&shard0, &shard1]
        .iter()
        .map(|s| ReportSet::from_json(&s.to_json()).expect("shard parses"))
        .collect();
    let err = ReportSet::merge(parts).unwrap_err();
    assert!(err.contains("different sweeps"), "{err}");
    // Same context, same cell twice: also refused.
    let dup = ReportSet::merge(vec![shard0.clone(), shard0]).unwrap_err();
    assert!(dup.contains("more than one shard"), "{dup}");
}
