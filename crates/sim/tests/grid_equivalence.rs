//! Refactor-safety properties for the spatial index and the layered
//! engine: the grid-backed neighbor queries must be *exactly* equivalent
//! to the linear-scan reference — same node sets from raw queries, and
//! bit-identical [`RunStats`] from full simulation runs.

use glr_mobility::{DeploymentArena, MobilityModel, RandomWaypoint, Region};
use glr_sim::{
    Ctx, IndexBackend, MessageInfo, NodeId, PacketKind, Protocol, RunStats, SimConfig, SimTime,
    Simulation, SpatialIndex, Workload,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A controlled flood: exercises queues, contention, collisions and ARQ,
/// so a divergence between index backends anywhere in the radio stack
/// shows up in the statistics.
struct Flood;

#[derive(Debug, Clone)]
struct FloodPacket {
    info: MessageInfo,
    hops: u32,
}

impl Protocol for Flood {
    type Packet = FloodPacket;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
        let nbrs = ctx.neighbors();
        for e in nbrs {
            let _ = ctx.send(
                e.id,
                FloodPacket { info, hops: 1 },
                info.size,
                PacketKind::Data,
            );
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, _from: NodeId, pkt: Self::Packet) {
        if pkt.info.dst == ctx.me() {
            ctx.deliver(pkt.info.id, pkt.hops);
        } else if pkt.hops < 3 {
            let nbrs = ctx.neighbors();
            for e in nbrs {
                let _ = ctx.send(
                    e.id,
                    FloodPacket {
                        info: pkt.info,
                        hops: pkt.hops + 1,
                    },
                    pkt.info.size,
                    PacketKind::Data,
                );
            }
        }
    }
}

fn run_with(backend: IndexBackend, cfg: &SimConfig, wl: &Workload) -> RunStats {
    Simulation::new(
        cfg.clone().with_neighbor_index(backend),
        wl.clone(),
        |_, _| Flood,
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw query equivalence across random deployments, ranges, and query
    /// times — including queries against a *stale* grid snapshot, which
    /// the drift inflation must keep exact.
    #[test]
    fn grid_nodes_within_matches_linear_scan(
        seed in 0u64..10_000,
        n in 2usize..80,
        w in 50.0..2000.0f64,
        h in 50.0..800.0f64,
        range in 5.0..400.0f64,
        times in prop::collection::vec(0.0..300.0f64, 1..6),
    ) {
        let region = Region::new(w, h);
        let model = RandomWaypoint::new(region, 0.0, 20.0, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let trajs = DeploymentArena::from_trajectories(&model.deployment(region, n, 300.0, &mut rng));

        let mut grid = SpatialIndex::new(IndexBackend::Grid, n, 20.0, range);
        let linear = SpatialIndex::new(IndexBackend::LinearScan, n, 20.0, range);

        let mut times = times;
        times.sort_by(f64::total_cmp);
        // One refresh at the earliest time; later queries hit an ever
        // staler snapshot.
        grid.refresh(SimTime::from_secs(times[0]), &trajs);

        for &t in &times {
            let now = SimTime::from_secs(t);
            for u in [0usize, n / 2, n - 1] {
                let center = trajs.position_at(u, t);
                let except = NodeId(u as u32);
                let got = grid.nodes_within(&trajs, now, center, range, except);
                let want = linear.nodes_within(&trajs, now, center, range, except);
                prop_assert_eq!(
                    got, want,
                    "divergence at t={} range={} n={} u={}", t, range, n, u
                );
            }
        }
    }

    /// Raw count equivalence with a predicate (the contention/interference
    /// query shape).
    #[test]
    fn grid_count_within_matches_linear_scan(
        seed in 0u64..10_000,
        n in 2usize..60,
        range in 10.0..300.0f64,
        t in 0.0..200.0f64,
    ) {
        let region = Region::PAPER_STRIP;
        let model = RandomWaypoint::new(region, 0.0, 20.0, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let trajs = DeploymentArena::from_trajectories(&model.deployment(region, n, 200.0, &mut rng));

        let mut grid = SpatialIndex::new(IndexBackend::Grid, n, 20.0, range);
        let linear = SpatialIndex::new(IndexBackend::LinearScan, n, 20.0, range);
        grid.refresh(SimTime::ZERO, &trajs);

        let now = SimTime::from_secs(t);
        let center = trajs.position_at(0, t);
        // An arbitrary stable predicate (even ids), standing in for "is
        // currently transmitting".
        let got = grid.count_within(&trajs, now, center, range, NodeId(0), |v| v.0 % 2 == 0);
        let want = linear.count_within(&trajs, now, center, range, NodeId(0), |v| v.0 % 2 == 0);
        prop_assert_eq!(got, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full engine equivalence: for random configurations and seeds, a
    /// complete `Simulation::run` produces *bit-identical* `RunStats`
    /// under both spatial-index backends.
    #[test]
    fn full_runs_are_bit_identical_across_backends(
        seed in 0u64..100_000,
        range in 30.0..300.0f64,
        msgs in 1usize..25,
    ) {
        let cfg = SimConfig::paper(range, seed)
            .with_nodes(30)
            .with_duration(60.0);
        let wl = Workload::paper_style(cfg.n_nodes, msgs, 1000);
        let grid = run_with(IndexBackend::Grid, &cfg, &wl);
        let linear = run_with(IndexBackend::LinearScan, &cfg, &wl);
        prop_assert_eq!(grid, linear, "seed={} range={} msgs={}", seed, range, msgs);
    }
}
