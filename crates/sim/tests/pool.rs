//! Lifecycle properties of the persistent worker pool as the engine
//! uses it: dropping a pool (or the simulation owning it) joins every
//! worker — no threads leak across runs; a panicking task poisons the
//! dispatch with a clear error instead of deadlocking the engine's
//! commit phase; and a thread budget of 1 degrades everything to the
//! serial path without ever spawning a thread.

use glr_sim::pool::Task;
use glr_sim::{
    Ctx, EngineKind, MessageInfo, NodeId, Protocol, SimConfig, Simulation, ThreadBudget,
    WorkerPool, Workload,
};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Idle;
impl Protocol for Idle {
    type Packet = ();
    fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
    fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
}

/// Live thread count of this process (Linux; the CI and dev hosts).
/// Returns `None` where /proc is unavailable so the tests degrade to
/// join-based checks instead of failing spuriously.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Polls until the process thread count drops back to `baseline`
/// (joins are synchronous, but the *count* in /proc can lag a moment on
/// loaded hosts).
fn assert_threads_back_to(baseline: usize, context: &str) {
    for _ in 0..100 {
        match thread_count() {
            None => return, // no /proc — joins already asserted by Drop
            Some(n) if n <= baseline => return,
            Some(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    panic!(
        "{context}: thread count never returned to {baseline} (now {:?})",
        thread_count()
    );
}

fn dispatch_counts(pool: &WorkerPool, tasks: usize) -> usize {
    let counter = AtomicUsize::new(0);
    let jobs: Vec<Task<'_>> = (0..tasks)
        .map(|_| {
            let counter = &counter;
            Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }) as Task<'_>
        })
        .collect();
    pool.run(jobs);
    counter.load(Ordering::Relaxed)
}

#[test]
fn pool_drop_joins_all_workers() {
    let baseline = thread_count().unwrap_or(0);
    let pool = WorkerPool::with_threads(4);
    assert_eq!(dispatch_counts(&pool, 32), 32);
    assert!(pool.is_started());
    if let (Some(now), Some(_)) = (thread_count(), Some(baseline)) {
        assert!(now >= baseline + 3, "3 workers must be live, saw {now}");
    }
    drop(pool);
    assert_threads_back_to(baseline, "after pool drop");
}

#[test]
fn simulations_leak_no_threads() {
    let baseline = thread_count().unwrap_or(0);
    // Forced-fanout parallel runs: every beacon dispatches to the pool.
    for seed in 0..3 {
        let cfg = SimConfig::paper(250.0, seed)
            .with_nodes(30)
            .with_duration(20.0)
            .with_engine(EngineKind::Parallel(4))
            .with_parallel_grain(1);
        let wl = Workload::paper_style(cfg.n_nodes, 5, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| Idle).run();
        assert!(stats.control_tx > 0);
        assert_threads_back_to(baseline, "after simulation run");
    }
}

#[test]
fn panicking_task_errors_instead_of_deadlocking() {
    let pool = WorkerPool::with_threads(4);
    let survivors = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut tasks: Vec<Task<'_>> = vec![Box::new(|| panic!("injected fault"))];
        for _ in 0..5 {
            let survivors = &survivors;
            tasks.push(Box::new(move || {
                survivors.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.run(tasks);
    }));
    let err = result.expect_err("the dispatcher must observe the poison");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("worker pool task panicked"),
        "poison must carry a clear error, got {msg:?}"
    );
    // The whole batch still completed before the error surfaced — the
    // commit phase's borrows were released, nothing deadlocked.
    assert_eq!(survivors.load(Ordering::Relaxed), 5);
    // And the pool remains usable afterwards.
    assert_eq!(dispatch_counts(&pool, 8), 8);
}

#[test]
fn budget_of_one_runs_serial_and_spawns_nothing() {
    let baseline = thread_count().unwrap_or(0);
    let budget = ThreadBudget::total(1);
    let cfg = SimConfig::paper(250.0, 9)
        .with_nodes(30)
        .with_duration(30.0)
        .with_engine(EngineKind::Parallel(8))
        .with_parallel_grain(1)
        .with_thread_budget(budget);
    let wl = Workload::paper_style(cfg.n_nodes, 5, 1000);
    let serial_cfg = cfg
        .clone()
        .with_engine(EngineKind::Serial)
        .with_thread_budget(ThreadBudget::unlimited());
    let parallel = Simulation::new(cfg, wl.clone(), |_, _| Idle).run();
    let serial = Simulation::new(serial_cfg, wl, |_, _| Idle).run();
    assert_eq!(serial, parallel);
    if let Some(now) = thread_count() {
        assert!(
            now <= baseline,
            "budget of 1 must never spawn workers (baseline {baseline}, now {now})"
        );
    }
}
