//! End-to-end guarantees of the sweep/shard/report pipeline over real
//! simulations: results are bit-identical across thread counts, shard
//! splits reassemble exactly, and the JSON round trip is byte-stable —
//! so shards produced on different machines merge into the same report
//! an unsharded run would have written.

use glr_sim::{
    Ctx, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, ReportSet, RunStats, Scenario,
    SimConfig, Sweep, SweepResults,
};

/// Forwards to the destination when it is in (true) range.
struct Direct;

impl Protocol for Direct {
    type Packet = MessageInfo;

    fn on_message_created(&mut self, ctx: &mut Ctx<'_, MessageInfo>, info: MessageInfo) {
        if ctx.true_pos(info.dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
            let _ = ctx.send(info.dst, info, info.size, PacketKind::Data);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, MessageInfo>, _: NodeId, pkt: MessageInfo) {
        if pkt.dst == ctx.me() {
            ctx.deliver(pkt.id, 1);
        }
    }
}

/// A 6-cell grid: radio range × medium, the shape of the paper's tables.
fn grid() -> Vec<Scenario> {
    let mut cells = Vec::new();
    for range in [100.0, 200.0] {
        for medium in [
            MediumKind::Contention,
            MediumKind::Ideal,
            MediumKind::shadowing(),
        ] {
            let cfg = SimConfig::paper(range, 30).with_duration(30.0);
            cells.push(
                Scenario::new(format!("range {range} m / {medium}"), cfg)
                    .with_messages(15)
                    .with_medium(medium),
            );
        }
    }
    cells
}

fn run_cell(sc: &Scenario, run: usize) -> RunStats {
    sc.run_nth(run, |_, _| Direct)
}

const RUNS: usize = 2;

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let cells = grid();
    let serial = Sweep::new(RUNS)
        .with_threads(1)
        .execute_serial(&cells, run_cell);
    for threads in [2, 4, 8] {
        let par = Sweep::new(RUNS)
            .with_threads(threads)
            .execute(&cells, run_cell);
        assert_eq!(par, serial, "sweep diverged at {threads} threads");
    }
}

#[test]
fn shard_split_reassembles_exactly() {
    let cells = grid();
    let full = Sweep::new(RUNS).execute(&cells, run_cell);
    assert!(full.is_complete(cells.len()));
    for n_shards in [2usize, 3, 4] {
        let parts: Vec<SweepResults> = (0..n_shards)
            .map(|i| {
                Sweep::new(RUNS)
                    .with_shard(i, n_shards)
                    .execute(&cells, run_cell)
            })
            .collect();
        let merged = SweepResults::merge(parts);
        assert_eq!(merged, full, "{n_shards}-way shard split diverged");
    }
}

#[test]
fn shard_json_merge_matches_unsharded_byte_for_byte() {
    let cells = grid();
    let label = |i: usize| cells[i].label.clone();

    let full = ReportSet::from_sweep(&Sweep::new(RUNS).execute(&cells, run_cell), label);
    let full_json = full.to_json();

    // Two shard "machines" write their JSON files independently...
    let shard_jsons: Vec<String> = (0..2)
        .map(|i| {
            let res = Sweep::new(RUNS).with_shard(i, 2).execute(&cells, run_cell);
            ReportSet::from_sweep(&res, label).to_json()
        })
        .collect();

    // ... and merging the parsed files reproduces the unsharded report
    // exactly, down to the serialised bytes.
    let parts: Vec<ReportSet> = shard_jsons
        .iter()
        .map(|s| ReportSet::from_json(s).expect("shard JSON parses"))
        .collect();
    let merged = ReportSet::merge(parts).expect("disjoint shards merge");
    assert_eq!(merged, full);
    assert_eq!(merged.to_json(), full_json);
}

#[test]
fn kill_and_resume_round_trip_is_byte_identical() {
    let cells = grid();
    let label = |i: usize| cells[i].label.clone();
    let context = "grid=test; runs=2";

    // The uninterrupted reference run.
    let full_json = ReportSet::from_sweep(&Sweep::new(RUNS).execute(&cells, run_cell), label)
        .with_context(context)
        .to_json();

    // A run killed partway: only cells 0, 2 and 5 made it into the
    // report file before the process died.
    let finished = [0usize, 2, 5];
    let killed = Sweep::new(RUNS)
        .skipping((0..cells.len()).filter(|c| !finished.contains(c)))
        .execute(&cells, run_cell);
    let partial_json = ReportSet::from_sweep(&killed, label)
        .with_context(context)
        .to_json();

    // Resume: parse the partial file, skip its completed cells, run the
    // rest, merge — byte-identical to the uninterrupted report.
    let partial = ReportSet::from_json(&partial_json).expect("partial report parses");
    let resumed = Sweep::new(RUNS)
        .skipping(partial.completed_cells())
        .execute(&cells, run_cell);
    let resumed_report = ReportSet::from_sweep(&resumed, label).with_context(context);
    assert_eq!(
        resumed_report.completed_cells(),
        vec![1usize, 3, 4],
        "resume must run exactly the missing cells"
    );
    let merged = ReportSet::merge(vec![partial, resumed_report]).expect("disjoint resume merge");
    assert_eq!(merged.to_json(), full_json);
}

#[test]
fn report_summaries_match_sweep_stats() {
    let cells = grid();
    let results = Sweep::new(RUNS).execute(&cells, run_cell);
    let report = ReportSet::from_sweep(&results, |i| cells[i].label.clone());
    for (cr, rep) in results.cells().iter().zip(&report.cells) {
        let mean_ratio =
            cr.runs.iter().map(RunStats::delivery_ratio).sum::<f64>() / cr.runs.len() as f64;
        assert!((rep.delivery_pct().mean - mean_ratio * 100.0).abs() < 1e-9);
        assert_eq!(rep.runs.len(), RUNS);
    }
}
