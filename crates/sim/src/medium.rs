//! The radio/PHY layer: transmit queues, serialisation, carrier-sense
//! backoff, ARQ and the collision model — behind the pluggable
//! [`Medium`] trait.
//!
//! The engine is medium-agnostic: it hands every link-layer decision to a
//! [`Medium`] implementation and only schedules the completion times the
//! medium returns. [`ContentionMedium`] is the default and reproduces the
//! paper's NS-2-calibrated 802.11 model; alternate PHYs (ideal lossless
//! links, probabilistic shadowing, duty-cycled radios, …) drop in by
//! implementing the trait and passing the instance to
//! [`crate::Simulation::with_medium`] — no engine changes required.
//!
//! Determinism contract: a medium must draw all randomness from
//! [`World::rng`] and must not depend on anything outside the `World`
//! handed to it, so that a run stays a pure function of
//! `(config, workload, protocol, seed)`.

use crate::ids::NodeId;
use crate::time::SimTime;
use crate::world::World;
use glr_geometry::Point2;
use rand::Rng;
use std::collections::VecDeque;

/// Whether a frame carries user data or protocol control information
/// (acknowledgements, summary vectors, …). Only affects accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// End-to-end message payload.
    Data,
    /// Protocol control traffic.
    Control,
}

/// Error returned by [`crate::Ctx::send`] when the link-layer queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link-layer transmit queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// A link-layer frame: one over-the-air transmission attempt's worth of
/// protocol packet plus addressing and accounting metadata.
#[derive(Debug, Clone)]
pub struct Frame<Pk> {
    /// Destination node (unicast).
    pub to: NodeId,
    /// The protocol's packet payload.
    pub packet: Pk,
    /// Payload size in bytes (drives serialisation time).
    pub size: u32,
    /// Data or control, for accounting.
    pub kind: PacketKind,
    /// Transmission attempts already failed for this frame.
    pub retries: u32,
}

/// Outcome of a transmission that just finished serialising, as resolved
/// by the medium.
#[derive(Debug)]
pub enum TxResolution<Pk> {
    /// The frame arrived: the engine counts the delivery (data vs
    /// control, from `kind`), hands `packet` to `to`, and then asks the
    /// medium to start the sender's next queued frame. Accounting lives
    /// in the engine so that wrapper media (e.g. [`DutyCycledMedium`])
    /// can veto an inner medium's delivery without unwinding statistics.
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The payload to hand to the receiver's protocol.
        packet: Pk,
        /// Where the sender was at delivery time (receivers learn the
        /// sender's position from any overheard frame, as in the paper's
        /// IMEP adaptation).
        from_pos: Point2,
        /// Data or control, for the engine's delivery accounting.
        kind: PacketKind,
    },
    /// The frame is definitively lost (retry budget exhausted or receiver
    /// out of range); the engine starts the sender's next queued frame.
    Lost,
    /// The medium is retrying the frame itself (802.11-style ARQ): the
    /// radio stays busy and the engine schedules another completion at
    /// `at`.
    Retrying {
        /// When the retry's serialisation finishes.
        at: SimTime,
    },
}

/// A radio/PHY model: owns the per-node transmit state and decides how
/// long transmissions take and whether they arrive.
///
/// Object-safe: the engine stores `Box<dyn Medium<Pk>>`, so media can be
/// swapped at construction without touching the engine's type.
pub trait Medium<Pk> {
    /// Queues `frame` for transmission from `from`.
    ///
    /// Returns `Ok(Some(at))` when the radio was idle and started
    /// transmitting immediately — the engine schedules the completion at
    /// `at`. Returns `Ok(None)` when the frame was queued behind an
    /// in-flight transmission.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the transmit queue is at capacity; the frame is
    /// dropped.
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull>;

    /// Resolves the transmission in flight at `from`, whose serialisation
    /// just completed.
    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk>;

    /// Starts the next queued frame at `from` if the radio is idle;
    /// returns the new transmission's completion time.
    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime>;

    /// Number of frames waiting (not in flight) in `node`'s queue.
    fn queue_len(&self, node: NodeId) -> usize;
}

/// Why a frame failed at the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameLoss {
    Collision,
    OutOfRange,
}

#[derive(Debug, Clone)]
struct Radio<Pk> {
    queue: VecDeque<Frame<Pk>>,
    current: Option<Frame<Pk>>,
}

impl<Pk> Default for Radio<Pk> {
    fn default() -> Self {
        Radio {
            queue: VecDeque::new(),
            current: None,
        }
    }
}

impl<Pk> Radio<Pk> {
    /// Queues a frame under the shared discipline: drop-tail at `limit`,
    /// control frames jump ahead of queued data (the MAC-level priority
    /// short frames enjoy in practice; without it, custody
    /// acknowledgements would sit behind seconds of queued data and every
    /// cache timeout would fork a duplicate copy).
    fn push(&mut self, frame: Frame<Pk>, limit: usize) -> Result<(), QueueFull> {
        if self.queue.len() >= limit {
            return Err(QueueFull);
        }
        match frame.kind {
            PacketKind::Control => {
                // Behind any already-queued control frames, ahead of data.
                let at = self
                    .queue
                    .iter()
                    .position(|f| f.kind == PacketKind::Data)
                    .unwrap_or(self.queue.len());
                self.queue.insert(at, frame);
            }
            PacketKind::Data => self.queue.push_back(frame),
        }
        Ok(())
    }

    /// Takes the frame whose serialisation just completed.
    ///
    /// # Panics
    ///
    /// Panics when no frame is in flight — a `TxComplete` event without
    /// one is an engine/medium sequencing bug.
    fn take_in_flight(&mut self) -> Frame<Pk> {
        self.current
            .take()
            .expect("TxComplete without a frame in flight")
    }

    /// Pops the next queued frame iff the radio is idle (the caller
    /// computes its completion time and hands it back via `current`).
    fn pop_next(&mut self) -> Option<Frame<Pk>> {
        if self.current.is_some() {
            return None;
        }
        self.queue.pop_front()
    }

    /// Number of frames waiting (not in flight).
    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// Builds the [`TxResolution::Delivered`] the engine expects; the engine
/// performs the data/control delivery accounting when it processes the
/// resolution (so wrapper media can still veto the delivery).
fn deliver<Pk>(frame: Frame<Pk>, from_pos: Point2) -> TxResolution<Pk> {
    TxResolution::Delivered {
        to: frame.to,
        packet: frame.packet,
        from_pos,
        kind: frame.kind,
    }
}

/// 802.11-style ARQ re-arm shared by the lossy media: bumps the retry
/// counter and returns the frame together with its next completion time
/// (exponential backoff with one slot of random jitter, then
/// re-serialisation). The caller has already checked the retry budget.
fn arq_retry<Pk>(world: &mut World, mut frame: Frame<Pk>) -> (Frame<Pk>, SimTime) {
    frame.retries += 1;
    let slots = (1u32 << frame.retries.min(10)) as f64;
    let jitter: f64 = world.rng().random_range(0.0..=1.0);
    let backoff = world.config().mac_slot * slots * (1.0 + jitter);
    let duration = world.config().tx_time(frame.size);
    let at = world.now() + backoff + duration;
    (frame, at)
}

/// The default medium: the paper's contention model.
///
/// * unit-disk reception at `config.radio_range`;
/// * per-node FIFO transmit queues of `config.queue_limit` frames with
///   drop-tail overflow (NS-2's `IFq`);
/// * control frames jump ahead of queued data — the MAC-level priority
///   short frames enjoy in practice; without it, custody
///   acknowledgements would sit behind seconds of queued data and every
///   cache timeout would fork a duplicate copy;
/// * carrier-sense access delay proportional to busy transmitters within
///   twice the radio range, plus one slot of random jitter;
/// * serialisation at `config.data_rate_bps` plus fixed MAC overhead;
/// * probabilistic collision loss growing with the number of interferers
///   near the receiver (hidden terminals included), retried with
///   exponential backoff up to `config.mac_retries` times while the
///   radio stays busy (head-of-line blocking — the paper's contention
///   mechanism).
#[derive(Debug)]
pub struct ContentionMedium<Pk> {
    radios: Vec<Radio<Pk>>,
}

impl<Pk> ContentionMedium<Pk> {
    /// Creates the medium for `n_nodes` radios.
    pub fn new(n_nodes: usize) -> Self {
        ContentionMedium {
            radios: (0..n_nodes).map(|_| Radio::default()).collect(),
        }
    }
}

impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for ContentionMedium<Pk> {
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull> {
        let ui = from.index();
        if let Err(e) = self.radios[ui].push(frame, world.config().queue_limit) {
            world.stats().queue_drops += 1;
            return Err(e);
        }
        Ok(self.start_next(world, from))
    }

    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
        let frame = self.radios[from.index()].take_in_flight();
        let pos_u = world.pos(from);
        let pos_to = world.pos(frame.to);
        let range = world.config().radio_range;

        let failure = if pos_u.dist(pos_to) > range {
            Some(FrameLoss::OutOfRange)
        } else {
            // Interference near the receiver (includes hidden terminals).
            let radios = &self.radios;
            let k =
                world.count_within(pos_to, range, from, |v| radios[v.index()].current.is_some());
            let p_loss = 1.0 - (1.0 - world.config().collision_prob).powi(k as i32);
            if k > 0 && world.rng().random_range(0.0..1.0) < p_loss {
                Some(FrameLoss::Collision)
            } else {
                None
            }
        };

        if let Some(loss) = failure {
            match loss {
                FrameLoss::Collision => world.stats().collisions += 1,
                FrameLoss::OutOfRange => world.stats().out_of_range += 1,
            }
            // 802.11-style ARQ: retry with exponential backoff until the
            // retry budget is spent; the radio stays busy meanwhile.
            if frame.retries < world.config().mac_retries {
                let (frame, at) = arq_retry(world, frame);
                self.radios[from.index()].current = Some(frame);
                return TxResolution::Retrying { at };
            }
            return TxResolution::Lost;
        }

        deliver(frame, pos_u)
    }

    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
        let ui = from.index();
        let frame = self.radios[ui].pop_next()?;
        let pos_u = world.pos(from);
        // Carrier sense: back off proportionally to busy transmitters in a
        // two-radius neighbourhood, plus random jitter of one slot.
        let radios = &self.radios;
        let contention = world.count_within(pos_u, 2.0 * world.config().radio_range, from, |v| {
            radios[v.index()].current.is_some()
        }) as f64;
        let jitter: f64 = world.rng().random_range(0.0..=1.0);
        let access = world.config().mac_slot * (contention + jitter);
        let duration = world.config().tx_time(frame.size);
        let done = world.now() + access + duration;
        self.radios[ui].current = Some(frame);
        Some(done)
    }

    fn queue_len(&self, node: NodeId) -> usize {
        self.radios[node.index()].queue_len()
    }
}

/// A lossless, zero-contention radio for protocol-logic debugging.
///
/// Every enqueued frame arrives after pure serialisation time
/// ([`crate::SimConfig::tx_time`]): no carrier-sense backoff, no jitter,
/// no collisions, no range check — if the protocol sends it, the
/// destination hears it. The queue discipline (drop-tail at
/// `queue_limit`, control-before-data) is shared with
/// [`ContentionMedium`], so queue-pressure behaviour stays comparable.
///
/// `IdealMedium` draws nothing from [`World::rng`], which trivially
/// satisfies the determinism contract, and never touches the
/// `collisions`/`out_of_range` counters — a run whose statistics show
/// either non-zero under this medium has found an engine bug (asserted
/// by the cross-medium invariant tests).
#[derive(Debug)]
pub struct IdealMedium<Pk> {
    radios: Vec<Radio<Pk>>,
}

impl<Pk> IdealMedium<Pk> {
    /// Creates the medium for `n_nodes` radios.
    pub fn new(n_nodes: usize) -> Self {
        IdealMedium {
            radios: (0..n_nodes).map(|_| Radio::default()).collect(),
        }
    }
}

impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for IdealMedium<Pk> {
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull> {
        if let Err(e) = self.radios[from.index()].push(frame, world.config().queue_limit) {
            world.stats().queue_drops += 1;
            return Err(e);
        }
        Ok(self.start_next(world, from))
    }

    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
        let frame = self.radios[from.index()].take_in_flight();
        let from_pos = world.pos(from);
        deliver(frame, from_pos)
    }

    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
        let ui = from.index();
        let frame = self.radios[ui].pop_next()?;
        let done = world.now() + world.config().tx_time(frame.size);
        self.radios[ui].current = Some(frame);
        Some(done)
    }

    fn queue_len(&self, node: NodeId) -> usize {
        self.radios[node.index()].queue_len()
    }
}

/// Parameters of the log-distance shadowing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowingParams {
    /// Path-loss exponent `n` of the log-distance model (2 = free space,
    /// ~3 = the urban/suburban settings the paper's scenarios resemble).
    pub path_loss_exp: f64,
    /// Standard deviation of the per-frame log-normal shadowing term, in
    /// dB (typical measured values: 4–10 dB).
    pub sigma_db: f64,
    /// Reference distance `d0` in metres; below it reception is treated
    /// as certain (shadowing cannot beat a zero-length link).
    pub d0: f64,
}

impl Default for ShadowingParams {
    fn default() -> Self {
        ShadowingParams {
            path_loss_exp: 3.0,
            sigma_db: 6.0,
            d0: 1.0,
        }
    }
}

/// Counter key under which [`ShadowingMedium`] reports fade losses in
/// [`crate::RunStats::counters`].
pub const SHADOWING_FADE_LOSS: &str = "medium.shadow_fade";

/// Log-distance path loss with per-frame log-normal shadowing.
///
/// The model is calibrated so that at `config.radio_range` the mean path
/// loss exactly meets the receiver threshold: the fade margin of a frame
/// over distance `d` is `10·n·log10(range/d)` dB, and the frame is lost
/// when a per-frame shadowing draw `X ~ N(0, σ²)` (from [`World::rng`],
/// preserving the determinism contract) exceeds that margin. Links well
/// inside the nominal range are near-certain, the delivery probability
/// is 50 % exactly at the range, and — unlike the unit-disk media — a
/// lucky fade can carry a frame *beyond* it: soft range edges instead of
/// a cliff.
///
/// Lost frames are retried with the same exponential-backoff ARQ as
/// [`ContentionMedium`] and accounted under the [`SHADOWING_FADE_LOSS`]
/// event counter (the `collisions`/`out_of_range` counters stay the
/// contention model's). Serialisation and queueing match
/// [`ContentionMedium`] minus the carrier-sense term: one random jitter
/// slot of medium-access delay, then `tx_time`.
///
/// Portability caveat: the fade decision evaluates `ln`/`cos`/`log10`,
/// which IEEE 754 does not require to be correctly rounded — their
/// last-ulp behaviour belongs to the platform libm. Shadowing runs are
/// therefore bit-reproducible per binary (and across shard invocations
/// of that binary), but a shard computed on a host with a different
/// libm may diverge; keep multi-machine sweeps on one build when this
/// medium is in the grid. The unit-disk media use only arithmetic,
/// `sqrt` and `powi` and carry no such caveat.
#[derive(Debug)]
pub struct ShadowingMedium<Pk> {
    radios: Vec<Radio<Pk>>,
    params: ShadowingParams,
}

impl<Pk> ShadowingMedium<Pk> {
    /// Creates the medium for `n_nodes` radios.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    pub fn new(n_nodes: usize, params: ShadowingParams) -> Self {
        assert!(
            params.path_loss_exp > 0.0 && params.path_loss_exp.is_finite(),
            "path-loss exponent must be positive"
        );
        assert!(
            params.sigma_db >= 0.0 && params.sigma_db.is_finite(),
            "shadowing sigma must be non-negative"
        );
        assert!(
            params.d0 > 0.0 && params.d0.is_finite(),
            "reference distance must be positive"
        );
        ShadowingMedium {
            radios: (0..n_nodes).map(|_| Radio::default()).collect(),
            params,
        }
    }

    /// A standard normal draw via Box–Muller (the vendored `rand` shim has
    /// no distributions module).
    fn standard_normal(rng: &mut impl Rng) -> f64 {
        let u1: f64 = rng.random_range(0.0..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        // 1 - u1 ∈ (0, 1], so the log is finite.
        (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for ShadowingMedium<Pk> {
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull> {
        if let Err(e) = self.radios[from.index()].push(frame, world.config().queue_limit) {
            world.stats().queue_drops += 1;
            return Err(e);
        }
        Ok(self.start_next(world, from))
    }

    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
        let frame = self.radios[from.index()].take_in_flight();
        let pos_u = world.pos(from);
        let d = pos_u.dist(world.pos(frame.to)).max(self.params.d0);
        // Fade margin in dB: zero at the nominal range, positive inside.
        let margin_db = 10.0 * self.params.path_loss_exp * (world.config().radio_range / d).log10();
        let shadow_db = self.params.sigma_db * Self::standard_normal(world.rng());

        if shadow_db > margin_db {
            world.stats().count_event(SHADOWING_FADE_LOSS);
            if frame.retries < world.config().mac_retries {
                let (frame, at) = arq_retry(world, frame);
                self.radios[from.index()].current = Some(frame);
                return TxResolution::Retrying { at };
            }
            return TxResolution::Lost;
        }

        deliver(frame, pos_u)
    }

    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
        let ui = from.index();
        let frame = self.radios[ui].pop_next()?;
        let jitter: f64 = world.rng().random_range(0.0..=1.0);
        let access = world.config().mac_slot * jitter;
        let done = world.now() + access + world.config().tx_time(frame.size);
        self.radios[ui].current = Some(frame);
        Some(done)
    }

    fn queue_len(&self, node: NodeId) -> usize {
        self.radios[node.index()].queue_len()
    }
}

/// Counter key under which [`DutyCycledMedium`] reports frames dropped
/// because the receiver's radio was asleep, in
/// [`crate::RunStats::counters`].
pub const DUTY_SLEEP_DROP: &str = "medium.duty_sleep_drop";

/// A duty-cycled radio: wraps any inner [`Medium`] and drops frames that
/// *arrive* while the receiving node's radio is asleep.
///
/// Each node's radio wakes for the first `on_fraction` of every `period`
/// seconds, with a deterministic per-node phase offset (golden-ratio
/// staggering, so sleep windows are spread instead of synchronised
/// network-wide). The schedule is a pure function of `(node, time)` — no
/// randomness — which trivially preserves the determinism contract, and
/// the wrapper delegates queueing, serialisation, contention and loss
/// modelling entirely to the inner medium: a frame must first survive
/// the inner model, then find its receiver awake.
///
/// Dropped-at-sleep frames are counted under [`DUTY_SLEEP_DROP`] and are
/// *not* retried: the transmitter's MAC saw no collision and moves on,
/// which is exactly the silent-loss failure mode that makes aggressive
/// duty cycling expensive for beacon-driven protocols. Engine-level
/// beacons bypass the [`Medium`] trait (the engine computes their
/// receiver sets geometrically), so duty cycling here models the *data
/// plane*: unicast data and protocol control frames.
///
/// Built declaratively via [`crate::MediumKind::DutyCycled`].
pub struct DutyCycledMedium<Pk> {
    inner: Box<dyn Medium<Pk>>,
    on_fraction: f64,
    period: f64,
}

impl<Pk> DutyCycledMedium<Pk> {
    /// Wraps `inner` with an `on_fraction`/`period` sleep schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < on_fraction <= 1` and `period` is positive and
    /// finite.
    pub fn new(inner: Box<dyn Medium<Pk>>, on_fraction: f64, period: f64) -> Self {
        assert!(
            on_fraction > 0.0 && on_fraction <= 1.0,
            "on_fraction must be in (0, 1], got {on_fraction}"
        );
        assert!(
            period > 0.0 && period.is_finite(),
            "period must be positive and finite, got {period}"
        );
        DutyCycledMedium {
            inner,
            on_fraction,
            period,
        }
    }

    /// Whether `node`'s radio is awake at `now`: within the first
    /// `on_fraction` of its (phase-staggered) period.
    pub fn awake(&self, node: NodeId, now: SimTime) -> bool {
        // Low bits of the golden ratio spread phases maximally evenly.
        let phase = (node.0 as f64 * 0.618_033_988_749_894_9).fract() * self.period;
        let local = (now.as_secs() + phase) % self.period;
        local < self.on_fraction * self.period
    }
}

impl<Pk> std::fmt::Debug for DutyCycledMedium<Pk> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DutyCycledMedium")
            .field("on_fraction", &self.on_fraction)
            .field("period", &self.period)
            .finish_non_exhaustive()
    }
}

impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for DutyCycledMedium<Pk> {
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull> {
        self.inner.enqueue(world, from, frame)
    }

    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
        match self.inner.tx_complete(world, from) {
            TxResolution::Delivered { to, .. } if !self.awake(to, world.now()) => {
                world.stats().count_event(DUTY_SLEEP_DROP);
                TxResolution::Lost
            }
            resolution => resolution,
        }
    }

    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
        self.inner.start_next(world, from)
    }

    fn queue_len(&self, node: NodeId) -> usize {
        self.inner.queue_len(node)
    }
}

#[cfg(test)]
mod duty_tests {
    use super::*;

    #[test]
    fn wake_windows_cover_on_fraction() {
        let m: DutyCycledMedium<()> =
            DutyCycledMedium::new(Box::new(IdealMedium::new(4)), 0.25, 1.0);
        for node in [NodeId(0), NodeId(1), NodeId(2), NodeId(3)] {
            let awake = (0..1000)
                .filter(|i| m.awake(node, SimTime::from_secs(*i as f64 * 0.01)))
                .count();
            // 25% on-time, sampled over 10 periods.
            assert!((200..=300).contains(&awake), "node {node:?}: {awake}");
        }
        // Phases are staggered: node 0 and node 1 differ somewhere.
        assert!((0..100).any(|i| {
            let t = SimTime::from_secs(i as f64 * 0.01);
            m.awake(NodeId(0), t) != m.awake(NodeId(1), t)
        }));
    }

    #[test]
    fn full_on_fraction_never_sleeps() {
        let m: DutyCycledMedium<()> =
            DutyCycledMedium::new(Box::new(IdealMedium::new(2)), 1.0, 5.0);
        for i in 0..500 {
            assert!(m.awake(NodeId(1), SimTime::from_secs(i as f64 * 0.1)));
        }
    }

    #[test]
    #[should_panic(expected = "on_fraction")]
    fn zero_on_fraction_rejected() {
        let _: DutyCycledMedium<()> =
            DutyCycledMedium::new(Box::new(IdealMedium::new(2)), 0.0, 1.0);
    }
}
