//! The radio/PHY layer: transmit queues, serialisation, carrier-sense
//! backoff, ARQ and the collision model — behind the pluggable
//! [`Medium`] trait.
//!
//! The engine is medium-agnostic: it hands every link-layer decision to a
//! [`Medium`] implementation and only schedules the completion times the
//! medium returns. [`ContentionMedium`] is the default and reproduces the
//! paper's NS-2-calibrated 802.11 model; alternate PHYs (ideal lossless
//! links, probabilistic shadowing, duty-cycled radios, …) drop in by
//! implementing the trait and passing the instance to
//! [`crate::Simulation::with_medium`] — no engine changes required.
//!
//! Determinism contract: a medium must draw all randomness from
//! [`World::rng`] and must not depend on anything outside the `World`
//! handed to it, so that a run stays a pure function of
//! `(config, workload, protocol, seed)`.

use crate::ids::NodeId;
use crate::time::SimTime;
use crate::world::World;
use glr_geometry::Point2;
use rand::Rng;
use std::collections::VecDeque;

/// Whether a frame carries user data or protocol control information
/// (acknowledgements, summary vectors, …). Only affects accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// End-to-end message payload.
    Data,
    /// Protocol control traffic.
    Control,
}

/// Error returned by [`crate::Ctx::send`] when the link-layer queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link-layer transmit queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// A link-layer frame: one over-the-air transmission attempt's worth of
/// protocol packet plus addressing and accounting metadata.
#[derive(Debug, Clone)]
pub struct Frame<Pk> {
    /// Destination node (unicast).
    pub to: NodeId,
    /// The protocol's packet payload.
    pub packet: Pk,
    /// Payload size in bytes (drives serialisation time).
    pub size: u32,
    /// Data or control, for accounting.
    pub kind: PacketKind,
    /// Transmission attempts already failed for this frame.
    pub retries: u32,
}

/// Outcome of a transmission that just finished serialising, as resolved
/// by the medium.
#[derive(Debug)]
pub enum TxResolution<Pk> {
    /// The frame arrived: the engine delivers `packet` to `to` and then
    /// asks the medium to start the sender's next queued frame. All
    /// data/control accounting is the medium's job, done before
    /// returning this.
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The payload to hand to the receiver's protocol.
        packet: Pk,
        /// Where the sender was at delivery time (receivers learn the
        /// sender's position from any overheard frame, as in the paper's
        /// IMEP adaptation).
        from_pos: Point2,
    },
    /// The frame is definitively lost (retry budget exhausted or receiver
    /// out of range); the engine starts the sender's next queued frame.
    Lost,
    /// The medium is retrying the frame itself (802.11-style ARQ): the
    /// radio stays busy and the engine schedules another completion at
    /// `at`.
    Retrying {
        /// When the retry's serialisation finishes.
        at: SimTime,
    },
}

/// A radio/PHY model: owns the per-node transmit state and decides how
/// long transmissions take and whether they arrive.
///
/// Object-safe: the engine stores `Box<dyn Medium<Pk>>`, so media can be
/// swapped at construction without touching the engine's type.
pub trait Medium<Pk> {
    /// Queues `frame` for transmission from `from`.
    ///
    /// Returns `Ok(Some(at))` when the radio was idle and started
    /// transmitting immediately — the engine schedules the completion at
    /// `at`. Returns `Ok(None)` when the frame was queued behind an
    /// in-flight transmission.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the transmit queue is at capacity; the frame is
    /// dropped.
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull>;

    /// Resolves the transmission in flight at `from`, whose serialisation
    /// just completed.
    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk>;

    /// Starts the next queued frame at `from` if the radio is idle;
    /// returns the new transmission's completion time.
    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime>;

    /// Number of frames waiting (not in flight) in `node`'s queue.
    fn queue_len(&self, node: NodeId) -> usize;
}

/// Why a frame failed at the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameLoss {
    Collision,
    OutOfRange,
}

#[derive(Debug, Clone)]
struct Radio<Pk> {
    queue: VecDeque<Frame<Pk>>,
    current: Option<Frame<Pk>>,
}

impl<Pk> Default for Radio<Pk> {
    fn default() -> Self {
        Radio {
            queue: VecDeque::new(),
            current: None,
        }
    }
}

/// The default medium: the paper's contention model.
///
/// * unit-disk reception at `config.radio_range`;
/// * per-node FIFO transmit queues of `config.queue_limit` frames with
///   drop-tail overflow (NS-2's `IFq`);
/// * control frames jump ahead of queued data — the MAC-level priority
///   short frames enjoy in practice; without it, custody
///   acknowledgements would sit behind seconds of queued data and every
///   cache timeout would fork a duplicate copy;
/// * carrier-sense access delay proportional to busy transmitters within
///   twice the radio range, plus one slot of random jitter;
/// * serialisation at `config.data_rate_bps` plus fixed MAC overhead;
/// * probabilistic collision loss growing with the number of interferers
///   near the receiver (hidden terminals included), retried with
///   exponential backoff up to `config.mac_retries` times while the
///   radio stays busy (head-of-line blocking — the paper's contention
///   mechanism).
#[derive(Debug)]
pub struct ContentionMedium<Pk> {
    radios: Vec<Radio<Pk>>,
}

impl<Pk> ContentionMedium<Pk> {
    /// Creates the medium for `n_nodes` radios.
    pub fn new(n_nodes: usize) -> Self {
        ContentionMedium {
            radios: (0..n_nodes).map(|_| Radio::default()).collect(),
        }
    }
}

impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for ContentionMedium<Pk> {
    fn enqueue(
        &mut self,
        world: &mut World,
        from: NodeId,
        frame: Frame<Pk>,
    ) -> Result<Option<SimTime>, QueueFull> {
        let ui = from.index();
        if self.radios[ui].queue.len() >= world.config().queue_limit {
            world.stats().queue_drops += 1;
            return Err(QueueFull);
        }
        match frame.kind {
            PacketKind::Control => {
                // Behind any already-queued control frames, ahead of data.
                let at = self.radios[ui]
                    .queue
                    .iter()
                    .position(|f| f.kind == PacketKind::Data)
                    .unwrap_or(self.radios[ui].queue.len());
                self.radios[ui].queue.insert(at, frame);
            }
            PacketKind::Data => self.radios[ui].queue.push_back(frame),
        }
        Ok(self.start_next(world, from))
    }

    fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
        let frame = self.radios[from.index()]
            .current
            .take()
            .expect("TxComplete without a frame in flight");
        let now = world.now();
        let pos_u = world.pos(from);
        let to = frame.to;
        let pos_to = world.pos(to);
        let range = world.config().radio_range;

        let failure = if pos_u.dist(pos_to) > range {
            Some(FrameLoss::OutOfRange)
        } else {
            // Interference near the receiver (includes hidden terminals).
            let radios = &self.radios;
            let k =
                world.count_within(pos_to, range, from, |v| radios[v.index()].current.is_some());
            let p_loss = 1.0 - (1.0 - world.config().collision_prob).powi(k as i32);
            if k > 0 && world.rng().random_range(0.0..1.0) < p_loss {
                Some(FrameLoss::Collision)
            } else {
                None
            }
        };

        if let Some(loss) = failure {
            match loss {
                FrameLoss::Collision => world.stats().collisions += 1,
                FrameLoss::OutOfRange => world.stats().out_of_range += 1,
            }
            // 802.11-style ARQ: retry with exponential backoff until the
            // retry budget is spent; the radio stays busy meanwhile.
            if frame.retries < world.config().mac_retries {
                let mut frame = frame;
                frame.retries += 1;
                let slots = (1u32 << frame.retries.min(10)) as f64;
                let jitter: f64 = world.rng().random_range(0.0..=1.0);
                let backoff = world.config().mac_slot * slots * (1.0 + jitter);
                let duration = world.config().tx_time(frame.size);
                let at = now + backoff + duration;
                self.radios[from.index()].current = Some(frame);
                return TxResolution::Retrying { at };
            }
            return TxResolution::Lost;
        }

        match frame.kind {
            PacketKind::Data => world.stats().data_tx += 1,
            PacketKind::Control => world.stats().control_tx += 1,
        }
        TxResolution::Delivered {
            to,
            packet: frame.packet,
            from_pos: pos_u,
        }
    }

    fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
        let ui = from.index();
        if self.radios[ui].current.is_some() || self.radios[ui].queue.is_empty() {
            return None;
        }
        let frame = self.radios[ui].queue.pop_front().expect("queue non-empty");
        let pos_u = world.pos(from);
        // Carrier sense: back off proportionally to busy transmitters in a
        // two-radius neighbourhood, plus random jitter of one slot.
        let radios = &self.radios;
        let contention = world.count_within(pos_u, 2.0 * world.config().radio_range, from, |v| {
            radios[v.index()].current.is_some()
        }) as f64;
        let jitter: f64 = world.rng().random_range(0.0..=1.0);
        let access = world.config().mac_slot * (contention + jitter);
        let duration = world.config().tx_time(frame.size);
        let done = world.now() + access + duration;
        self.radios[ui].current = Some(frame);
        Some(done)
    }

    fn queue_len(&self, node: NodeId) -> usize {
        self.radios[node.index()].queue.len()
    }
}
