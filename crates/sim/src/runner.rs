//! Multi-run experiment harness.
//!
//! Every number in the paper is a mean over 10 runs with distinct
//! topologies and movement patterns, reported with a 90 % confidence
//! interval. [`MultiRun`] drives that: it re-seeds the configuration for
//! each run, collects [`RunStats`], and summarises any metric across runs.
//!
//! [`MultiRun::execute`] fans the runs out across OS threads (one run is
//! a pure function of `(config, workload, protocol, seed)`, so runs are
//! embarrassingly parallel). Since PR 2 the execution itself is the
//! [`Sweep`] engine's work queue — a `MultiRun` is simply a sweep of one
//! cell — so the summaries are identical to the serial path regardless
//! of thread count or completion order, asserted by the tests below and
//! by the sweep engine's own.

use crate::config::SimConfig;
use crate::stats::{summarize, RunStats, Summary};
use crate::sweep::Sweep;

/// Results of repeating one experiment across several seeds.
#[derive(Debug, Clone)]
pub struct MultiRun {
    runs: Vec<RunStats>,
}

impl MultiRun {
    /// Executes `runs` simulations in parallel (one thread per available
    /// core, capped at `runs`), seeding run `i` with `base_seed + i`, and
    /// collects their statistics in run order. `run_fn` receives the
    /// per-run configuration and must return that run's [`RunStats`]
    /// (typically by constructing a `Simulation` and calling `run()`).
    ///
    /// Determinism: each run's seed depends only on its index, and
    /// results are stored by index, so the outcome is identical to
    /// [`MultiRun::execute_serial`] for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`, or propagates the first panic of any run.
    pub fn execute(
        config: &SimConfig,
        runs: usize,
        run_fn: impl Fn(SimConfig) -> RunStats + Send + Sync,
    ) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::execute_with_threads(config, runs, threads, run_fn)
    }

    /// Like [`MultiRun::execute`] with an explicit worker-thread count
    /// (clamped to `runs`; `<= 1` runs on the calling thread). Results
    /// are independent of the count — this is the knob for oversubscribed
    /// or cgroup-limited hosts, and what the determinism tests pin.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`, or propagates the first panic of any run.
    pub fn execute_with_threads(
        config: &SimConfig,
        runs: usize,
        threads: usize,
        run_fn: impl Fn(SimConfig) -> RunStats + Send + Sync,
    ) -> Self {
        assert!(runs > 0, "need at least one run");
        // The outer run fan-out draws from the same thread budget the
        // per-run engines use (the configs handed to `run_fn` carry the
        // same ledger), so `threads` is a cap within the budget, not an
        // addition to it.
        let results = Sweep::new(runs)
            .with_threads(threads)
            .with_budget(config.thread_budget.clone())
            .execute(&[()], |(), i| {
                run_fn(config.clone().with_seed(config.seed + i as u64))
            });
        let cell = results
            .into_cells()
            .pop()
            .expect("single-cell sweep produced no cell");
        MultiRun { runs: cell.runs }
    }

    /// Executes `runs` simulations on the calling thread, seeding run `i`
    /// with `base_seed + i`. Prefer [`MultiRun::execute`]; this exists
    /// for stateful `run_fn` closures (`FnMut`) and as the reference the
    /// parallel path is validated against.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn execute_serial(
        config: &SimConfig,
        runs: usize,
        mut run_fn: impl FnMut(SimConfig) -> RunStats,
    ) -> Self {
        assert!(runs > 0, "need at least one run");
        let collected = (0..runs)
            .map(|i| run_fn(config.clone().with_seed(config.seed + i as u64)))
            .collect();
        MultiRun { runs: collected }
    }

    /// Wraps already-collected run statistics.
    pub fn from_runs(runs: Vec<RunStats>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        MultiRun { runs }
    }

    /// The individual run statistics.
    pub fn runs(&self) -> &[RunStats] {
        &self.runs
    }

    /// Summarises an arbitrary per-run metric.
    pub fn metric(&self, f: impl Fn(&RunStats) -> f64) -> Summary {
        let xs: Vec<f64> = self.runs.iter().map(f).collect();
        summarize(&xs)
    }

    /// Delivery ratio across runs.
    pub fn delivery_ratio(&self) -> Summary {
        self.metric(|r| r.delivery_ratio())
    }

    /// Mean latency across runs (runs with no deliveries contribute the
    /// full simulated duration as a pessimistic bound — they would
    /// otherwise silently vanish from the average).
    pub fn avg_latency(&self, undelivered_penalty: f64) -> Summary {
        self.metric(|r| r.avg_latency().unwrap_or(undelivered_penalty))
    }

    /// Mean hop count across runs (0 when nothing was delivered).
    pub fn avg_hops(&self) -> Summary {
        self.metric(|r| r.avg_hops().unwrap_or(0.0))
    }

    /// Max peak storage across runs.
    pub fn max_peak_storage(&self) -> Summary {
        self.metric(|r| r.max_peak_storage() as f64)
    }

    /// Average peak storage across runs.
    pub fn avg_peak_storage(&self) -> Summary {
        self.metric(|r| r.avg_peak_storage())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::stats::RunStats;
    use crate::time::SimTime;

    fn fake_run(delivered: usize, total: usize) -> RunStats {
        let mut s = RunStats::new(4);
        for i in 0..total {
            let id = crate::ids::MessageId {
                src: NodeId(0),
                seq: i as u32,
            };
            s.register_message(id, NodeId(0), NodeId(1), SimTime::ZERO);
            if i < delivered {
                s.record_delivery(id, SimTime::from_secs(10.0 + i as f64), 2);
            }
        }
        s
    }

    #[test]
    fn metric_aggregation() {
        let mr = MultiRun::from_runs(vec![fake_run(8, 10), fake_run(10, 10), fake_run(9, 10)]);
        let dr = mr.delivery_ratio();
        assert!((dr.mean - 0.9).abs() < 1e-12);
        assert!(dr.ci90 > 0.0);
        assert_eq!(dr.n, 3);
        let hops = mr.avg_hops();
        assert_eq!(hops.mean, 2.0);
    }

    #[test]
    fn latency_penalty_for_empty_runs() {
        let mr = MultiRun::from_runs(vec![fake_run(0, 5), fake_run(5, 5)]);
        let lat = mr.avg_latency(1000.0);
        assert!(lat.mean > 100.0, "penalty must dominate: {}", lat.mean);
    }

    #[test]
    fn execute_reseeds() {
        let cfg = SimConfig::paper(100.0, 10);
        let mut seeds = Vec::new();
        let mr = MultiRun::execute_serial(&cfg, 3, |c| {
            seeds.push(c.seed);
            RunStats::new(2)
        });
        assert_eq!(seeds, vec![10, 11, 12]);
        assert_eq!(mr.runs().len(), 3);
    }

    #[test]
    fn parallel_execute_matches_serial() {
        // A deterministic fake run derived only from the seed: the
        // parallel fan-out must reproduce the serial results exactly, in
        // run order.
        let run_fn = |c: SimConfig| {
            let delivered = (c.seed % 7) as usize;
            fake_run(delivered, 8)
        };
        let cfg = SimConfig::paper(100.0, 40);
        // Pin the thread count so the threaded path is exercised even on
        // single-core hosts (where `execute` would fall back to serial).
        let par = MultiRun::execute_with_threads(&cfg, 16, 4, run_fn);
        let ser = MultiRun::execute_serial(&cfg, 16, run_fn);
        assert_eq!(par.runs().len(), 16);
        for (p, s) in par.runs().iter().zip(ser.runs()) {
            assert_eq!(p, s);
        }
        assert_eq!(par.delivery_ratio(), ser.delivery_ratio());
        assert_eq!(par.avg_hops(), ser.avg_hops());
    }

    #[test]
    fn parallel_execute_runs_real_simulations() {
        use crate::medium::PacketKind;
        use crate::sim::{Ctx, Protocol, Simulation};
        use crate::workload::Workload;

        /// Greedily forwards to the destination when it is in range.
        struct Direct;
        impl Protocol for Direct {
            type Packet = crate::ids::MessageInfo;
            fn on_message_created(
                &mut self,
                ctx: &mut Ctx<'_, Self::Packet>,
                info: crate::ids::MessageInfo,
            ) {
                if ctx.true_pos(info.dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
                    let _ = ctx.send(info.dst, info, info.size, PacketKind::Data);
                }
            }
            fn on_packet(
                &mut self,
                ctx: &mut Ctx<'_, Self::Packet>,
                _from: NodeId,
                pkt: Self::Packet,
            ) {
                if pkt.dst == ctx.me() {
                    ctx.deliver(pkt.id, 1);
                }
            }
        }

        let cfg = SimConfig::paper(200.0, 3).with_duration(60.0);
        let run_fn = |c: SimConfig| {
            let wl = Workload::paper_style(c.n_nodes, 10, 1000);
            Simulation::new(c, wl, |_, _| Direct).run()
        };
        let par = MultiRun::execute_with_threads(&cfg, 4, 4, run_fn);
        let ser = MultiRun::execute_serial(&cfg, 4, run_fn);
        for (p, s) in par.runs().iter().zip(ser.runs()) {
            assert_eq!(p, s, "parallel run diverged from serial");
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let cfg = SimConfig::paper(100.0, 0);
        MultiRun::execute(&cfg, 0, |_| RunStats::new(2));
    }
}
