//! Multi-run experiment harness.
//!
//! Every number in the paper is a mean over 10 runs with distinct
//! topologies and movement patterns, reported with a 90 % confidence
//! interval. [`MultiRun`] drives that: it re-seeds the configuration for
//! each run, collects [`RunStats`], and summarises any metric across runs.

use crate::config::SimConfig;
use crate::stats::{summarize, RunStats, Summary};

/// Results of repeating one experiment across several seeds.
#[derive(Debug, Clone)]
pub struct MultiRun {
    runs: Vec<RunStats>,
}

impl MultiRun {
    /// Executes `runs` simulations, seeding run `i` with `base_seed + i`,
    /// and collects their statistics. `run_fn` receives the per-run
    /// configuration and must return that run's [`RunStats`] (typically by
    /// constructing a `Simulation` and calling `run()`).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn execute(
        config: &SimConfig,
        runs: usize,
        mut run_fn: impl FnMut(SimConfig) -> RunStats,
    ) -> Self {
        assert!(runs > 0, "need at least one run");
        let collected = (0..runs)
            .map(|i| run_fn(config.clone().with_seed(config.seed + i as u64)))
            .collect();
        MultiRun { runs: collected }
    }

    /// Wraps already-collected run statistics.
    pub fn from_runs(runs: Vec<RunStats>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        MultiRun { runs }
    }

    /// The individual run statistics.
    pub fn runs(&self) -> &[RunStats] {
        &self.runs
    }

    /// Summarises an arbitrary per-run metric.
    pub fn metric(&self, f: impl Fn(&RunStats) -> f64) -> Summary {
        let xs: Vec<f64> = self.runs.iter().map(f).collect();
        summarize(&xs)
    }

    /// Delivery ratio across runs.
    pub fn delivery_ratio(&self) -> Summary {
        self.metric(|r| r.delivery_ratio())
    }

    /// Mean latency across runs (runs with no deliveries contribute the
    /// full simulated duration as a pessimistic bound — they would
    /// otherwise silently vanish from the average).
    pub fn avg_latency(&self, undelivered_penalty: f64) -> Summary {
        self.metric(|r| r.avg_latency().unwrap_or(undelivered_penalty))
    }

    /// Mean hop count across runs (0 when nothing was delivered).
    pub fn avg_hops(&self) -> Summary {
        self.metric(|r| r.avg_hops().unwrap_or(0.0))
    }

    /// Max peak storage across runs.
    pub fn max_peak_storage(&self) -> Summary {
        self.metric(|r| r.max_peak_storage() as f64)
    }

    /// Average peak storage across runs.
    pub fn avg_peak_storage(&self) -> Summary {
        self.metric(|r| r.avg_peak_storage())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::stats::RunStats;
    use crate::time::SimTime;

    fn fake_run(delivered: usize, total: usize) -> RunStats {
        let mut s = RunStats::new(4);
        for i in 0..total {
            let id = crate::ids::MessageId {
                src: NodeId(0),
                seq: i as u32,
            };
            s.register_message(id, NodeId(0), NodeId(1), SimTime::ZERO);
            if i < delivered {
                s.record_delivery(id, SimTime::from_secs(10.0 + i as f64), 2);
            }
        }
        s
    }

    #[test]
    fn metric_aggregation() {
        let mr = MultiRun::from_runs(vec![fake_run(8, 10), fake_run(10, 10), fake_run(9, 10)]);
        let dr = mr.delivery_ratio();
        assert!((dr.mean - 0.9).abs() < 1e-12);
        assert!(dr.ci90 > 0.0);
        assert_eq!(dr.n, 3);
        let hops = mr.avg_hops();
        assert_eq!(hops.mean, 2.0);
    }

    #[test]
    fn latency_penalty_for_empty_runs() {
        let mr = MultiRun::from_runs(vec![fake_run(0, 5), fake_run(5, 5)]);
        let lat = mr.avg_latency(1000.0);
        assert!(lat.mean > 100.0, "penalty must dominate: {}", lat.mean);
    }

    #[test]
    fn execute_reseeds() {
        let cfg = SimConfig::paper(100.0, 10);
        let mut seeds = Vec::new();
        let mr = MultiRun::execute(&cfg, 3, |c| {
            seeds.push(c.seed);
            RunStats::new(2)
        });
        assert_eq!(seeds, vec![10, 11, 12]);
        assert_eq!(mr.runs().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let cfg = SimConfig::paper(100.0, 0);
        MultiRun::execute(&cfg, 0, |_| RunStats::new(2));
    }
}
