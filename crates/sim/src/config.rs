//! Simulation configuration.

use crate::neighbors::TableBackend;
use crate::pool::ThreadBudget;
use crate::space::IndexBackend;
use glr_mobility::Region;

/// How the engine executes one run.
///
/// Mirrors the backend-pair pattern of [`IndexBackend`] and
/// [`TableBackend`]: [`EngineKind::Serial`] is the reference
/// implementation, [`EngineKind::Parallel`] fans the read-only part of
/// wide same-tick work (a beacon's per-receiver reception) across a
/// persistent [`crate::WorkerPool`] — parked workers, spawned lazily on
/// the first wide event, sized by the run's [`ThreadBudget`] — and
/// commits effects in the exact sequential order, producing
/// **bit-identical** [`crate::RunStats`] for any thread count (asserted
/// by `tests/engine_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// One thread processes every event in order. The reference.
    #[default]
    Serial,
    /// Per-receiver reception work of wide events is chunked across this
    /// many worker threads; effects are committed in sequential order.
    /// Results are independent of the thread count.
    Parallel(usize),
}

impl EngineKind {
    /// Worker threads this engine uses (1 for [`EngineKind::Serial`]).
    pub fn threads(&self) -> usize {
        match self {
            EngineKind::Serial => 1,
            EngineKind::Parallel(k) => *k,
        }
    }

    /// A short stable name (`"serial"` / `"parallel"`) for labels.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Serial => "serial",
            EngineKind::Parallel(_) => "parallel",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Serial => f.write_str("serial"),
            EngineKind::Parallel(k) => write!(f, "parallel({k})"),
        }
    }
}

/// Full configuration of a simulation run.
///
/// Defaults ([`SimConfig::paper`]) reproduce Table 1 of the paper:
/// 50 nodes, 1500 m x 300 m, 0–20 m/s random waypoint with zero pause,
/// 1 Mbps, link-layer queue of 150 packets, 1000-byte payloads, 3800 s.
///
/// # Examples
///
/// ```
/// use glr_sim::SimConfig;
///
/// let cfg = SimConfig::paper(100.0, 1);
/// assert_eq!(cfg.n_nodes, 50);
/// assert_eq!(cfg.radio_range, 100.0);
/// let quick = SimConfig::paper(100.0, 1).with_duration(600.0);
/// assert_eq!(quick.sim_duration, 600.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of mobile nodes (paper: 50).
    pub n_nodes: usize,
    /// Deployment region (paper: 1500 m x 300 m).
    pub region: Region,
    /// Radio transmission range in metres (paper sweeps 50–250 m).
    pub radio_range: f64,
    /// Link data rate in bits/second (paper: 1 Mbps).
    pub data_rate_bps: f64,
    /// Link-layer transmit queue capacity in packets (paper: 150).
    pub queue_limit: usize,
    /// Simulated duration in seconds (paper: 1200 or 3800).
    pub sim_duration: f64,
    /// Node speed range in m/s, uniform (paper: 0–20).
    pub speed_range: (f64, f64),
    /// Random-waypoint pause time in seconds (paper: 0).
    pub pause_time: f64,
    /// Interval between neighbour-sensing beacons (IMEP substitute).
    pub beacon_interval: f64,
    /// Neighbour table entries older than this are considered gone.
    pub neighbor_ttl: f64,
    /// MAC contention slot: per-competitor medium-access delay in seconds.
    pub mac_slot: f64,
    /// Fixed per-frame MAC/PHY overhead in bits (preamble, headers, ACK).
    pub mac_overhead_bits: f64,
    /// Per-concurrent-transmitter collision probability near the receiver;
    /// a frame with `k` interferers is lost with `1 - (1-p)^k`.
    pub collision_prob: f64,
    /// Link-layer retransmission attempts after a failed frame (802.11-style
    /// ARQ with exponential backoff); contention shows up mostly as delay,
    /// as in the paper, rather than silent loss.
    pub mac_retries: u32,
    /// Per-node storage limit in messages; `None` = unlimited. Enforced by
    /// the protocols (Figure 7 sweeps this).
    pub storage_limit: Option<usize>,
    /// Interval between storage-occupancy samples for the statistics.
    pub stats_interval: f64,
    /// Spatial index backing the engine's proximity queries. Both
    /// backends return identical results (and identical [`crate::RunStats`]
    /// for a fixed seed); [`IndexBackend::Grid`] is asymptotically faster
    /// and the default, [`IndexBackend::LinearScan`] is the reference
    /// implementation.
    pub neighbor_index: IndexBackend,
    /// Data structure backing the IMEP neighbour tables. Both backends
    /// are observably identical (bit-identical [`crate::RunStats`] for a
    /// fixed seed); [`TableBackend::Shared`] interns beacon snapshots and
    /// merges incrementally — O(1) per beacon reception — and is the
    /// default, [`TableBackend::CloneMerge`] is the clone-and-merge
    /// reference implementation.
    pub neighbor_tables: TableBackend,
    /// Engine execution mode. [`EngineKind::Serial`] (the default,
    /// reference implementation) and [`EngineKind::Parallel`] produce
    /// bit-identical [`crate::RunStats`] for any thread count.
    pub engine: EngineKind,
    /// Minimum receivers a beacon needs before [`EngineKind::Parallel`]
    /// fans its reception across workers; narrower events stay on the
    /// serial path (thread dispatch would cost more than the work).
    /// Results are independent of this value — it is purely a
    /// performance knob (and the lever equivalence tests use to force
    /// the parallel path at small scale).
    pub parallel_grain: usize,
    /// Thread budget the engine's worker pool draws from. The default
    /// ([`ThreadBudget::unlimited`]) grants [`EngineKind::Parallel`]
    /// exactly the threads it asks for; a run spawned inside a
    /// [`crate::Sweep`] shares one ledger with the sweep's outer
    /// workers, so outer × inner parallelism never oversubscribes the
    /// budget. Purely a scheduling knob: results are bit-identical for
    /// any budget.
    pub thread_budget: ThreadBudget,
    /// RNG seed; runs with equal configuration and seed are identical.
    pub seed: u64,
}

impl SimConfig {
    /// Table 1 configuration at the given radio range and seed.
    pub fn paper(radio_range: f64, seed: u64) -> Self {
        SimConfig {
            n_nodes: 50,
            region: Region::PAPER_STRIP,
            radio_range,
            data_rate_bps: 1.0e6,
            queue_limit: 150,
            sim_duration: 3800.0,
            speed_range: (0.0, 20.0),
            pause_time: 0.0,
            beacon_interval: 1.0,
            neighbor_ttl: 2.5,
            mac_slot: 0.002,
            mac_overhead_bits: 400.0,
            collision_prob: 0.08,
            mac_retries: 6,
            storage_limit: None,
            stats_interval: 1.0,
            neighbor_index: IndexBackend::Grid,
            neighbor_tables: TableBackend::Shared,
            engine: EngineKind::Serial,
            parallel_grain: 512,
            thread_budget: ThreadBudget::unlimited(),
            seed,
        }
    }

    /// Table 1 configuration scaled to `n` nodes at the paper's node
    /// density: the deployment region grows with `√n`, so per-node
    /// neighbourhood sizes (and the paper's contention regime) are
    /// preserved while the deployment scales to 10k+ nodes.
    pub fn paper_scaled(n_nodes: usize, radio_range: f64, seed: u64) -> Self {
        let scale = (n_nodes as f64 / 50.0).sqrt();
        SimConfig::paper(radio_range, seed)
            .with_nodes(n_nodes)
            .with_region(Region::new(1500.0 * scale, 300.0 * scale))
    }

    /// Returns the config with a different duration.
    pub fn with_duration(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "duration must be positive");
        self.sim_duration = secs;
        self
    }

    /// Returns the config with a per-node storage limit (messages).
    pub fn with_storage_limit(mut self, limit: usize) -> Self {
        self.storage_limit = Some(limit);
        self
    }

    /// Returns the config with a different node count.
    pub fn with_nodes(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two nodes");
        self.n_nodes = n;
        self
    }

    /// Returns the config with a different deployment region.
    pub fn with_region(mut self, region: Region) -> Self {
        self.region = region;
        self
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different spatial-index backend.
    pub fn with_neighbor_index(mut self, backend: IndexBackend) -> Self {
        self.neighbor_index = backend;
        self
    }

    /// Returns the config with a different neighbour-table backend.
    pub fn with_neighbor_tables(mut self, backend: TableBackend) -> Self {
        self.neighbor_tables = backend;
        self
    }

    /// Returns the config with a different engine execution mode.
    /// [`EngineKind::Serial`] and [`EngineKind::Parallel`] are
    /// bit-identical for any thread count.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the config with a different parallel fan-out grain (the
    /// minimum per-event receiver count before [`EngineKind::Parallel`]
    /// spawns workers). Purely a performance knob; results are
    /// independent of it.
    pub fn with_parallel_grain(mut self, grain: usize) -> Self {
        self.parallel_grain = grain;
        self
    }

    /// Returns the config drawing its engine threads from `budget` — a
    /// cloneable ledger shared with everything else holding the same
    /// budget (typically a [`crate::Sweep`]'s outer workers). Purely a
    /// scheduling knob; results are bit-identical for any budget.
    pub fn with_thread_budget(mut self, budget: ThreadBudget) -> Self {
        self.thread_budget = budget;
        self
    }

    /// Transmission time of a frame of `size` payload bytes, in seconds
    /// (serialisation plus fixed MAC overhead).
    pub fn tx_time(&self, size: u32) -> f64 {
        (size as f64 * 8.0 + self.mac_overhead_bits) / self.data_rate_bps
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of its legal range; called by the
    /// simulator on construction.
    pub fn validate(&self) {
        assert!(self.n_nodes >= 2, "need at least 2 nodes");
        assert!(
            self.radio_range > 0.0 && self.radio_range.is_finite(),
            "radio range must be positive"
        );
        assert!(self.data_rate_bps > 0.0, "data rate must be positive");
        assert!(self.queue_limit > 0, "queue limit must be positive");
        assert!(self.sim_duration > 0.0, "duration must be positive");
        assert!(
            self.speed_range.0 >= 0.0 && self.speed_range.0 <= self.speed_range.1,
            "invalid speed range"
        );
        assert!(self.pause_time >= 0.0, "pause must be non-negative");
        assert!(
            self.beacon_interval > 0.0,
            "beacon interval must be positive"
        );
        assert!(
            self.neighbor_ttl >= self.beacon_interval,
            "ttl must cover a beacon interval"
        );
        assert!(self.mac_slot >= 0.0 && self.mac_overhead_bits >= 0.0);
        assert!(
            self.engine.threads() >= 1,
            "parallel engine needs at least one worker thread"
        );
        assert!(
            self.parallel_grain >= 1,
            "parallel grain must be at least 1"
        );
        assert!(
            (0.0..1.0).contains(&self.collision_prob),
            "collision prob in [0,1)"
        );
        assert!(self.stats_interval > 0.0, "stats interval must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = SimConfig::paper(250.0, 0);
        assert_eq!(c.n_nodes, 50);
        assert_eq!(c.region.width(), 1500.0);
        assert_eq!(c.region.height(), 300.0);
        assert_eq!(c.data_rate_bps, 1.0e6);
        assert_eq!(c.queue_limit, 150);
        assert_eq!(c.speed_range, (0.0, 20.0));
        assert_eq!(c.pause_time, 0.0);
        assert_eq!(c.sim_duration, 3800.0);
        c.validate();
    }

    #[test]
    fn tx_time_scales_with_size() {
        let c = SimConfig::paper(100.0, 0);
        let t1000 = c.tx_time(1000);
        // 8000 bits + 400 overhead at 1 Mbps = 8.4 ms.
        assert!((t1000 - 0.0084).abs() < 1e-12);
        assert!(c.tx_time(2000) > t1000);
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::paper(50.0, 7)
            .with_duration(1200.0)
            .with_storage_limit(100)
            .with_seed(9);
        assert_eq!(c.sim_duration, 1200.0);
        assert_eq!(c.storage_limit, Some(100));
        assert_eq!(c.seed, 9);
        c.validate();
    }

    #[test]
    fn paper_scaled_preserves_density() {
        let base = SimConfig::paper(100.0, 0);
        let big = SimConfig::paper_scaled(5000, 100.0, 0);
        big.validate();
        assert_eq!(big.n_nodes, 5000);
        let d0 = base.n_nodes as f64 / (base.region.width() * base.region.height());
        let d1 = big.n_nodes as f64 / (big.region.width() * big.region.height());
        assert!((d0 - d1).abs() < 1e-12);
        // The strip's 5:1 aspect ratio is preserved.
        assert!((big.region.width() / big.region.height() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn invalid_radio_range_rejected() {
        let mut c = SimConfig::paper(100.0, 0);
        c.radio_range = -1.0;
        c.validate();
    }
}
