//! IMEP-style neighbour sensing: the per-node 1-hop and 2-hop tables
//! built from periodic beacons and overheard frames.
//!
//! Beacons carry the sender's position and a snapshot of its fresh 1-hop
//! table; receivers merge both with freshest-wins semantics and expire
//! entries after `config.neighbor_ttl` seconds. Protocol views are
//! therefore *stale by design*, exactly as in the paper: positions are
//! as of each neighbour's last beacon, and departures are only noticed
//! when the TTL lapses.

use crate::ids::NodeId;
use crate::time::SimTime;
use glr_geometry::Point2;
use std::collections::HashMap;

/// A neighbour-table entry: where a node was when we last heard it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// The neighbour.
    pub id: NodeId,
    /// Its position at the time of the beacon that created this entry.
    pub pos: Point2,
    /// When the information was obtained.
    pub heard_at: SimTime,
}

/// All nodes' 1-hop and 2-hop neighbour tables.
#[derive(Debug)]
pub(crate) struct NeighborTables {
    one_hop: Vec<Vec<NeighborEntry>>,
    two_hop: Vec<Vec<NeighborEntry>>,
    /// Entries older than this many seconds are considered gone.
    ttl: f64,
}

impl NeighborTables {
    pub(crate) fn new(n_nodes: usize, ttl: f64) -> Self {
        NeighborTables {
            one_hop: vec![Vec::new(); n_nodes],
            two_hop: vec![Vec::new(); n_nodes],
            ttl,
        }
    }

    fn horizon(&self, now: SimTime) -> f64 {
        now.as_secs() - self.ttl
    }

    fn upsert(table: &mut Vec<NeighborEntry>, entry: NeighborEntry) {
        match table.iter_mut().find(|e| e.id == entry.id) {
            Some(e) => {
                if entry.heard_at >= e.heard_at {
                    *e = entry;
                }
            }
            None => table.push(entry),
        }
    }

    /// Fresh (non-expired) one-hop entries for `u` at `now`, in table
    /// order.
    pub(crate) fn fresh_one_hop(&self, u: NodeId, now: SimTime) -> Vec<NeighborEntry> {
        let horizon = self.horizon(now);
        self.one_hop[u.index()]
            .iter()
            .filter(|e| e.heard_at.as_secs() >= horizon)
            .copied()
            .collect()
    }

    /// Fresh merged 1- and 2-hop entries for `u` — the "distance two
    /// neighbourhood information" the paper's nodes collect to build the
    /// LDTG. Excludes `u` itself; the freshest entry per id wins; sorted
    /// by id.
    pub(crate) fn fresh_view(&self, u: NodeId, now: SimTime) -> Vec<NeighborEntry> {
        let horizon = self.horizon(now);
        let mut best: HashMap<NodeId, NeighborEntry> = Default::default();
        for e in self.one_hop[u.index()]
            .iter()
            .chain(self.two_hop[u.index()].iter())
        {
            if e.heard_at.as_secs() < horizon || e.id == u {
                continue;
            }
            match best.get(&e.id) {
                Some(cur) if cur.heard_at >= e.heard_at => {}
                _ => {
                    best.insert(e.id, *e);
                }
            }
        }
        let mut out: Vec<NeighborEntry> = best.into_values().collect();
        out.sort_by_key(|e| e.id);
        out
    }

    /// Records that `receiver` heard `sender`'s beacon carrying
    /// `snapshot` (the sender's fresh 1-hop table). Merges the sender
    /// into the receiver's 1-hop table, the snapshot into its 2-hop
    /// table, and garbage-collects expired entries. Returns whether the
    /// sender was already a *fresh* 1-hop neighbour before the beacon
    /// (`false` means this is a new radio contact).
    pub(crate) fn record_beacon(
        &mut self,
        receiver: NodeId,
        sender: NeighborEntry,
        snapshot: &[NeighborEntry],
        now: SimTime,
    ) -> bool {
        let horizon = self.horizon(now);
        let vi = receiver.index();
        let was_fresh = self.one_hop[vi]
            .iter()
            .any(|e| e.id == sender.id && e.heard_at.as_secs() >= horizon);
        Self::upsert(&mut self.one_hop[vi], sender);
        for e in snapshot {
            if e.id != receiver {
                Self::upsert(&mut self.two_hop[vi], *e);
            }
        }
        // Garbage-collect expired entries occasionally to bound memory.
        self.one_hop[vi].retain(|e| e.heard_at.as_secs() >= horizon);
        self.two_hop[vi].retain(|e| e.heard_at.as_secs() >= horizon);
        was_fresh
    }

    /// Records that `receiver` heard a (data or control) frame from the
    /// node described by `entry`: hearing any frame refreshes the
    /// receiver's 1-hop entry for the sender — data exchange doubles as
    /// location exchange, as in the paper's IMEP adaptation.
    pub(crate) fn heard_frame(&mut self, receiver: NodeId, entry: NeighborEntry) {
        Self::upsert(&mut self.one_hop[receiver.index()], entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, at: f64) -> NeighborEntry {
        NeighborEntry {
            id: NodeId(id),
            pos: Point2::new(id as f64, 0.0),
            heard_at: SimTime::from_secs(at),
        }
    }

    #[test]
    fn beacons_fill_tables_and_expire() {
        let mut t = NeighborTables::new(3, 2.5);
        let now = SimTime::from_secs(10.0);
        let fresh = t.record_beacon(NodeId(1), entry(0, 10.0), &[entry(2, 9.5)], now);
        assert!(!fresh, "first contact must not be fresh");
        assert_eq!(t.fresh_one_hop(NodeId(1), now).len(), 1);
        assert_eq!(t.fresh_view(NodeId(1), now).len(), 2);
        // Second beacon inside the TTL: already fresh.
        let now2 = SimTime::from_secs(11.0);
        assert!(t.record_beacon(NodeId(1), entry(0, 11.0), &[], now2));
        // Long silence: entries expire.
        let later = SimTime::from_secs(20.0);
        assert!(t.fresh_one_hop(NodeId(1), later).is_empty());
        assert!(!t.record_beacon(NodeId(1), entry(0, 20.0), &[], later));
    }

    #[test]
    fn fresh_view_dedups_freshest_wins() {
        let mut t = NeighborTables::new(3, 100.0);
        let now = SimTime::from_secs(10.0);
        // Node 2 known both directly (older) and via the snapshot (newer).
        t.record_beacon(NodeId(0), entry(2, 5.0), &[], now);
        t.record_beacon(NodeId(0), entry(1, 9.0), &[entry(2, 8.0)], now);
        let view = t.fresh_view(NodeId(0), now);
        assert_eq!(view.len(), 2);
        let e2 = view.iter().find(|e| e.id == NodeId(2)).unwrap();
        assert_eq!(e2.heard_at, SimTime::from_secs(8.0));
    }

    #[test]
    fn snapshot_skips_the_receiver_itself() {
        let mut t = NeighborTables::new(2, 100.0);
        let now = SimTime::from_secs(1.0);
        t.record_beacon(NodeId(1), entry(0, 1.0), &[entry(1, 0.5)], now);
        assert!(t
            .fresh_view(NodeId(1), now)
            .iter()
            .all(|e| e.id != NodeId(1)));
    }

    #[test]
    fn heard_frame_refreshes_without_gc() {
        let mut t = NeighborTables::new(2, 2.5);
        t.heard_frame(NodeId(1), entry(0, 1.0));
        t.heard_frame(NodeId(1), entry(0, 2.0));
        let got = t.fresh_one_hop(NodeId(1), SimTime::from_secs(2.0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].heard_at, SimTime::from_secs(2.0));
        // Stale upsert does not regress the entry.
        t.heard_frame(NodeId(1), entry(0, 1.5));
        let got = t.fresh_one_hop(NodeId(1), SimTime::from_secs(2.0));
        assert_eq!(got[0].heard_at, SimTime::from_secs(2.0));
    }
}
