//! IMEP-style neighbour sensing: the per-node 1-hop and 2-hop tables
//! built from periodic beacons and overheard frames.
//!
//! Beacons carry the sender's position and a snapshot of its fresh 1-hop
//! table; receivers merge both with freshest-wins semantics and expire
//! entries after `config.neighbor_ttl` seconds. Protocol views are
//! therefore *stale by design*, exactly as in the paper: positions are
//! as of each neighbour's last beacon, and departures are only noticed
//! when the TTL lapses.
//!
//! # Backends
//!
//! Two implementations sit behind [`NeighborTables`], selected by
//! [`TableBackend`] (mirroring the [`crate::SpatialIndex`] grid /
//! linear-scan pair):
//!
//! * [`TableBackend::Shared`] (the default) is built for 10k+-node
//!   deployments. A beacon's 1-hop snapshot is materialised **once** per
//!   beacon event behind an `Arc` ([`BeaconSnapshot`]) and shared by
//!   every receiver; [`NeighborTables::record_beacon`] stores the `Arc`
//!   keyed by sender — amortised O(1) per reception — instead of merging
//!   the snapshot entry-by-entry into a linearly-scanned 2-hop `Vec`.
//!   1-hop upserts go through a hash index, expiry is swept lazily
//!   (amortised, never a per-beacon full-table rebuild), and the
//!   protocol-facing views ([`NeighborsView`]) are `Arc`-backed and
//!   cached per `(node, time, generation)`, so repeated
//!   [`crate::Ctx::neighbors`] / [`crate::Ctx::local_view`] calls within
//!   one event are allocation-free.
//! * [`TableBackend::CloneMerge`] is the original clone-and-merge
//!   implementation, kept as the behavioural reference the shared
//!   backend is validated against (`tests/table_equivalence.rs`).
//!
//! Both backends are **observably identical**: for any fixed seed a full
//! simulation produces bit-identical [`crate::RunStats`] under either.
//! The equivalence hinges on two invariants the engine maintains:
//!
//! 1. *Deterministic entries*: every entry recorded for node `x` with
//!    `heard_at = t` carries `x`'s true position at `t`, so freshest-wins
//!    ties can never disagree on the winning value.
//! 2. *Monotone snapshots*: an id missing from a sender's newer beacon
//!    snapshot was expired from the sender's table, hence (same TTL) is
//!    expired for every receiver too — so keeping only the latest
//!    snapshot per sender loses nothing a fresh query could see.

use crate::ids::NodeId;
use crate::pool::{Task, WorkerPool};
use crate::time::SimTime;
use glr_geometry::Point2;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

/// Multiply-xorshift hasher for [`NodeId`] keys on the beacon hot path.
///
/// Node ids are small dense integers from a trusted source, so SipHash's
/// DoS resistance buys nothing here and costs most of a
/// `record_beacon`'s budget. Iteration order of the maps this backs is
/// never observable (outputs are sorted or keyed), so the hasher choice
/// cannot affect results.
#[derive(Debug, Default, Clone, Copy)]
struct NodeIdHasher(u64);

impl Hasher for NodeIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, v: u32) {
        let h = u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct BuildNodeIdHasher;

impl BuildHasher for BuildNodeIdHasher {
    type Hasher = NodeIdHasher;
    fn build_hasher(&self) -> NodeIdHasher {
        NodeIdHasher(0)
    }
}

/// A `NodeId`-keyed hash map with the cheap hasher above.
type NodeMap<V> = HashMap<NodeId, V, BuildNodeIdHasher>;

/// A neighbour-table entry: where a node was when we last heard it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// The neighbour.
    pub id: NodeId,
    /// Its position at the time of the beacon that created this entry.
    pub pos: Point2,
    /// When the information was obtained.
    pub heard_at: SimTime,
}

/// Which data structure backs the neighbour tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableBackend {
    /// `Arc`-interned beacon snapshots, hash-indexed 1-hop tables,
    /// amortised staleness sweeping — O(1) per beacon reception. The
    /// default.
    #[default]
    Shared,
    /// The original clone-and-merge tables: every reception deep-merges
    /// the snapshot into `Vec`-scanned 1-/2-hop tables. Kept as the
    /// reference implementation the shared backend is validated against.
    CloneMerge,
}

impl TableBackend {
    /// A short stable name (`"shared"` / `"clone-merge"`) for labels.
    pub fn name(&self) -> &'static str {
        match self {
            TableBackend::Shared => "shared",
            TableBackend::CloneMerge => "clone-merge",
        }
    }
}

/// A cheap, immutable, shareable view of neighbour entries.
///
/// Dereferences to `[NeighborEntry]` and iterates by value like the
/// `Vec<NeighborEntry>` it replaced, but cloning is an `Arc` bump: the
/// shared backend hands the same allocation to every caller asking for
/// the same node's view at the same time.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborsView {
    entries: Arc<[NeighborEntry]>,
}

impl NeighborsView {
    /// Iterates the entries by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, NeighborEntry> {
        self.entries.iter()
    }
}

impl From<Vec<NeighborEntry>> for NeighborsView {
    fn from(v: Vec<NeighborEntry>) -> Self {
        NeighborsView { entries: v.into() }
    }
}

impl std::ops::Deref for NeighborsView {
    type Target = [NeighborEntry];
    fn deref(&self) -> &[NeighborEntry] {
        &self.entries
    }
}

/// Owning iterator over a [`NeighborsView`]; yields entries by value,
/// exactly like iterating an owned `Vec<NeighborEntry>`.
#[derive(Debug)]
pub struct NeighborsIter {
    entries: Arc<[NeighborEntry]>,
    at: usize,
}

impl Iterator for NeighborsIter {
    type Item = NeighborEntry;

    fn next(&mut self) -> Option<NeighborEntry> {
        let e = self.entries.get(self.at).copied();
        self.at += 1;
        e
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.entries.len().saturating_sub(self.at);
        (n, Some(n))
    }
}

impl IntoIterator for NeighborsView {
    type Item = NeighborEntry;
    type IntoIter = NeighborsIter;
    fn into_iter(self) -> NeighborsIter {
        NeighborsIter {
            entries: self.entries,
            at: 0,
        }
    }
}

impl<'a> IntoIterator for &'a NeighborsView {
    type Item = &'a NeighborEntry;
    type IntoIter = std::slice::Iter<'a, NeighborEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// One beacon's payload: the sender's fresh 1-hop table, materialised
/// once per beacon event and shared (`Arc`) by every receiver.
///
/// Deliberately thin — two words, a fat `Arc` pointer. Every receiver
/// of a beacon stores a copy inside its [`NodeTable`]'s peer map, so
/// each byte here is a byte per `(node, peer)` pair at 100k nodes; the
/// freshest-entry timestamp the old layout cached inline is recomputed
/// during the (amortised) sweeps that need it instead.
#[derive(Debug, Clone)]
pub struct BeaconSnapshot {
    entries: Arc<[NeighborEntry]>,
}

impl BeaconSnapshot {
    fn new(entries: Arc<[NeighborEntry]>) -> Self {
        BeaconSnapshot { entries }
    }

    /// Whether every entry is older than `horizon` (vacuously true when
    /// empty) — i.e. no fresh query can see anything in this snapshot.
    fn expired(&self, horizon: f64) -> bool {
        self.entries.iter().all(|e| e.heard_at.as_secs() < horizon)
    }

    /// Builds a snapshot from explicit entries (tests and benches; the
    /// engine obtains snapshots from [`NeighborTables::beacon_snapshot`]).
    pub fn from_entries(entries: &[NeighborEntry]) -> Self {
        BeaconSnapshot::new(entries.into())
    }

    /// The snapshot's entries.
    pub fn entries(&self) -> &[NeighborEntry] {
        &self.entries
    }
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

/// All nodes' 1-hop and 2-hop neighbour tables, behind a selectable
/// [`TableBackend`].
///
/// # Examples
///
/// ```
/// use glr_sim::{BeaconSnapshot, NeighborEntry, NeighborTables, NodeId, SimTime, TableBackend};
/// use glr_geometry::Point2;
///
/// let mut t = NeighborTables::new(3, 2.5, TableBackend::Shared);
/// let now = SimTime::from_secs(1.0);
/// let sender = NeighborEntry { id: NodeId(0), pos: Point2::new(0.0, 0.0), heard_at: now };
/// let snap = BeaconSnapshot::from_entries(&[]);
/// t.record_beacon(NodeId(1), sender, &snap, now);
/// assert_eq!(t.fresh_one_hop(NodeId(1), now).len(), 1);
/// ```
#[derive(Debug)]
pub struct NeighborTables {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Shared(SharedTables),
    CloneMerge(CloneTables),
}

impl NeighborTables {
    /// Creates empty tables for `n_nodes` nodes with the given entry TTL
    /// (seconds) over the chosen backend.
    pub fn new(n_nodes: usize, ttl: f64, backend: TableBackend) -> Self {
        let backend = match backend {
            TableBackend::Shared => Backend::Shared(SharedTables::new(n_nodes, ttl)),
            TableBackend::CloneMerge => Backend::CloneMerge(CloneTables::new(n_nodes, ttl)),
        };
        NeighborTables { backend }
    }

    /// The beacon payload for `u` at `now`: its fresh 1-hop table,
    /// materialised once and shared by all receivers of the beacon.
    pub fn beacon_snapshot(&mut self, u: NodeId, now: SimTime) -> BeaconSnapshot {
        match &mut self.backend {
            Backend::Shared(t) => t.snapshot(u, now),
            Backend::CloneMerge(t) => BeaconSnapshot::new(t.fresh_one_hop(u, now).into()),
        }
    }

    /// Fresh (non-expired) one-hop entries for `u` at `now`, in table
    /// order.
    pub fn fresh_one_hop(&mut self, u: NodeId, now: SimTime) -> NeighborsView {
        match &mut self.backend {
            Backend::Shared(t) => NeighborsView {
                entries: t.snapshot(u, now).entries,
            },
            Backend::CloneMerge(t) => t.fresh_one_hop(u, now).into(),
        }
    }

    /// Fresh merged 1- and 2-hop entries for `u` — the "distance two
    /// neighbourhood information" the paper's nodes collect to build the
    /// LDTG. Excludes `u` itself; the freshest entry per id wins; sorted
    /// by id.
    pub fn fresh_view(&mut self, u: NodeId, now: SimTime) -> NeighborsView {
        match &mut self.backend {
            Backend::Shared(t) => t.fresh_view(u, now),
            Backend::CloneMerge(t) => t.fresh_view(u, now).into(),
        }
    }

    /// Records that `receiver` heard `sender`'s beacon carrying
    /// `snapshot` (the sender's fresh 1-hop table). Merges the sender
    /// into the receiver's 1-hop table and the snapshot into its 2-hop
    /// knowledge, and expires old entries. Returns whether the sender
    /// was already a *fresh* 1-hop neighbour before the beacon (`false`
    /// means this is a new radio contact).
    ///
    /// Entries handed to the tables must be *deterministic*: two entries
    /// for the same `(id, heard_at)` must be identical (the engine
    /// guarantees this — an entry always carries the node's true
    /// position at `heard_at`). The backends may otherwise disagree on
    /// freshest-wins ties.
    pub fn record_beacon(
        &mut self,
        receiver: NodeId,
        sender: NeighborEntry,
        snapshot: &BeaconSnapshot,
        now: SimTime,
    ) -> bool {
        match &mut self.backend {
            Backend::Shared(t) => t.record_beacon(receiver, sender, snapshot, now),
            Backend::CloneMerge(t) => t.record_beacon(receiver, sender, snapshot.entries(), now),
        }
    }

    /// [`NeighborTables::record_beacon`] for a whole receiver set at
    /// once, with the per-receiver merges fanned across the worker
    /// [`pool`](WorkerPool) in fixed chunks — the compute phase of the
    /// engine's deterministic parallel reception. A `pool` of `None`
    /// (or of one thread) runs the ascending sequential loop — the
    /// serial reference path.
    ///
    /// `receivers` must be strictly ascending (the order
    /// [`crate::World::nodes_within`] returns). `was_fresh` is cleared
    /// and filled with one flag per receiver, exactly the values a
    /// sequential `record_beacon` loop would have returned.
    ///
    /// **Why this is deterministic.** Each receiver's merge touches only
    /// that receiver's table (disjoint `&mut` access, enforced by the
    /// type system via slice splitting), draws no randomness, and
    /// touches no statistics; merges of distinct receivers therefore
    /// commute, and running them concurrently is observably identical to
    /// the ascending-order sequential loop. The engine keeps everything
    /// order-sensitive — protocol hooks, stats, event scheduling — in
    /// its in-order commit phase.
    pub fn record_beacon_batch(
        &mut self,
        receivers: &[NodeId],
        sender: NeighborEntry,
        snapshot: &BeaconSnapshot,
        now: SimTime,
        pool: Option<&WorkerPool>,
        was_fresh: &mut Vec<bool>,
    ) {
        debug_assert!(
            receivers.windows(2).all(|w| w[0] < w[1]),
            "receivers must be strictly ascending"
        );
        was_fresh.clear();
        let workers = pool.map_or(1, WorkerPool::threads);
        if workers <= 1 || receivers.len() < 2 {
            for &v in receivers {
                was_fresh.push(self.record_beacon(v, sender, snapshot, now));
            }
            return;
        }
        let pool = pool.expect("workers > 1 implies a pool");
        was_fresh.resize(receivers.len(), false);
        let chunk = receivers.len().div_ceil(workers);
        match &mut self.backend {
            Backend::Shared(t) => {
                let horizon = now.as_secs() - t.ttl;
                let mut tables = disjoint_muts(&mut t.nodes, receivers);
                let tasks: Vec<Task<'_>> = tables
                    .chunks_mut(chunk)
                    .zip(was_fresh.chunks_mut(chunk))
                    .map(|(tc, fc)| {
                        Box::new(move || {
                            for (table, fresh) in tc.iter_mut().zip(fc.iter_mut()) {
                                *fresh = table.record_beacon(sender, snapshot, horizon);
                            }
                        }) as Task<'_>
                    })
                    .collect();
                pool.run(tasks);
            }
            Backend::CloneMerge(t) => {
                let horizon = t.horizon(now);
                let snapshot = snapshot.entries();
                let mut ones = disjoint_muts(&mut t.one_hop, receivers);
                let mut twos = disjoint_muts(&mut t.two_hop, receivers);
                let tasks: Vec<Task<'_>> = ones
                    .chunks_mut(chunk)
                    .zip(twos.chunks_mut(chunk))
                    .zip(receivers.chunks(chunk).zip(was_fresh.chunks_mut(chunk)))
                    .map(|((oc, tc), (rc, fc))| {
                        Box::new(move || {
                            for (((one, two), &receiver), fresh) in
                                oc.iter_mut().zip(tc.iter_mut()).zip(rc).zip(fc.iter_mut())
                            {
                                *fresh = CloneTables::record_beacon_at(
                                    one, two, receiver, sender, snapshot, horizon,
                                );
                            }
                        }) as Task<'_>
                    })
                    .collect();
                pool.run(tasks);
            }
        }
    }

    /// Heap footprint of the tables — the per-node protocol-state
    /// telemetry the 100k-node memory work reports (hash-map sizes are
    /// bucket-count estimates; everything else is exact capacity
    /// arithmetic).
    pub fn footprint(&self) -> TableFootprint {
        match &self.backend {
            Backend::Shared(t) => t.footprint(),
            Backend::CloneMerge(t) => t.footprint(),
        }
    }

    /// What the same live content would occupy under the PR-4 layout
    /// (fat snapshot handles, inline view caches, wide sweep counters)
    /// — the baseline the footprint telemetry reports its savings
    /// against, in the mould of
    /// [`glr_mobility::DeploymentArena::vec_equivalent_bytes`]. For the
    /// [`TableBackend::CloneMerge`] reference backend (whose layout is
    /// unchanged) this equals [`NeighborTables::footprint`]'s total.
    pub fn baseline_footprint_bytes(&self) -> usize {
        match &self.backend {
            Backend::Shared(t) => t.baseline_equivalent_bytes(),
            Backend::CloneMerge(t) => t.footprint().total_bytes(),
        }
    }

    /// Records that `receiver` heard a (data or control) frame from the
    /// node described by `entry`: hearing any frame refreshes the
    /// receiver's 1-hop entry for the sender — data exchange doubles as
    /// location exchange, as in the paper's IMEP adaptation.
    pub fn heard_frame(&mut self, receiver: NodeId, entry: NeighborEntry) {
        match &mut self.backend {
            Backend::Shared(t) => t.heard_frame(receiver, entry),
            Backend::CloneMerge(t) => t.heard_frame(receiver, entry),
        }
    }
}

/// Disjoint mutable references to `slice[ids[0]], slice[ids[1]], …` for
/// strictly ascending ids, extracted by repeated `split_at_mut` — the
/// safe-Rust form of handing each parallel reception worker its own
/// receivers' tables.
fn disjoint_muts<'a, T>(mut slice: &'a mut [T], ids: &[NodeId]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(ids.len());
    let mut base = 0usize;
    for id in ids {
        let i = id.index() - base;
        let (head, tail) = slice.split_at_mut(i + 1);
        out.push(&mut head[i]);
        base += i + 1;
        slice = tail;
    }
    out
}

// ---------------------------------------------------------------------------
// Shared backend
// ---------------------------------------------------------------------------

/// Sweep a node's table once this many mutations have accumulated (and
/// at least [`SWEEP_SLACK`] × the table's size) — classic amortisation,
/// so no single beacon reception pays for a full-table rebuild.
const MIN_SWEEP_OPS: usize = 32;

/// Mutations per table entry between physical sweeps. Sweeping is
/// unobservable (it drops only entries no fresh query can return), so
/// this trades a bounded amount of zombie/orphan memory for doing the
/// O(table) compaction — with its hash probe per entry — four times
/// less often than the steady-state beacon rate.
const SWEEP_SLACK: usize = 4;

#[derive(Debug)]
struct SharedTables {
    /// Hot per-node state: everything a beacon reception touches. Kept
    /// separate from the cold view caches (SoA split) so the dense
    /// beacon storm walks a ~45 % smaller array and reception worker
    /// chunks cover fewer cache lines.
    nodes: Vec<NodeTable>,
    /// Cold per-node state: the `(time, generation)`-keyed snapshot and
    /// view caches, touched only when a node sends a beacon or a
    /// protocol asks for its neighbourhood.
    caches: Vec<NodeCache>,
    ttl: f64,
    /// Reusable freshest-wins merge buffer for [`SharedTables::fresh_view`].
    scratch: NodeMap<NeighborEntry>,
    /// Reusable staging buffer for snapshot materialisation, so a beacon
    /// costs exactly one allocation (the shared `Arc`).
    snap_scratch: Vec<NeighborEntry>,
}

/// "This peer has no (live or zombie) slot in `order`."
const NO_SLOT: u32 = u32::MAX;

/// Everything a node knows about one peer: where its 1-hop entry sits
/// and the latest beacon snapshot heard from it. Keeping both behind
/// **one** hash lookup is what makes a beacon reception cheap — the
/// previous two-map layout (`id → slot` plus `id → snapshot`) paid two
/// hashed probes into two scattered tables per reception, and those
/// cache misses dominated the dense-regime beacon storm. The layout is
/// deliberately compact (one `u32` + one thin [`BeaconSnapshot`]):
/// peer-map entries are the dominant per-node memory term at 100k
/// nodes, one entry per `(node, peer)` pair.
#[derive(Debug)]
struct PeerState {
    /// Current slot in `order`, or [`NO_SLOT`].
    slot: u32,
    /// Latest beacon snapshot from this peer (the receiving node's 2-hop
    /// knowledge). An `Arc` clone of the sender-side materialisation.
    snap: Option<BeaconSnapshot>,
}

/// Hot per-node table state — see [`SharedTables::nodes`].
#[derive(Debug, Default)]
struct NodeTable {
    /// 1-hop entries in *revival order* (the order the reference backend
    /// keeps physically): live entries plus trailing zombies/orphans
    /// that are swept out lazily and can never surface in a fresh view.
    order: Vec<NeighborEntry>,
    /// id → slot + latest snapshot, one probe per reception.
    peers: NodeMap<PeerState>,
    /// TTL horizon (seconds) of the most recent `record_beacon` — the
    /// moment the reference backend last garbage-collected this node's
    /// tables. Entries older than this are "zombies": physically present
    /// in `order` but observably deleted.
    gc_horizon: f64,
    /// Mutations since the last physical sweep.
    ops: u32,
    /// Bumped (wrapping) on every mutation; keys the view caches. A
    /// false cache hit needs the same `(time, gen)` pair, i.e. 2^32
    /// mutations of one node's table within a single timestamp — out of
    /// reach for any run this simulator can represent.
    gen: u32,
}

/// Cold per-node cache state — see [`SharedTables::caches`].
#[derive(Debug, Default)]
struct NodeCache {
    one: Option<(SimTime, u32, BeaconSnapshot)>,
    view: Option<(SimTime, u32, NeighborsView)>,
}

impl NodeTable {
    fn new() -> Self {
        NodeTable {
            gc_horizon: f64::NEG_INFINITY,
            ..NodeTable::default()
        }
    }

    /// Freshest-wins upsert with the reference backend's placement
    /// semantics: live entries update in place (keeping their slot),
    /// zombies — entries the reference physically removed at the last
    /// beacon GC — re-append at the end like any new contact.
    fn upsert(&mut self, entry: NeighborEntry) {
        self.gen = self.gen.wrapping_add(1);
        self.ops += 1;
        let order = &mut self.order;
        let gc_horizon = self.gc_horizon;
        let st = self.peers.entry(entry.id).or_insert(PeerState {
            slot: NO_SLOT,
            snap: None,
        });
        let i = st.slot as usize;
        if st.slot != NO_SLOT && order[i].heard_at.as_secs() >= gc_horizon {
            // Live: freshest-wins in place, keeping the slot.
            if entry.heard_at >= order[i].heard_at {
                order[i] = entry;
            }
        } else {
            // Zombie or absent: (re-)append at the end; a stale slot
            // stays behind as an orphan until the next sweep (it can
            // never surface — its heard_at is below every future query
            // horizon).
            st.slot = order.len() as u32;
            order.push(entry);
        }
    }

    /// The per-receiver beacon merge: freshest-wins upsert of the
    /// sender, latest-snapshot-per-sender store, GC-horizon advance and
    /// amortised sweep — all off a single `peers` probe. Touches only
    /// this table — the property the engine's parallel reception phase
    /// relies on to fan receivers of one beacon across threads with
    /// disjoint `&mut` access.
    fn record_beacon(
        &mut self,
        sender: NeighborEntry,
        snapshot: &BeaconSnapshot,
        horizon: f64,
    ) -> bool {
        let order = &mut self.order;
        let gc_horizon = self.gc_horizon;
        let st = self.peers.entry(sender.id).or_insert(PeerState {
            slot: NO_SLOT,
            snap: None,
        });
        let i = st.slot as usize;
        let was_fresh = st.slot != NO_SLOT && order[i].heard_at.as_secs() >= horizon;
        if st.slot != NO_SLOT && order[i].heard_at.as_secs() >= gc_horizon {
            // Live: freshest-wins in place, keeping the slot.
            if sender.heard_at >= order[i].heard_at {
                order[i] = sender;
            }
        } else {
            // Zombie (observably GC'd) or absent: (re-)append at the
            // end, like the reference after its physical removal.
            st.slot = order.len() as u32;
            order.push(sender);
        }
        st.snap = Some(snapshot.clone());
        // This is the reference backend's GC moment: from here on,
        // anything older than `horizon` is observably deleted.
        self.gc_horizon = self.gc_horizon.max(horizon);
        self.gen = self.gen.wrapping_add(1);
        self.ops += 1;
        self.maybe_sweep();
        was_fresh
    }

    /// Physically removes zombies, orphans and expired snapshots once
    /// enough mutations have amortised the cost. Unobservable: it drops
    /// only entries no fresh query could return. (The expiry check
    /// scans each snapshot's entries — the price of the thin snapshot
    /// layout — but runs only here, under the same amortisation.)
    fn maybe_sweep(&mut self) {
        if (self.ops as usize) < MIN_SWEEP_OPS.max(self.order.len() * SWEEP_SLACK) {
            return;
        }
        self.ops = 0;
        let horizon = self.gc_horizon;
        let mut kept = 0;
        for i in 0..self.order.len() {
            let e = self.order[i];
            let Some(st) = self.peers.get_mut(&e.id) else {
                continue;
            };
            if st.slot != i as u32 {
                continue; // orphaned duplicate slot
            }
            if e.heard_at.as_secs() >= horizon {
                self.order[kept] = e;
                st.slot = kept as u32;
                kept += 1;
            } else {
                st.slot = NO_SLOT;
            }
        }
        self.order.truncate(kept);
        self.peers.retain(|_, st| {
            if st.snap.as_ref().is_some_and(|s| s.expired(horizon)) {
                st.snap = None;
            }
            st.slot != NO_SLOT || st.snap.is_some()
        });
    }
}

impl SharedTables {
    fn new(n_nodes: usize, ttl: f64) -> Self {
        SharedTables {
            nodes: (0..n_nodes).map(|_| NodeTable::new()).collect(),
            caches: (0..n_nodes).map(|_| NodeCache::default()).collect(),
            ttl,
            scratch: NodeMap::default(),
            snap_scratch: Vec::new(),
        }
    }

    fn snapshot(&mut self, u: NodeId, now: SimTime) -> BeaconSnapshot {
        let SharedTables {
            nodes,
            caches,
            ttl,
            snap_scratch,
            ..
        } = self;
        let t = &mut nodes[u.index()];
        let cache = &mut caches[u.index()];
        if let Some((at, gen, snap)) = &cache.one {
            if *at == now && *gen == t.gen {
                return snap.clone();
            }
        }
        let horizon = now.as_secs() - *ttl;
        snap_scratch.clear();
        snap_scratch.extend(
            t.order
                .iter()
                .filter(|e| e.heard_at.as_secs() >= horizon)
                .copied(),
        );
        let snap = BeaconSnapshot::new(Arc::from(&snap_scratch[..]));
        cache.one = Some((now, t.gen, snap.clone()));
        snap
    }

    fn fresh_view(&mut self, u: NodeId, now: SimTime) -> NeighborsView {
        let t = &mut self.nodes[u.index()];
        let cache = &mut self.caches[u.index()];
        if let Some((at, gen, view)) = &cache.view {
            if *at == now && *gen == t.gen {
                return view.clone();
            }
        }
        let horizon = now.as_secs() - self.ttl;
        let best = &mut self.scratch;
        best.clear();
        let mut merge = |e: &NeighborEntry| {
            if e.heard_at.as_secs() < horizon || e.id == u {
                return;
            }
            match best.get(&e.id) {
                Some(cur) if cur.heard_at >= e.heard_at => {}
                _ => {
                    best.insert(e.id, *e);
                }
            }
        };
        for e in &t.order {
            merge(e);
        }
        for st in t.peers.values() {
            let Some(snap) = &st.snap else { continue };
            for e in snap.entries.iter() {
                merge(e);
            }
        }
        let mut out: Vec<NeighborEntry> = best.values().copied().collect();
        out.sort_by_key(|e| e.id);
        let view = NeighborsView::from(out);
        cache.view = Some((now, t.gen, view.clone()));
        view
    }

    fn record_beacon(
        &mut self,
        receiver: NodeId,
        sender: NeighborEntry,
        snapshot: &BeaconSnapshot,
        now: SimTime,
    ) -> bool {
        let horizon = now.as_secs() - self.ttl;
        self.nodes[receiver.index()].record_beacon(sender, snapshot, horizon)
    }

    fn heard_frame(&mut self, receiver: NodeId, entry: NeighborEntry) {
        let t = &mut self.nodes[receiver.index()];
        t.upsert(entry);
        t.maybe_sweep();
    }

    fn footprint(&self) -> TableFootprint {
        let mut table_bytes = self.nodes.capacity() * std::mem::size_of::<NodeTable>()
            + self.caches.capacity() * std::mem::size_of::<NodeCache>();
        let mut snapshots: HashMap<*const NeighborEntry, usize> = HashMap::new();
        let mut note = |entries: &Arc<[NeighborEntry]>| {
            snapshots.insert(
                entries.as_ptr(),
                entries.len() * std::mem::size_of::<NeighborEntry>() + ARC_SLICE_HEADER,
            );
        };
        for t in &self.nodes {
            table_bytes += t.order.capacity() * std::mem::size_of::<NeighborEntry>()
                + map_heap_bytes(
                    t.peers.capacity(),
                    std::mem::size_of::<(NodeId, PeerState)>(),
                );
            for st in t.peers.values() {
                if let Some(snap) = &st.snap {
                    note(&snap.entries);
                }
            }
        }
        for c in &self.caches {
            if let Some((_, _, snap)) = &c.one {
                note(&snap.entries);
            }
            if let Some((_, _, view)) = &c.view {
                note(&view.entries);
            }
        }
        TableFootprint {
            nodes: self.nodes.len(),
            table_bytes,
            snapshot_bytes: snapshots.values().sum(),
        }
    }

    /// What the same live content would occupy under the PR-4 layout —
    /// fat 24-byte snapshot handles stored per `(node, peer)` pair,
    /// view caches inline in the hot per-node struct, `usize`/`u64`
    /// sweep counters. The baseline for the footprint telemetry, in the
    /// mould of [`glr_mobility::DeploymentArena::vec_equivalent_bytes`].
    fn baseline_equivalent_bytes(&self) -> usize {
        // Sizes of the replaced layout, from its definitions:
        // NodeTable {order Vec 24, peers HashMap 48, gc_horizon 8,
        //   ops usize 8, gen u64 8,
        //   one_cache Option<(SimTime, u64, BeaconSnapshot{Arc,f64})> 40,
        //   view_cache Option<(SimTime, u64, NeighborsView)> 32} = 168;
        // peer-map entry (NodeId, PeerState{slot u32, snap Option<{Arc
        //   16, max_heard 8}>}) = 40.
        const OLD_NODE_TABLE: usize = 168;
        const OLD_PEER_ENTRY: usize = 40;
        let mut bytes = self.nodes.capacity() * OLD_NODE_TABLE;
        let mut snapshots: HashMap<*const NeighborEntry, usize> = HashMap::new();
        let mut note = |entries: &Arc<[NeighborEntry]>| {
            snapshots.insert(
                entries.as_ptr(),
                entries.len() * std::mem::size_of::<NeighborEntry>() + ARC_SLICE_HEADER,
            );
        };
        for t in &self.nodes {
            bytes += t.order.capacity() * std::mem::size_of::<NeighborEntry>()
                + map_heap_bytes(t.peers.capacity(), OLD_PEER_ENTRY);
            for st in t.peers.values() {
                if let Some(snap) = &st.snap {
                    note(&snap.entries);
                }
            }
        }
        // The old layout's inline one_cache/view_cache fields held the
        // same interned allocations the split-out caches hold now —
        // count them so both sides of the comparison cover identical
        // content (the struct bytes are already in OLD_NODE_TABLE).
        for c in &self.caches {
            if let Some((_, _, snap)) = &c.one {
                note(&snap.entries);
            }
            if let Some((_, _, view)) = &c.view {
                note(&view.entries);
            }
        }
        bytes + snapshots.values().sum::<usize>()
    }
}

/// `ArcInner` bookkeeping preceding an `Arc<[T]>`'s payload (strong +
/// weak counts).
const ARC_SLICE_HEADER: usize = 2 * std::mem::size_of::<usize>();

/// Estimated heap bytes of a `HashMap` with `capacity` usable slots and
/// `entry` bytes per `(K, V)` pair: hashbrown allocates a power-of-two
/// bucket array at 7/8 load factor plus one control byte per bucket.
fn map_heap_bytes(capacity: usize, entry: usize) -> usize {
    if capacity == 0 {
        return 0;
    }
    let buckets = (capacity * 8).div_ceil(7).next_power_of_two().max(4);
    buckets * (entry + 1) + 16
}

/// Heap-memory telemetry for [`NeighborTables`] — the per-node
/// protocol-state counterpart of
/// [`glr_mobility::DeploymentArena::heap_bytes`], reported by the
/// `neighbor_footprint` bench rows at 100k nodes.
#[derive(Debug, Clone, Copy)]
pub struct TableFootprint {
    /// Number of per-node tables.
    pub nodes: usize,
    /// Bytes in per-node structures: the hot/cold arrays, 1-hop entry
    /// buffers and peer maps (map sizes are bucket estimates).
    pub table_bytes: usize,
    /// Bytes in interned beacon-snapshot/view allocations, counted once
    /// per unique `Arc` however many peers share it.
    pub snapshot_bytes: usize,
}

impl TableFootprint {
    /// Total heap bytes.
    pub fn total_bytes(&self) -> usize {
        self.table_bytes + self.snapshot_bytes
    }

    /// Total heap bytes per node.
    pub fn bytes_per_node(&self) -> usize {
        self.total_bytes() / self.nodes.max(1)
    }
}

// ---------------------------------------------------------------------------
// Clone-merge reference backend
// ---------------------------------------------------------------------------

/// The original clone-and-merge implementation: `Vec`-scanned tables,
/// per-reception entry-by-entry merges and eager expiry.
#[derive(Debug)]
struct CloneTables {
    one_hop: Vec<Vec<NeighborEntry>>,
    two_hop: Vec<Vec<NeighborEntry>>,
    /// Entries older than this many seconds are considered gone.
    ttl: f64,
}

impl CloneTables {
    fn new(n_nodes: usize, ttl: f64) -> Self {
        CloneTables {
            one_hop: vec![Vec::new(); n_nodes],
            two_hop: vec![Vec::new(); n_nodes],
            ttl,
        }
    }

    fn horizon(&self, now: SimTime) -> f64 {
        now.as_secs() - self.ttl
    }

    fn upsert(table: &mut Vec<NeighborEntry>, entry: NeighborEntry) {
        match table.iter_mut().find(|e| e.id == entry.id) {
            Some(e) => {
                if entry.heard_at >= e.heard_at {
                    *e = entry;
                }
            }
            None => table.push(entry),
        }
    }

    fn fresh_one_hop(&self, u: NodeId, now: SimTime) -> Vec<NeighborEntry> {
        let horizon = self.horizon(now);
        self.one_hop[u.index()]
            .iter()
            .filter(|e| e.heard_at.as_secs() >= horizon)
            .copied()
            .collect()
    }

    fn fresh_view(&self, u: NodeId, now: SimTime) -> Vec<NeighborEntry> {
        let horizon = self.horizon(now);
        let mut best: HashMap<NodeId, NeighborEntry> = Default::default();
        for e in self.one_hop[u.index()]
            .iter()
            .chain(self.two_hop[u.index()].iter())
        {
            if e.heard_at.as_secs() < horizon || e.id == u {
                continue;
            }
            match best.get(&e.id) {
                Some(cur) if cur.heard_at >= e.heard_at => {}
                _ => {
                    best.insert(e.id, *e);
                }
            }
        }
        let mut out: Vec<NeighborEntry> = best.into_values().collect();
        out.sort_by_key(|e| e.id);
        out
    }

    fn record_beacon(
        &mut self,
        receiver: NodeId,
        sender: NeighborEntry,
        snapshot: &[NeighborEntry],
        now: SimTime,
    ) -> bool {
        let horizon = self.horizon(now);
        let vi = receiver.index();
        Self::record_beacon_at(
            &mut self.one_hop[vi],
            &mut self.two_hop[vi],
            receiver,
            sender,
            snapshot,
            horizon,
        )
    }

    /// The per-receiver merge on one `(one_hop, two_hop)` table pair —
    /// split out so the parallel reception phase can run it over
    /// disjoint `&mut` table pairs.
    fn record_beacon_at(
        one_hop: &mut Vec<NeighborEntry>,
        two_hop: &mut Vec<NeighborEntry>,
        receiver: NodeId,
        sender: NeighborEntry,
        snapshot: &[NeighborEntry],
        horizon: f64,
    ) -> bool {
        let was_fresh = one_hop
            .iter()
            .any(|e| e.id == sender.id && e.heard_at.as_secs() >= horizon);
        Self::upsert(one_hop, sender);
        for e in snapshot {
            if e.id != receiver {
                Self::upsert(two_hop, *e);
            }
        }
        // Garbage-collect expired entries to bound memory.
        one_hop.retain(|e| e.heard_at.as_secs() >= horizon);
        two_hop.retain(|e| e.heard_at.as_secs() >= horizon);
        was_fresh
    }

    fn heard_frame(&mut self, receiver: NodeId, entry: NeighborEntry) {
        Self::upsert(&mut self.one_hop[receiver.index()], entry);
    }

    fn footprint(&self) -> TableFootprint {
        let vec_bytes = |tables: &Vec<Vec<NeighborEntry>>| {
            tables.capacity() * std::mem::size_of::<Vec<NeighborEntry>>()
                + tables
                    .iter()
                    .map(|t| t.capacity() * std::mem::size_of::<NeighborEntry>())
                    .sum::<usize>()
        };
        TableFootprint {
            nodes: self.one_hop.len(),
            table_bytes: vec_bytes(&self.one_hop) + vec_bytes(&self.two_hop),
            snapshot_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [TableBackend; 2] = [TableBackend::Shared, TableBackend::CloneMerge];

    fn entry(id: u32, at: f64) -> NeighborEntry {
        NeighborEntry {
            id: NodeId(id),
            pos: Point2::new(id as f64, at),
            heard_at: SimTime::from_secs(at),
        }
    }

    fn snap(entries: &[NeighborEntry]) -> BeaconSnapshot {
        BeaconSnapshot::from_entries(entries)
    }

    /// The 100k-node memory work pinned these layouts; growing them
    /// again is a per-`(node, peer)`-pair regression at deployment
    /// scale (the PR-4 sizes were 24/40/168-byte equivalents).
    #[test]
    fn per_node_state_stays_compact() {
        assert_eq!(std::mem::size_of::<BeaconSnapshot>(), 16);
        assert!(std::mem::size_of::<(NodeId, PeerState)>() <= 32);
        assert!(std::mem::size_of::<NodeTable>() <= 88);
        assert!(std::mem::size_of::<NodeCache>() <= 64);
    }

    #[test]
    fn footprint_counts_shared_snapshots_once() {
        let mut t = NeighborTables::new(4, 100.0, TableBackend::Shared);
        let now = SimTime::from_secs(5.0);
        t.record_beacon(NodeId(0), entry(2, 4.0), &snap(&[]), now);
        let s = t.beacon_snapshot(NodeId(0), now);
        // The same snapshot recorded at three receivers must be counted
        // once, not three times.
        let before = t.footprint().snapshot_bytes;
        for v in [1u32, 2, 3] {
            t.record_beacon(NodeId(v), entry(0, 5.0), &s, now);
        }
        let after = t.footprint().snapshot_bytes;
        assert_eq!(before, after);
        // And the compact layout must beat its PR-4 equivalent.
        let fp = t.footprint();
        assert!(
            fp.total_bytes() < t.baseline_footprint_bytes(),
            "current {} vs baseline {}",
            fp.total_bytes(),
            t.baseline_footprint_bytes()
        );
    }

    #[test]
    fn beacons_fill_tables_and_expire() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(3, 2.5, backend);
            let now = SimTime::from_secs(10.0);
            let fresh = t.record_beacon(NodeId(1), entry(0, 10.0), &snap(&[entry(2, 9.5)]), now);
            assert!(!fresh, "first contact must not be fresh ({backend:?})");
            assert_eq!(t.fresh_one_hop(NodeId(1), now).len(), 1);
            assert_eq!(t.fresh_view(NodeId(1), now).len(), 2);
            // Second beacon inside the TTL: already fresh.
            let now2 = SimTime::from_secs(11.0);
            assert!(t.record_beacon(NodeId(1), entry(0, 11.0), &snap(&[]), now2));
            // Long silence: entries expire.
            let later = SimTime::from_secs(20.0);
            assert!(t.fresh_one_hop(NodeId(1), later).is_empty());
            assert!(!t.record_beacon(NodeId(1), entry(0, 20.0), &snap(&[]), later));
        }
    }

    #[test]
    fn fresh_view_dedups_freshest_wins() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(3, 100.0, backend);
            let now = SimTime::from_secs(10.0);
            // Node 2 known both directly (older) and via the snapshot (newer).
            t.record_beacon(NodeId(0), entry(2, 5.0), &snap(&[]), now);
            t.record_beacon(NodeId(0), entry(1, 9.0), &snap(&[entry(2, 8.0)]), now);
            let view = t.fresh_view(NodeId(0), now);
            assert_eq!(view.len(), 2);
            let e2 = view.iter().find(|e| e.id == NodeId(2)).unwrap();
            assert_eq!(e2.heard_at, SimTime::from_secs(8.0), "{backend:?}");
        }
    }

    #[test]
    fn snapshot_skips_the_receiver_itself() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(2, 100.0, backend);
            let now = SimTime::from_secs(1.0);
            t.record_beacon(NodeId(1), entry(0, 1.0), &snap(&[entry(1, 0.5)]), now);
            assert!(t
                .fresh_view(NodeId(1), now)
                .iter()
                .all(|e| e.id != NodeId(1)));
        }
    }

    #[test]
    fn heard_frame_refreshes_without_gc() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(2, 2.5, backend);
            t.heard_frame(NodeId(1), entry(0, 1.0));
            t.heard_frame(NodeId(1), entry(0, 2.0));
            let got = t.fresh_one_hop(NodeId(1), SimTime::from_secs(2.0));
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].heard_at, SimTime::from_secs(2.0));
            // Stale upsert does not regress the entry.
            t.heard_frame(NodeId(1), entry(0, 1.5));
            let got = t.fresh_one_hop(NodeId(1), SimTime::from_secs(2.0));
            assert_eq!(got[0].heard_at, SimTime::from_secs(2.0), "{backend:?}");
        }
    }

    #[test]
    fn beacon_snapshot_is_shared_not_copied() {
        let mut t = NeighborTables::new(4, 100.0, TableBackend::Shared);
        let now = SimTime::from_secs(5.0);
        t.record_beacon(NodeId(0), entry(2, 4.0), &snap(&[]), now);
        let s = t.beacon_snapshot(NodeId(0), now);
        // Cached: a second ask at the same time is the same allocation.
        let s2 = t.beacon_snapshot(NodeId(0), now);
        assert!(Arc::ptr_eq(&s.entries, &s2.entries));
        // Receivers of the beacon share it too: record it at two nodes
        // and confirm both 2-hop views see the carried entry.
        t.record_beacon(NodeId(1), entry(0, 5.0), &s, now);
        t.record_beacon(NodeId(3), entry(0, 5.0), &s, now);
        for v in [NodeId(1), NodeId(3)] {
            assert!(t.fresh_view(v, now).iter().any(|e| e.id == NodeId(2)));
        }
    }

    #[test]
    fn views_are_cached_per_time_and_invalidated_on_mutation() {
        let mut t = NeighborTables::new(3, 100.0, TableBackend::Shared);
        let now = SimTime::from_secs(1.0);
        t.record_beacon(NodeId(1), entry(0, 1.0), &snap(&[entry(2, 0.5)]), now);
        let a = t.fresh_view(NodeId(1), now);
        let b = t.fresh_view(NodeId(1), now);
        assert!(
            Arc::ptr_eq(&a.entries, &b.entries),
            "same (time, gen) must hit the cache"
        );
        // A mutation invalidates.
        t.record_beacon(NodeId(1), entry(2, 1.5), &snap(&[]), now);
        let c = t.fresh_view(NodeId(1), now);
        assert!(!Arc::ptr_eq(&a.entries, &c.entries));
        assert_eq!(
            c.iter().find(|e| e.id == NodeId(2)).unwrap().heard_at,
            SimTime::from_secs(1.5)
        );
    }

    /// The lazy sweep must reproduce the reference's *placement* of
    /// revived entries: once an entry has been observably GC'd (a beacon
    /// arrived after it expired), a re-contact appends at the end.
    #[test]
    fn revived_contact_reorders_like_the_reference() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(4, 2.5, backend);
            // Contacts 1 then 2.
            t.record_beacon(
                NodeId(0),
                entry(1, 1.0),
                &snap(&[]),
                SimTime::from_secs(1.0),
            );
            t.record_beacon(
                NodeId(0),
                entry(2, 2.0),
                &snap(&[]),
                SimTime::from_secs(2.0),
            );
            // Node 1 goes silent; a beacon from 2 at t=5 GCs it (1.0 < 5-2.5).
            t.record_beacon(
                NodeId(0),
                entry(2, 5.0),
                &snap(&[]),
                SimTime::from_secs(5.0),
            );
            // Node 1 returns: it must now list AFTER node 2.
            t.record_beacon(
                NodeId(0),
                entry(1, 6.0),
                &snap(&[]),
                SimTime::from_secs(6.0),
            );
            let ids: Vec<NodeId> = t
                .fresh_one_hop(NodeId(0), SimTime::from_secs(6.0))
                .iter()
                .map(|e| e.id)
                .collect();
            assert_eq!(ids, vec![NodeId(2), NodeId(1)], "{backend:?}");
        }
    }

    /// Without an intervening beacon GC, a stale entry that refreshes
    /// keeps its original slot — in both backends.
    #[test]
    fn stale_refresh_without_gc_keeps_position() {
        for backend in BACKENDS {
            let mut t = NeighborTables::new(4, 2.5, backend);
            t.record_beacon(
                NodeId(0),
                entry(1, 1.0),
                &snap(&[]),
                SimTime::from_secs(1.0),
            );
            t.record_beacon(
                NodeId(0),
                entry(2, 1.5),
                &snap(&[]),
                SimTime::from_secs(1.5),
            );
            // Node 1's entry is stale at t=6 but no beacon GC'd it;
            // a data frame refreshes it in place.
            t.heard_frame(NodeId(0), entry(1, 6.0));
            t.heard_frame(NodeId(0), entry(2, 6.0));
            let ids: Vec<NodeId> = t
                .fresh_one_hop(NodeId(0), SimTime::from_secs(6.0))
                .iter()
                .map(|e| e.id)
                .collect();
            assert_eq!(ids, vec![NodeId(1), NodeId(2)], "{backend:?}");
        }
    }

    /// Long random-ish op sequences keep the shared backend's lazily
    /// swept tables identical to the eager reference.
    #[test]
    fn sweeping_is_unobservable_under_churn() {
        let mut shared = NeighborTables::new(8, 2.5, TableBackend::Shared);
        let mut reference = NeighborTables::new(8, 2.5, TableBackend::CloneMerge);
        let mut t = 0.0f64;
        for step in 0u32..600 {
            t += 0.1 + (step % 7) as f64 * 0.05;
            let now = SimTime::from_secs(t);
            let sender = step % 5;
            let receiver = (step / 5) % 8;
            if sender == receiver {
                continue;
            }
            // Snapshot comes from the sender's own table, like the engine.
            let ss = shared.beacon_snapshot(NodeId(sender), now);
            let rs = reference.beacon_snapshot(NodeId(sender), now);
            assert_eq!(
                ss.entries(),
                rs.entries(),
                "snapshots diverged at step {step}"
            );
            let e = entry(sender, t);
            let a = shared.record_beacon(NodeId(receiver), e, &ss, now);
            let b = reference.record_beacon(NodeId(receiver), e, &rs, now);
            assert_eq!(a, b, "was_fresh diverged at step {step}");
            if step % 3 == 0 {
                shared.heard_frame(NodeId(receiver), e);
                reference.heard_frame(NodeId(receiver), e);
            }
            for u in 0..8u32 {
                assert_eq!(
                    &*shared.fresh_one_hop(NodeId(u), now),
                    &*reference.fresh_one_hop(NodeId(u), now),
                    "one-hop diverged at step {step} node {u}"
                );
                assert_eq!(
                    &*shared.fresh_view(NodeId(u), now),
                    &*reference.fresh_view(NodeId(u), now),
                    "view diverged at step {step} node {u}"
                );
            }
        }
    }
}
