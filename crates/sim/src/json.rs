//! A minimal JSON reader for the shard-merge pipeline.
//!
//! The build environment has no crates.io access, so the report layer
//! cannot use `serde`; writing JSON is trivial by hand, and this module
//! supplies the other direction: a small recursive-descent parser into a
//! [`Json`] tree. Numbers keep their source lexeme so integer counters
//! round-trip exactly (no detour through `f64`) and `f64` metrics parse
//! back to the bit pattern Rust's shortest-round-trip `{:?}` printed.
//!
//! Scope: everything the report files need — objects, arrays, strings
//! with basic escapes (including BMP `\uXXXX`), numbers, booleans and
//! `null`. Not a general-purpose validator beyond that.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
            depth: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors with the key name when missing.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(s) => s.parse().map_err(|_| format!("not a u64: {s}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(s) => s.parse().map_err(|_| format!("not a number: {s}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as `f64`, or `None` for `null`.
    pub fn as_opt_f64(&self) -> Result<Option<f64>, String> {
        match self {
            Json::Null => Ok(None),
            other => other.as_f64().map(Some),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// The value as an object's fields, in source order.
    pub fn as_obj(&self) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

/// Escapes a string into a JSON string literal (appending the quotes).
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting ceiling: recursive descent would otherwise turn a hostile
/// "[[[[…" input into a stack overflow instead of an `Err`.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: u32,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.at
            ));
        }
        let v = match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.at
            )),
        };
        self.depth -= 1;
        v
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.at += 1;
        }
        let lexeme =
            std::str::from_utf8(&self.bytes[start..self.at]).expect("number lexeme is ASCII");
        // Validate now so accessors can't hit malformed lexemes later.
        // Overflowing lexemes (1e999) parse to infinity in Rust, which
        // JSON cannot represent — reject them here, where the error can
        // still name the byte offset.
        match lexeme.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(lexeme.to_string())),
            _ => Err(format!("malformed number {lexeme:?} at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.at += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            fields.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64().unwrap(), 42);
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64().unwrap(), -1500.0);
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str().unwrap(), "hi");
    }

    #[test]
    fn nested_structure() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64().unwrap(), 1);
        assert_eq!(a[2].get("b"), Some(&Json::Null));
        assert_eq!(v.field("c").unwrap().as_str().unwrap(), "x");
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a \"quoted\"\\ line\nwith\ttabs and unicode ±μ";
        let mut lit = String::new();
        write_escaped(&mut lit, original);
        assert_eq!(Json::parse(&lit).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(Json::parse(r#""±""#).unwrap().as_str().unwrap(), "±");
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str().unwrap(), "A");
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 123456.789e-3, f64::MAX, 5e-324] {
            let text = format!("{x:?}");
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "lost bits for {text}");
        }
    }

    #[test]
    fn u64_exactness_beyond_f64() {
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64().unwrap(), big);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let hostile = "[".repeat(100_000);
        assert!(Json::parse(&hostile).unwrap_err().contains("nesting"));
        // Anything at or under the ceiling still parses.
        let ok = format!("{}1{}", "[".repeat(127), "]".repeat(127));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("--3").is_err());
        // Overflow to infinity is a parse error, not a silent Ok(inf).
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
    }

    #[test]
    fn preserves_object_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let fields = v.as_obj().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }
}
