//! Traffic workloads: which node sends what to whom, when.

use crate::ids::{MessageId, NodeId};
use crate::time::SimTime;

/// One message the workload will inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMessage {
    /// Injection time.
    pub at: SimTime,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub size: u32,
}

/// A schedule of end-to-end messages to inject into the network.
///
/// # Examples
///
/// ```
/// use glr_sim::Workload;
///
/// // The paper's workload: 45 of the 50 nodes each send to the 44 others,
/// // 1980 messages total, one per second.
/// let w = Workload::paper_style(50, 1980, 1000);
/// assert_eq!(w.len(), 1980);
/// assert!(w.messages().iter().all(|m| m.src != m.dst));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    messages: Vec<WorkloadMessage>,
}

impl Workload {
    /// Builds a workload from an explicit message list, sorted by time.
    ///
    /// # Panics
    ///
    /// Panics if any message has `src == dst`.
    pub fn new(mut messages: Vec<WorkloadMessage>) -> Self {
        for m in &messages {
            assert!(m.src != m.dst, "message with src == dst ({})", m.src);
        }
        messages.sort_by_key(|m| m.at);
        Workload { messages }
    }

    /// The paper's traffic pattern: a subset of 45 nodes (or `n_nodes - 5`,
    /// min 2) act as sources and destinations; each sends to each of the
    /// other active nodes. `count` messages are injected, one per second
    /// starting at `t = 1 s`, sources round-robin so traffic is spread.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 3` or `count == 0`.
    pub fn paper_style(n_nodes: usize, count: usize, size: u32) -> Self {
        assert!(n_nodes >= 3, "need at least 3 nodes");
        assert!(count > 0, "need at least one message");
        let active = (n_nodes.saturating_sub(5)).max(2); // 45 when n = 50
        let mut messages = Vec::with_capacity(count);
        for i in 0..count {
            let s = i % active;
            let round = i / active;
            // s's round-th destination among the other active nodes.
            let d_rank = (s + round) % (active - 1);
            let d = if d_rank >= s { d_rank + 1 } else { d_rank };
            messages.push(WorkloadMessage {
                at: SimTime::from_secs((i + 1) as f64),
                src: NodeId(s as u32),
                dst: NodeId(d as u32),
                size,
            });
        }
        Workload { messages }
    }

    /// A single message from `src` to `dst` at time `at`.
    pub fn single(src: NodeId, dst: NodeId, at: f64, size: u32) -> Self {
        Workload::new(vec![WorkloadMessage {
            at: SimTime::from_secs(at),
            src,
            dst,
            size,
        }])
    }

    /// The scheduled messages, ordered by injection time.
    pub fn messages(&self) -> &[WorkloadMessage] {
        &self.messages
    }

    /// Number of scheduled messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` when no messages are scheduled.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The [`MessageId`] the simulator will assign to the `i`-th scheduled
    /// message (sequence numbers count per-source in schedule order).
    pub fn message_id(&self, i: usize) -> MessageId {
        let src = self.messages[i].src;
        let seq = self.messages[..i].iter().filter(|m| m.src == src).count() as u32;
        MessageId { src, seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_style_counts_and_validity() {
        let w = Workload::paper_style(50, 1980, 1000);
        assert_eq!(w.len(), 1980);
        for m in w.messages() {
            assert!(m.src.index() < 45);
            assert!(m.dst.index() < 45);
            assert_ne!(m.src, m.dst);
            assert_eq!(m.size, 1000);
        }
        // One per second starting at 1s.
        assert_eq!(w.messages()[0].at, SimTime::from_secs(1.0));
        assert_eq!(w.messages()[1979].at, SimTime::from_secs(1980.0));
    }

    #[test]
    fn paper_style_covers_all_pairs_at_full_count() {
        use std::collections::HashSet;
        let w = Workload::paper_style(50, 1980, 1000);
        let pairs: HashSet<(u32, u32)> = w.messages().iter().map(|m| (m.src.0, m.dst.0)).collect();
        assert_eq!(pairs.len(), 1980, "all 45*44 ordered pairs exactly once");
    }

    #[test]
    fn paper_style_small_counts() {
        let w = Workload::paper_style(50, 10, 500);
        assert_eq!(w.len(), 10);
        // Round-robin sources.
        assert_eq!(w.messages()[0].src, NodeId(0));
        assert_eq!(w.messages()[1].src, NodeId(1));
    }

    #[test]
    fn tiny_network_workload() {
        let w = Workload::paper_style(3, 4, 100);
        for m in w.messages() {
            assert!(m.src.index() < 2);
            assert_ne!(m.src, m.dst);
        }
    }

    #[test]
    fn message_ids_sequence_per_source() {
        let w = Workload::paper_style(50, 100, 1000);
        // Message 0 and message 45 share source 0 with seqs 0 and 1.
        assert_eq!(
            w.message_id(0),
            MessageId {
                src: NodeId(0),
                seq: 0
            }
        );
        assert_eq!(
            w.message_id(45),
            MessageId {
                src: NodeId(0),
                seq: 1
            }
        );
        assert_eq!(
            w.message_id(1),
            MessageId {
                src: NodeId(1),
                seq: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "src == dst")]
    fn self_message_rejected() {
        Workload::new(vec![WorkloadMessage {
            at: SimTime::ZERO,
            src: NodeId(1),
            dst: NodeId(1),
            size: 10,
        }]);
    }

    #[test]
    fn new_sorts_by_time() {
        let w = Workload::new(vec![
            WorkloadMessage {
                at: SimTime::from_secs(5.0),
                src: NodeId(0),
                dst: NodeId(1),
                size: 1,
            },
            WorkloadMessage {
                at: SimTime::from_secs(2.0),
                src: NodeId(1),
                dst: NodeId(0),
                size: 1,
            },
        ]);
        assert!(w.messages()[0].at < w.messages()[1].at);
    }
}
