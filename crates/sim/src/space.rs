//! Spatial indexing of node positions for the engine's proximity queries.
//!
//! Every radio event needs "who is within `r` of this point right now".
//! A linear scan is `O(n)` per query; at paper scale that is tolerable,
//! but it is the dominant cost at larger node counts (beacons alone make
//! the engine `O(n²)` per simulated second). [`SpatialIndex`] answers the
//! same queries from a uniform grid ([`glr_geometry::Grid`]) rebuilt
//! lazily as simulated time advances.
//!
//! **Exactness.** Node positions move continuously, so a grid built at
//! time `t` is stale at `t' > t`. The index exploits the mobility model's
//! bounded speed: a node can have drifted at most
//! `max_speed · (t' - t)` metres from its indexed position. Querying the
//! grid with the radius *inflated by that drift* yields a candidate
//! superset, which is then filtered by each candidate's exact position at
//! `t'` — using the *same* distance predicate as the linear scan. Both
//! backends therefore return exactly the same node sets, and a
//! simulation's `RunStats` is bit-identical under either (asserted by
//! `tests/grid_equivalence.rs`).
//!
//! The grid is rebuilt only when the accumulated drift exceeds a fixed
//! fraction of the cell size, amortising the `O(n)` rebuild over many
//! events.

use crate::config::SimConfig;
use crate::ids::NodeId;
use crate::time::SimTime;
use glr_geometry::{Grid, Point2};
use glr_mobility::DeploymentArena;

/// Which data structure backs the engine's neighbor queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// Uniform spatial grid with drift-compensated lazy rebuilds —
    /// `O(cell occupancy)` per query. The default.
    #[default]
    Grid,
    /// Exhaustive scan over all nodes — `O(n)` per query. Kept as the
    /// reference implementation the grid is validated against.
    LinearScan,
}

/// Extra metres added to the drift bound to absorb floating-point
/// accumulation in trajectory interpolation. Candidates are over-included
/// by this margin and discarded by the exact filter, so correctness never
/// depends on it being tight.
const DRIFT_EPSILON: f64 = 1e-6;

/// Fraction of the effective cell size the drift bound may reach before
/// the grid snapshot is rebuilt. Rebuild cadence is unobservable (the
/// drift-inflated query stays exact at any staleness); the trade is pure
/// performance: smaller values rebuild more often but keep the inflated
/// query radius — and with it the candidate set every exact filter must
/// walk — tight. Rebuilds reuse the grid's bucket allocations
/// ([`Grid::rebuild`]), so leaning toward frequent rebuilds is cheap.
const SLACK_FRACTION: f64 = 0.1;

/// A drift-compensated spatial index over the deployment's interned
/// trajectory arena.
///
/// # Examples
///
/// ```
/// use glr_sim::{IndexBackend, NodeId, SimTime, SpatialIndex};
/// use glr_geometry::Point2;
/// use glr_mobility::{DeploymentArena, Trajectory};
///
/// let arena = DeploymentArena::from_trajectories(&[
///     Trajectory::stationary(Point2::new(0.0, 0.0)),
///     Trajectory::stationary(Point2::new(30.0, 0.0)),
///     Trajectory::stationary(Point2::new(500.0, 0.0)),
/// ]);
/// let mut idx = SpatialIndex::new(IndexBackend::Grid, arena.len(), 0.0, 100.0);
/// let t = SimTime::ZERO;
/// idx.refresh(t, &arena);
/// let near = idx.nodes_within(&arena, t, Point2::new(0.0, 0.0), 50.0, NodeId(0));
/// assert_eq!(near, vec![NodeId(1)]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    backend: IndexBackend,
    n: usize,
    /// Preferred cell size (the query radius); widened per rebuild when
    /// the deployment is so spread out that radius-sized cells would
    /// explode the bucket count.
    cell: f64,
    max_speed: f64,
    /// Rebuild once drift exceeds this many metres; derived from the
    /// effective cell size of the last rebuild.
    slack_limit: f64,
    built_at: SimTime,
    positions: Vec<Point2>,
    grid: Option<Grid>,
}

impl SpatialIndex {
    /// Creates an index over `n` nodes whose speed never exceeds
    /// `max_speed` (m/s), with grid cells of `cell_size` metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite or
    /// `max_speed` is negative.
    pub fn new(backend: IndexBackend, n: usize, max_speed: f64, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        assert!(
            max_speed.is_finite() && max_speed >= 0.0,
            "max speed must be finite and non-negative, got {max_speed}"
        );
        SpatialIndex {
            backend,
            n,
            cell: cell_size,
            max_speed,
            slack_limit: cell_size * SLACK_FRACTION,
            built_at: SimTime::ZERO,
            positions: Vec::new(),
            grid: None,
        }
    }

    /// Index configured for a simulation: cell size = radio range, speed
    /// bound from the mobility configuration (floored at
    /// [`glr_mobility::SPEED_FLOOR`], which the mobility models clamp
    /// sampled speeds *up* to — without it a config whose nominal maximum
    /// is below the floor would under-state the drift bound and break
    /// grid exactness).
    pub fn from_config(config: &SimConfig) -> Self {
        let max_speed = config.speed_range.1.max(glr_mobility::SPEED_FLOOR);
        // Half-radius cells: the scanned cell neighbourhood hugs the
        // query circle ~2x tighter than radius-sized cells (fewer
        // candidates for the exact filter), while the CSR grid keeps the
        // larger cell count cheap to rebuild and walk. Purely a
        // performance choice — any cell size returns the same sets.
        SpatialIndex::new(
            config.neighbor_index,
            config.n_nodes,
            max_speed,
            config.radio_range * 0.5,
        )
    }

    /// Metres any node may have moved since the grid snapshot at `now`.
    fn drift(&self, now: SimTime) -> f64 {
        self.max_speed * (now.as_secs() - self.built_at.as_secs()).max(0.0) + DRIFT_EPSILON
    }

    /// Brings the index up to date for queries at `now`: rebuilds the
    /// grid snapshot when the drift bound has outgrown its slack. A no-op
    /// for the linear backend.
    pub fn refresh(&mut self, now: SimTime, arena: &DeploymentArena) {
        if self.backend == IndexBackend::LinearScan {
            return;
        }
        debug_assert_eq!(arena.len(), self.n, "trajectory count changed");
        if self.grid.is_some() && self.drift(now) <= self.slack_limit {
            return;
        }
        let t = now.as_secs();
        self.positions.clear();
        self.positions
            .extend((0..self.n).map(|i| arena.position_at(i, t)));
        // Keep the bucket count O(n): radius-sized cells over a deployment
        // far sparser than the radio range (e.g. a 100 km region with a
        // 1 m radio) would allocate billions of empty buckets. Widening
        // cells only trades query work, never correctness.
        let (min, max) = glr_geometry::bounding_box(&self.positions);
        let side_cap = ((self.n as f64).sqrt().ceil() * 2.0).max(1.0);
        let cell_eff = self
            .cell
            .max((max.x - min.x) / side_cap)
            .max((max.y - min.y) / side_cap);
        match &mut self.grid {
            Some(g) => g.rebuild(&self.positions, cell_eff),
            None => self.grid = Some(Grid::build(&self.positions, cell_eff)),
        }
        self.slack_limit = cell_eff * SLACK_FRACTION;
        self.built_at = now;
    }

    /// Ids of all nodes within `range` of `center` at `now`, excluding
    /// `except`, in ascending id order — exactly the set a linear scan
    /// over true positions returns.
    ///
    /// With the grid backend, [`SpatialIndex::refresh`] must have been
    /// called at a time `≤ now` (the engine refreshes at the top of every
    /// query; the drift bound keeps any `now ≥ built_at` correct).
    pub fn nodes_within(
        &self,
        arena: &DeploymentArena,
        now: SimTime,
        center: Point2,
        range: f64,
        except: NodeId,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.nodes_within_into(arena, now, center, range, except, &mut out);
        out
    }

    /// Like [`SpatialIndex::nodes_within`], but clears and fills a
    /// caller-owned buffer instead of allocating — the engine reuses one
    /// buffer across every beacon event.
    pub fn nodes_within_into(
        &self,
        arena: &DeploymentArena,
        now: SimTime,
        center: Point2,
        range: f64,
        except: NodeId,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.for_each_within(arena, now, center, range, except, |v| out.push(v));
        out.sort_unstable();
    }

    /// Number of nodes within `range` of `center` at `now` (excluding
    /// `except`) for which `pred` holds.
    pub fn count_within(
        &self,
        arena: &DeploymentArena,
        now: SimTime,
        center: Point2,
        range: f64,
        except: NodeId,
        mut pred: impl FnMut(NodeId) -> bool,
    ) -> usize {
        let mut count = 0;
        self.for_each_within(arena, now, center, range, except, |v| {
            if pred(v) {
                count += 1;
            }
        });
        count
    }

    fn for_each_within(
        &self,
        arena: &DeploymentArena,
        now: SimTime,
        center: Point2,
        range: f64,
        except: NodeId,
        mut f: impl FnMut(NodeId),
    ) {
        let t = now.as_secs();
        // The exact membership predicate — identical for both backends
        // (and to the historical linear scan), so the backends can never
        // disagree on boundary cases.
        let mut exact = |v: NodeId| {
            if v != except && arena.position_at(v.index(), t).dist(center) <= range {
                f(v);
            }
        };
        match (&self.grid, self.backend) {
            (Some(grid), IndexBackend::Grid) => {
                grid.for_each_within(&self.positions, center, range + self.drift(now), |i| {
                    exact(NodeId(i as u32))
                });
            }
            _ => {
                for i in 0..self.n as u32 {
                    exact(NodeId(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use glr_mobility::Trajectory;

    fn moving(trajs: &[(f64, f64, f64, f64)]) -> DeploymentArena {
        // Each node moves from (x0, y0) to (x1, y1) over 100 s.
        let trajs: Vec<Trajectory> = trajs
            .iter()
            .map(|&(x0, y0, x1, y1)| {
                Trajectory::from_keyframes(vec![
                    (0.0, Point2::new(x0, y0)),
                    (100.0, Point2::new(x1, y1)),
                ])
            })
            .collect();
        DeploymentArena::from_trajectories(&trajs)
    }

    #[test]
    fn grid_matches_linear_while_nodes_move() {
        let trajs = moving(&[
            (0.0, 0.0, 200.0, 0.0),
            (50.0, 0.0, 50.0, 90.0),
            (400.0, 400.0, 0.0, 0.0),
            (90.0, 10.0, 95.0, 15.0),
        ]);
        let max_speed = (0..trajs.len())
            .map(|i| {
                let (a, b) = (trajs.position_at(i, 0.0), trajs.position_at(i, 100.0));
                a.dist(b) / 100.0
            })
            .fold(0.0, f64::max);
        let mut grid = SpatialIndex::new(IndexBackend::Grid, 4, max_speed, 100.0);
        let linear = SpatialIndex::new(IndexBackend::LinearScan, 4, max_speed, 100.0);
        // Refresh once at t=0, then query later times without refreshing:
        // the drift inflation must keep results exact.
        grid.refresh(SimTime::ZERO, &trajs);
        for secs in [0.0, 1.0, 3.0, 7.0, 20.0, 55.0, 99.0] {
            let now = SimTime::from_secs(secs);
            for r in [30.0, 100.0, 250.0] {
                for except in 0..4u32 {
                    let c = trajs.position_at(except as usize, secs);
                    let got = grid.nodes_within(&trajs, now, c, r, NodeId(except));
                    let want = linear.nodes_within(&trajs, now, c, r, NodeId(except));
                    assert_eq!(got, want, "t={secs} r={r} except={except}");
                }
            }
        }
    }

    #[test]
    fn refresh_rebuilds_only_after_slack() {
        let trajs = moving(&[(0.0, 0.0, 100.0, 0.0), (10.0, 0.0, 10.0, 0.0)]);
        // 1 m/s, 100 m cells → slack of SLACK_FRACTION·100 m, reached
        // after SLACK_FRACTION·100 seconds.
        let slack_secs = 100.0 * SLACK_FRACTION;
        let mut idx = SpatialIndex::new(IndexBackend::Grid, 2, 1.0, 100.0);
        idx.refresh(SimTime::ZERO, &trajs);
        let built = idx.built_at;
        idx.refresh(SimTime::from_secs(slack_secs * 0.5), &trajs);
        assert_eq!(idx.built_at, built, "rebuilt before slack was exceeded");
        idx.refresh(SimTime::from_secs(slack_secs * 2.0), &trajs);
        assert_eq!(idx.built_at, SimTime::from_secs(slack_secs * 2.0));
    }

    #[test]
    fn count_within_applies_predicate() {
        let trajs = moving(&[
            (0.0, 0.0, 0.0, 0.0),
            (10.0, 0.0, 10.0, 0.0),
            (20.0, 0.0, 20.0, 0.0),
        ]);
        let mut idx = SpatialIndex::new(IndexBackend::Grid, 3, 0.0, 50.0);
        idx.refresh(SimTime::ZERO, &trajs);
        let n = idx.count_within(
            &trajs,
            SimTime::ZERO,
            Point2::new(0.0, 0.0),
            50.0,
            NodeId(0),
            |v| v.0 != 1,
        );
        assert_eq!(n, 1); // node 2 only: node 0 excluded, node 1 filtered.
    }
}
