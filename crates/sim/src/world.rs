//! Shared world state: clock, configuration, the interned trajectory
//! arena, spatial index, RNG and statistics.
//!
//! [`World`] is the slice of engine state that both the engine and the
//! pluggable [`crate::Medium`] need: a [`Medium`] implementation receives
//! `&mut World` on every call and interacts with the world exclusively
//! through the methods here — proximity queries, the deterministic RNG,
//! the clock, and statistics reporting. Keeping all randomness behind
//! [`World::rng`] is what keeps a run a pure function of
//! `(config, workload, protocol, seed)` regardless of which medium is
//! plugged in.
//!
//! Node mobility lives in a [`DeploymentArena`]: every node's
//! piecewise-linear trajectory interned into one contiguous keyframe
//! buffer, so the `position_at` hot path (spatial-index candidate
//! filtering, medium range checks, grid rebuilds) walks flat memory
//! instead of chasing one heap allocation per node.

use crate::config::SimConfig;
use crate::ids::NodeId;
use crate::space::SpatialIndex;
use crate::stats::RunStats;
use crate::time::SimTime;
use glr_geometry::Point2;
use glr_mobility::{DeploymentArena, Trajectory};
use rand::rngs::StdRng;

/// The simulated world as seen by the engine and the radio medium.
#[derive(Debug)]
pub struct World {
    pub(crate) config: SimConfig,
    pub(crate) arena: DeploymentArena,
    pub(crate) now: SimTime,
    pub(crate) index: SpatialIndex,
    pub(crate) rng: StdRng,
    pub(crate) stats: RunStats,
}

impl World {
    pub(crate) fn new(config: SimConfig, trajectories: Vec<Trajectory>, rng: StdRng) -> Self {
        let arena = DeploymentArena::from_trajectories(&trajectories);
        let index = SpatialIndex::from_config(&config);
        let stats = RunStats::new(config.n_nodes);
        World {
            config,
            arena,
            now: SimTime::ZERO,
            index,
            rng,
            stats,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The interned trajectory arena backing all position queries.
    pub fn arena(&self) -> &DeploymentArena {
        &self.arena
    }

    /// Ground-truth position of `node` at the current time.
    pub fn pos(&self, node: NodeId) -> Point2 {
        self.pos_at(node, self.now)
    }

    /// Ground-truth position of `node` at an arbitrary time.
    pub fn pos_at(&self, node: NodeId, t: SimTime) -> Point2 {
        self.arena.position_at(node.index(), t.as_secs())
    }

    /// Nodes currently within `range` of `p`, excluding `except`, in
    /// ascending id order.
    pub fn nodes_within(&mut self, p: Point2, range: f64, except: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.nodes_within_into(p, range, except, &mut out);
        out
    }

    /// Like [`World::nodes_within`], but clears and fills a caller-owned
    /// buffer — the allocation-free form the engine's beacon loop uses.
    pub fn nodes_within_into(
        &mut self,
        p: Point2,
        range: f64,
        except: NodeId,
        out: &mut Vec<NodeId>,
    ) {
        self.index.refresh(self.now, &self.arena);
        self.index
            .nodes_within_into(&self.arena, self.now, p, range, except, out);
    }

    /// Number of nodes within `range` of `p` (excluding `except`)
    /// satisfying `pred` — e.g. "is currently transmitting" for the
    /// carrier-sense and interference models.
    pub fn count_within(
        &mut self,
        p: Point2,
        range: f64,
        except: NodeId,
        pred: impl FnMut(NodeId) -> bool,
    ) -> usize {
        self.index.refresh(self.now, &self.arena);
        self.index
            .count_within(&self.arena, self.now, p, range, except, pred)
    }

    /// The run's deterministic random number generator. All medium and
    /// protocol randomness must flow from here.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Statistics collector for the run.
    pub fn stats(&mut self) -> &mut RunStats {
        &mut self.stats
    }
}
