//! The generic parameter-sweep engine.
//!
//! Every table in the paper is a grid — radio range × copy policy ×
//! storage × workload density — with each cell averaged over seeded
//! runs. [`Sweep`] executes such grids: the caller expands its axes into
//! a flat cell list (typically `Vec<Scenario>`, but any `Sync` cell type
//! works), and the engine flattens `(cell, run)` pairs into a work queue
//! that [`crate::WorkerPool`] workers drain via an atomic cursor — long
//! cells never leave threads idle the way per-cell fan-out would. The
//! outer workers draw from a [`ThreadBudget`] ([`Sweep::with_budget`])
//! that the cells' inner engines can share through
//! [`crate::SimConfig::with_thread_budget`], so composing sweep-level
//! and engine-level parallelism never oversubscribes the host.
//!
//! Determinism: a work unit is a pure function of `(cell, run index)`
//! (the run function derives the seed from the cell's base seed plus the
//! run index), and results are stored by unit index, so the outcome is
//! bit-identical to [`Sweep::execute_serial`] for any thread count and
//! completion order — asserted by the tests here and in
//! `tests/sweep_shard.rs`. Across machines the same holds whenever the
//! hosts compute `f64` math identically (same binary, or same target +
//! libm; see [`crate::ShadowingMedium`] for the one medium that leans
//! on libm-rounded functions).
//!
//! Sharding: [`Sweep::with_shard`] restricts execution to every `n`-th
//! cell so independent invocations (other processes, other machines)
//! cover disjoint cell sets. Each shard's [`SweepResults`] carries
//! global cell indices, and [`SweepResults::merge`] reassembles the full
//! grid exactly as if it had run unsharded.
//!
//! Resume: [`Sweep::skipping`] excludes already-completed cells (e.g.
//! those present in a partial report written before an interruption), so
//! a killed run continues where it stopped; merging the old and new
//! results is byte-identical to an uninterrupted run.

use crate::pool::{Task, ThreadBudget, WorkerPool};
use crate::stats::RunStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which slice of a sweep's cells one invocation executes: cells with
/// `index % of == index_of_this_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < of`.
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
}

impl Shard {
    /// Creates a shard descriptor.
    ///
    /// # Panics
    ///
    /// Panics unless `index < of`.
    pub fn new(index: usize, of: usize) -> Self {
        assert!(index < of, "shard index {index} out of range 0..{of}");
        Shard { index, of }
    }

    /// Whether this shard owns cell `cell`.
    pub fn owns(&self, cell: usize) -> bool {
        cell % self.of == self.index
    }
}

/// The sweep engine: run count, worker threads, a thread budget shared
/// with the runs' inner engines, an optional shard, and an optional set
/// of cells to skip (resume support).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sweep {
    runs_per_cell: usize,
    threads: usize,
    budget: ThreadBudget,
    shard: Option<Shard>,
    skip: Vec<usize>,
}

impl Sweep {
    /// A sweep averaging every cell over `runs_per_cell` seeded runs,
    /// with one worker per available core and no sharding.
    ///
    /// # Panics
    ///
    /// Panics if `runs_per_cell == 0` — a cell needs at least one run.
    pub fn new(runs_per_cell: usize) -> Self {
        assert!(runs_per_cell > 0, "need at least one run per cell");
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Sweep {
            runs_per_cell,
            threads,
            budget: ThreadBudget::unlimited(),
            shard: None,
            skip: Vec::new(),
        }
    }

    /// Returns the sweep with an explicit worker-thread count (results
    /// are independent of it; this is the knob for oversubscribed or
    /// cgroup-limited hosts).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the sweep drawing its outer workers from `budget` — a
    /// cloneable ledger meant to be shared with the cells' inner
    /// engines via [`crate::SimConfig::with_thread_budget`], so outer
    /// `(cell, run)` parallelism and inner per-event fan-out together
    /// never exceed the budget (8 total = e.g. 4 sweep workers × 2
    /// engine threads, or 1 × 8 for a single 100k-node run). Purely a
    /// scheduling knob: results are bit-identical for any budget.
    pub fn with_budget(mut self, budget: ThreadBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns the sweep restricted to shard `index` of `of`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < of`.
    pub fn with_shard(mut self, index: usize, of: usize) -> Self {
        self.shard = Some(Shard::new(index, of));
        self
    }

    /// Returns the sweep with the given global cell indices excluded —
    /// the resume mechanism: pass the cells already present in a
    /// previously written report (e.g.
    /// [`crate::ReportSet::completed_cells`] of a partial `--json` file
    /// from an interrupted run) and only the missing cells execute.
    /// Because every run is a pure function of `(cell, run index)`,
    /// merging the old report with the resumed one reproduces an
    /// uninterrupted run byte for byte (`tests/sweep_shard.rs`).
    pub fn skipping(mut self, cells: impl IntoIterator<Item = usize>) -> Self {
        self.skip.extend(cells);
        self.skip.sort_unstable();
        self.skip.dedup();
        self
    }

    /// Runs per cell.
    pub fn runs_per_cell(&self) -> usize {
        self.runs_per_cell
    }

    /// The global cell indices this sweep will execute.
    fn owned_cells(&self, n_cells: usize) -> Vec<usize> {
        (0..n_cells)
            .filter(|&c| {
                self.shard.is_none_or(|s| s.owns(c)) && self.skip.binary_search(&c).is_err()
            })
            .collect()
    }

    /// Executes the sweep across worker threads.
    ///
    /// `run_fn` receives a cell and a run index `0..runs_per_cell` and
    /// must return that run's [`RunStats`]; it is the caller's job to
    /// derive the seed from the two (e.g.
    /// [`crate::Scenario::run_seeded`] with `cell.config.seed + run`).
    /// `run_fn` must be a pure function of its arguments for the
    /// determinism guarantee to hold.
    ///
    /// # Panics
    ///
    /// Propagates the first panic of any run.
    pub fn execute<C: Sync>(
        &self,
        cells: &[C],
        run_fn: impl Fn(&C, usize) -> RunStats + Send + Sync,
    ) -> SweepResults {
        let owned = self.owned_cells(cells.len());
        let units: Vec<(usize, usize)> = owned
            .iter()
            .flat_map(|&c| (0..self.runs_per_cell).map(move |r| (c, r)))
            .collect();
        let threads = self.threads.min(units.len());
        if threads <= 1 {
            return self.execute_serial(cells, run_fn);
        }
        // Outer workers come from the shared budget; whatever the
        // ledger has left after this claim is what the runs' inner
        // engines (drawing from the same budget through their configs)
        // can still get. An exhausted budget degrades to the serial
        // path.
        let pool = WorkerPool::from_budget(&self.budget, threads);
        if pool.threads() <= 1 {
            return self.execute_serial(cells, run_fn);
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunStats>>> = units.iter().map(|_| Mutex::new(None)).collect();
        let tasks: Vec<Task<'_>> = (0..pool.threads())
            .map(|_| {
                let next = &next;
                let slots = &slots;
                let units = &units;
                let run_fn = &run_fn;
                Box::new(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let (c, r) = units[i];
                    let stats = run_fn(&cells[c], r);
                    *slots[i].lock().expect("result slot poisoned") = Some(stats);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);

        let mut flat = slots.into_iter().map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing its run")
        });
        let cells = owned
            .into_iter()
            .map(|cell| CellRuns {
                cell,
                runs: (0..self.runs_per_cell)
                    .map(|_| flat.next().expect("unit count mismatch"))
                    .collect(),
            })
            .collect();
        SweepResults { cells }
    }

    /// Executes the sweep on the calling thread — the reference the
    /// parallel path is validated against, and the variant for stateful
    /// (`FnMut`) run functions.
    pub fn execute_serial<C>(
        &self,
        cells: &[C],
        mut run_fn: impl FnMut(&C, usize) -> RunStats,
    ) -> SweepResults {
        let cells = self
            .owned_cells(cells.len())
            .into_iter()
            .map(|cell| CellRuns {
                cell,
                runs: (0..self.runs_per_cell)
                    .map(|r| run_fn(&cells[cell], r))
                    .collect(),
            })
            .collect();
        SweepResults { cells }
    }
}

/// One executed cell: its global index in the sweep's cell list and the
/// statistics of its seeded runs, in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRuns {
    /// Global cell index (stable across shards).
    pub cell: usize,
    /// Per-run statistics, indexed by run.
    pub runs: Vec<RunStats>,
}

/// Results of a sweep (or of one shard of it), ordered by cell index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepResults {
    cells: Vec<CellRuns>,
}

impl SweepResults {
    /// The executed cells, ascending by global cell index.
    pub fn cells(&self) -> &[CellRuns] {
        &self.cells
    }

    /// Consumes the results into their cells.
    pub fn into_cells(self) -> Vec<CellRuns> {
        self.cells
    }

    /// The runs of cell `cell`, if this (possibly sharded) result set
    /// executed it.
    pub fn get(&self, cell: usize) -> Option<&CellRuns> {
        self.cells.iter().find(|c| c.cell == cell)
    }

    /// Whether every cell of an `n_cells`-cell sweep is present.
    pub fn is_complete(&self, n_cells: usize) -> bool {
        self.cells.len() == n_cells && self.cells.iter().enumerate().all(|(i, c)| c.cell == i)
    }

    /// Merges shard results into one set, re-sorting by cell index —
    /// the in-memory counterpart of the JSON-level
    /// [`crate::ReportSet::merge`].
    ///
    /// # Panics
    ///
    /// Panics if two shards executed the same cell.
    pub fn merge(parts: Vec<SweepResults>) -> SweepResults {
        let mut cells: Vec<CellRuns> = parts.into_iter().flat_map(|p| p.cells).collect();
        cells.sort_by_key(|c| c.cell);
        for w in cells.windows(2) {
            assert!(
                w[0].cell != w[1].cell,
                "cell {} present in more than one shard",
                w[0].cell
            );
        }
        SweepResults { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MessageId, NodeId};
    use crate::time::SimTime;

    /// A deterministic fake run derived only from (cell value, run).
    fn fake_run(cell: u64, run: usize) -> RunStats {
        let mut s = RunStats::new(2);
        let total = 8;
        let delivered = ((cell + run as u64) % 7) as usize;
        for i in 0..total {
            let id = MessageId {
                src: NodeId(0),
                seq: i as u32,
            };
            s.register_message(id, NodeId(0), NodeId(1), SimTime::ZERO);
            if i < delivered {
                s.record_delivery(id, SimTime::from_secs(5.0 + i as f64), 2);
            }
        }
        s
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let cells: Vec<u64> = (0..13).collect();
        let run_fn = |c: &u64, r: usize| fake_run(*c, r);
        let serial = Sweep::new(3).with_threads(1).execute_serial(&cells, run_fn);
        for threads in [2, 4, 8] {
            let par = Sweep::new(3).with_threads(threads).execute(&cells, run_fn);
            assert_eq!(par, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn shards_partition_and_merge() {
        let cells: Vec<u64> = (0..11).collect();
        let run_fn = |c: &u64, r: usize| fake_run(*c, r);
        let full = Sweep::new(2).execute(&cells, run_fn);
        assert!(full.is_complete(cells.len()));
        let parts: Vec<SweepResults> = (0..3)
            .map(|i| Sweep::new(2).with_shard(i, 3).execute(&cells, run_fn))
            .collect();
        // Disjoint cover.
        let counts: usize = parts.iter().map(|p| p.cells().len()).sum();
        assert_eq!(counts, cells.len());
        assert!(!parts[0].is_complete(cells.len()));
        let merged = SweepResults::merge(parts);
        assert_eq!(merged, full);
        assert!(merged.is_complete(cells.len()));
    }

    #[test]
    fn shard_may_own_nothing() {
        let cells: Vec<u64> = (0..2).collect();
        let res = Sweep::new(1)
            .with_shard(3, 4)
            .execute(&cells, |c, r| fake_run(*c, r));
        assert!(res.cells().is_empty());
        assert!(res.get(0).is_none());
    }

    #[test]
    fn get_returns_cell_runs() {
        let cells: Vec<u64> = (0..4).collect();
        let res = Sweep::new(2)
            .with_shard(1, 2)
            .execute(&cells, |c, r| fake_run(*c, r));
        assert!(res.get(0).is_none());
        let c3 = res.get(3).expect("shard 1/2 owns odd cells");
        assert_eq!(c3.cell, 3);
        assert_eq!(c3.runs.len(), 2);
        assert_eq!(c3.runs[0], fake_run(3, 0));
        assert_eq!(c3.runs[1], fake_run(3, 1));
    }

    #[test]
    fn skipping_resumes_to_the_same_results() {
        let cells: Vec<u64> = (0..9).collect();
        let run_fn = |c: &u64, r: usize| fake_run(*c, r);
        let full = Sweep::new(2).execute(&cells, run_fn);
        // An "interrupted" run finished only cells 0, 3, 4.
        let done = [0usize, 3, 4];
        let partial = SweepResults {
            cells: full
                .cells()
                .iter()
                .filter(|c| done.contains(&c.cell))
                .cloned()
                .collect(),
        };
        let resumed = Sweep::new(2).skipping(done).execute(&cells, run_fn);
        assert_eq!(resumed.cells().len(), cells.len() - done.len());
        assert!(resumed.get(3).is_none());
        let merged = SweepResults::merge(vec![partial, resumed]);
        assert_eq!(merged, full);
    }

    #[test]
    fn skipping_composes_with_shards() {
        let cells: Vec<u64> = (0..10).collect();
        let run_fn = |c: &u64, r: usize| fake_run(*c, r);
        let res = Sweep::new(1)
            .with_shard(0, 2) // owns even cells
            .skipping([0usize, 1, 4])
            .execute(&cells, run_fn);
        let owned: Vec<usize> = res.cells().iter().map(|c| c.cell).collect();
        assert_eq!(owned, vec![2, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = Sweep::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_shard_rejected() {
        let _ = Sweep::new(1).with_shard(4, 4);
    }

    #[test]
    #[should_panic(expected = "more than one shard")]
    fn overlapping_merge_rejected() {
        let cells: Vec<u64> = (0..3).collect();
        let a = Sweep::new(1).execute(&cells, |c, r| fake_run(*c, r));
        let b = Sweep::new(1)
            .with_shard(0, 2)
            .execute(&cells, |c, r| fake_run(*c, r));
        let _ = SweepResults::merge(vec![a, b]);
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let cells: Vec<u64> = Vec::new();
        let res = Sweep::new(5).execute(&cells, |c, r| fake_run(*c, r));
        assert!(res.cells().is_empty());
        assert!(res.is_complete(0));
    }
}
