//! Run statistics and multi-run aggregation.
//!
//! The paper reports every number as a mean over 10 runs with a 90 %
//! confidence interval; [`summarize`] reproduces that (Student t with
//! `runs - 1` degrees of freedom).

use crate::ids::{MessageId, NodeId};
use crate::time::SimTime;
use std::collections::HashMap;

/// Lifecycle record of one end-to-end message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageRecord {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Creation time.
    pub created: SimTime,
    /// First delivery time at the destination, if any.
    pub delivered: Option<SimTime>,
    /// Hop count of the first delivered copy.
    pub hops: Option<u32>,
    /// Number of duplicate deliveries after the first.
    pub duplicate_deliveries: u32,
}

/// Everything measured during one simulation run.
///
/// Derives `PartialEq` so refactor-safety tests can assert that two runs
/// (e.g. grid- vs linear-indexed, serial vs parallel) are *bit-identical*,
/// not merely similar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    records: Vec<MessageRecord>,
    index: HashMap<MessageId, usize>,
    /// Data frames successfully delivered at the link layer.
    pub data_tx: u64,
    /// Control frames (acks, summary vectors, beacons) delivered.
    pub control_tx: u64,
    /// Frames lost to collisions.
    pub collisions: u64,
    /// Frames lost because the receiver had moved out of range.
    pub out_of_range: u64,
    /// Frames dropped at the sender because the transmit queue was full.
    pub queue_drops: u64,
    /// Messages dropped by protocols under storage pressure.
    pub storage_drops: u64,
    /// Per-node peak storage occupancy (messages).
    pub peak_storage: Vec<usize>,
    /// Free-form protocol event counters (e.g. `"glr.perturb"`), for
    /// diagnostics and the experiment reports.
    pub counters: HashMap<&'static str, u64>,
    /// Sum of per-sample mean storage occupancy, for averaging.
    storage_sample_sum: f64,
    storage_samples: u64,
}

impl RunStats {
    /// Creates stats for `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> Self {
        RunStats {
            peak_storage: vec![0; n_nodes],
            ..Default::default()
        }
    }

    /// Registers a message at creation time.
    pub fn register_message(&mut self, id: MessageId, src: NodeId, dst: NodeId, at: SimTime) {
        let rec = MessageRecord {
            src,
            dst,
            created: at,
            delivered: None,
            hops: None,
            duplicate_deliveries: 0,
        };
        let idx = self.records.len();
        self.records.push(rec);
        self.index.insert(id, idx);
    }

    /// Records a delivery at the destination. Duplicates are counted but do
    /// not change the first-delivery latency/hops.
    ///
    /// Unknown ids are ignored (a protocol bug, but stats must not panic
    /// mid-experiment; tests assert on counters instead).
    pub fn record_delivery(&mut self, id: MessageId, at: SimTime, hops: u32) {
        if let Some(&idx) = self.index.get(&id) {
            let rec = &mut self.records[idx];
            if rec.delivered.is_none() {
                rec.delivered = Some(at);
                rec.hops = Some(hops);
            } else {
                rec.duplicate_deliveries += 1;
            }
        }
    }

    /// Increments a named protocol event counter.
    pub fn count_event(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Value of a named protocol event counter (0 when never incremented).
    pub fn event_count(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The event counters sorted by name.
    ///
    /// [`RunStats::counters`] is a `HashMap`, so its iteration order
    /// varies run to run; every printed or serialised counter listing
    /// must go through this method (the output boundary) to stay
    /// deterministic.
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut entries: Vec<(&'static str, u64)> =
            self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Updates a node's storage occupancy sample.
    pub fn sample_storage(&mut self, node: NodeId, used: usize) {
        let i = node.index();
        if i < self.peak_storage.len() {
            self.peak_storage[i] = self.peak_storage[i].max(used);
        }
        self.storage_sample_sum += used as f64;
        self.storage_samples += 1;
    }

    /// All message records.
    pub fn records(&self) -> &[MessageRecord] {
        &self.records
    }

    /// Record for a specific message, if registered.
    pub fn record(&self, id: MessageId) -> Option<&MessageRecord> {
        self.index.get(&id).map(|&i| &self.records[i])
    }

    /// Number of messages injected.
    pub fn messages_created(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct messages delivered.
    pub fn messages_delivered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.delivered.is_some())
            .count()
    }

    /// Fraction of injected messages delivered, in `[0, 1]`; 1.0 for an
    /// empty workload.
    pub fn delivery_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.messages_delivered() as f64 / self.records.len() as f64
    }

    /// Mean creation-to-first-delivery latency over delivered messages, in
    /// seconds. `None` when nothing was delivered.
    pub fn avg_latency(&self) -> Option<f64> {
        let lat: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.delivered.map(|d| d - r.created))
            .collect();
        if lat.is_empty() {
            None
        } else {
            Some(lat.iter().sum::<f64>() / lat.len() as f64)
        }
    }

    /// Mean hop count of first deliveries. `None` when nothing delivered.
    pub fn avg_hops(&self) -> Option<f64> {
        let hops: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.hops.map(f64::from))
            .collect();
        if hops.is_empty() {
            None
        } else {
            Some(hops.iter().sum::<f64>() / hops.len() as f64)
        }
    }

    /// Largest peak storage occupancy over all nodes (messages).
    pub fn max_peak_storage(&self) -> usize {
        self.peak_storage.iter().copied().max().unwrap_or(0)
    }

    /// Mean of per-node peak storage occupancy (messages).
    pub fn avg_peak_storage(&self) -> f64 {
        if self.peak_storage.is_empty() {
            return 0.0;
        }
        self.peak_storage.iter().sum::<usize>() as f64 / self.peak_storage.len() as f64
    }

    /// Mean storage occupancy over all samples and nodes (messages).
    pub fn mean_storage_occupancy(&self) -> f64 {
        if self.storage_samples == 0 {
            0.0
        } else {
            self.storage_sample_sum / self.storage_samples as f64
        }
    }
}

/// A mean with its 90 % confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 90 % confidence interval (Student t).
    pub ci90: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Formats as `mean ± ci`, the way the paper's tables print values.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci90)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display(2))
    }
}

/// Two-sided 90 % Student-t quantiles (`t_{0.95, df}`) for df = 1..=30.
const T_95: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

/// Mean and 90 % confidence half-width of `samples` (Student t, matching
/// the paper's reporting).
///
/// With zero samples the result is `0 ± 0`; with one sample the CI is 0.
///
/// # Examples
///
/// ```
/// use glr_sim::summarize;
///
/// let s = summarize(&[10.0, 12.0, 11.0, 13.0, 9.0]);
/// assert!((s.mean - 11.0).abs() < 1e-12);
/// assert!(s.ci90 > 0.0);
/// ```
pub fn summarize(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            ci90: 0.0,
            n,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary { mean, ci90: 0.0, n };
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
    let df = n - 1;
    let t = if df <= 30 { T_95[df - 1] } else { 1.645 };
    Summary {
        mean,
        ci90: t * (var / n as f64).sqrt(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(src: u32, seq: u32) -> MessageId {
        MessageId {
            src: NodeId(src),
            seq,
        }
    }

    #[test]
    fn delivery_bookkeeping() {
        let mut s = RunStats::new(3);
        s.register_message(mid(0, 0), NodeId(0), NodeId(1), SimTime::from_secs(1.0));
        s.register_message(mid(0, 1), NodeId(0), NodeId(2), SimTime::from_secs(2.0));
        assert_eq!(s.delivery_ratio(), 0.0);
        s.record_delivery(mid(0, 0), SimTime::from_secs(11.0), 3);
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.delivery_ratio(), 0.5);
        assert_eq!(s.avg_latency(), Some(10.0));
        assert_eq!(s.avg_hops(), Some(3.0));
        // A duplicate doesn't change latency but is counted.
        s.record_delivery(mid(0, 0), SimTime::from_secs(50.0), 9);
        assert_eq!(s.avg_latency(), Some(10.0));
        assert_eq!(s.record(mid(0, 0)).unwrap().duplicate_deliveries, 1);
    }

    #[test]
    fn unknown_delivery_ignored() {
        let mut s = RunStats::new(2);
        s.record_delivery(mid(9, 9), SimTime::from_secs(1.0), 1);
        assert_eq!(s.messages_delivered(), 0);
    }

    #[test]
    fn empty_workload_ratio_is_one() {
        let s = RunStats::new(2);
        assert_eq!(s.delivery_ratio(), 1.0);
        assert_eq!(s.avg_latency(), None);
        assert_eq!(s.avg_hops(), None);
    }

    #[test]
    fn storage_peaks_and_means() {
        let mut s = RunStats::new(2);
        s.sample_storage(NodeId(0), 5);
        s.sample_storage(NodeId(0), 9);
        s.sample_storage(NodeId(0), 2);
        s.sample_storage(NodeId(1), 4);
        assert_eq!(s.max_peak_storage(), 9);
        assert_eq!(s.avg_peak_storage(), (9.0 + 4.0) / 2.0);
        assert_eq!(s.mean_storage_occupancy(), 5.0);
    }

    #[test]
    fn summary_basic_properties() {
        let s = summarize(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(summarize(&[]).mean, 0.0);
        assert_eq!(summarize(&[7.0]).ci90, 0.0);
    }

    #[test]
    fn summarize_zero_runs() {
        let s = summarize(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.n, 0);
        assert_eq!(s.display(2), "0.00 ± 0.00");
    }

    #[test]
    fn summarize_single_run_has_zero_width_ci() {
        let s = summarize(&[42.5]);
        assert_eq!(s.mean, 42.5);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn summarize_constant_metric_has_zero_width_ci() {
        // A metric identical across runs must report exactly 0 CI, with
        // no floating-point residue from the variance computation.
        for n in [2usize, 3, 10, 50] {
            let xs = vec![13.25; n];
            let s = summarize(&xs);
            assert_eq!(s.mean, 13.25, "n = {n}");
            assert_eq!(s.ci90, 0.0, "n = {n}");
            assert_eq!(s.n, n);
        }
    }

    #[test]
    fn counters_sorted_is_deterministic() {
        let mut s = RunStats::new(1);
        for name in ["glr.perturb", "ack", "zeta", "beacon.miss"] {
            s.count_event(name);
        }
        s.count_event("ack");
        let sorted = s.counters_sorted();
        let keys: Vec<&str> = sorted.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["ack", "beacon.miss", "glr.perturb", "zeta"]);
        assert_eq!(sorted[0].1, 2);
    }

    #[test]
    fn summary_matches_hand_computation() {
        // n = 10 like the paper: t_{0.95, 9} = 1.833.
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = summarize(&xs);
        assert!((s.mean - 5.5).abs() < 1e-12);
        let sd = (xs.iter().map(|x| (x - 5.5f64).powi(2)).sum::<f64>() / 9.0).sqrt();
        let want = 1.833 * sd / 10f64.sqrt();
        assert!((s.ci90 - want).abs() < 1e-9);
    }

    #[test]
    fn summary_display() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        let txt = s.display(1);
        assert!(txt.contains("2.0"));
        assert!(txt.contains("±"));
    }

    #[test]
    fn large_sample_uses_normal_quantile() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let s = summarize(&xs);
        assert!(s.ci90 > 0.0 && s.ci90 < 1.0);
    }
}
