//! The discrete-event simulation engine.
//!
//! This is the NS-2 substitute described in DESIGN.md: a deterministic
//! event-driven simulator with
//!
//! * piecewise-linear node mobility (sampled lazily from trajectories),
//! * a unit-disk radio with per-node FIFO transmit queues (capacity 150,
//!   like the paper's link-layer queue), serialisation at the configured
//!   data rate, carrier-sense backoff that grows with the number of
//!   concurrently-busy transmitters in range, and probabilistic collision
//!   loss that grows with the number of interferers near the receiver,
//! * IMEP-style neighbour sensing: periodic beacons carrying the sender's
//!   position and 1-hop table, maintaining per-node 1-hop and 2-hop
//!   neighbour tables with timestamps (so protocol views are *stale*, as
//!   in the paper),
//! * workload injection and statistics collection.
//!
//! Protocols implement [`Protocol`] and interact with the world through
//! [`Ctx`]. All randomness flows from the seed in [`crate::SimConfig`], so
//! a run is a pure function of `(config, workload, protocol)`.

use crate::config::SimConfig;
use crate::ids::{MessageId, MessageInfo, NodeId};
use crate::stats::RunStats;
use crate::time::SimTime;
use crate::workload::Workload;
use glr_geometry::Point2;
use glr_mobility::{MobilityModel, RandomWaypoint, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Whether a frame carries user data or protocol control information
/// (acknowledgements, summary vectors, …). Only affects accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// End-to-end message payload.
    Data,
    /// Protocol control traffic.
    Control,
}

/// A neighbour-table entry: where a node was when we last heard it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// The neighbour.
    pub id: NodeId,
    /// Its position at the time of the beacon that created this entry.
    pub pos: Point2,
    /// When the information was obtained.
    pub heard_at: SimTime,
}

/// Error returned by [`Ctx::send`] when the link-layer queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link-layer transmit queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// A routing protocol instance running on one node.
///
/// One value of the implementing type exists per node; the simulator calls
/// the hooks below as events unfold. Default implementations make every
/// hook optional except message handling.
pub trait Protocol: Sized {
    /// The protocol's over-the-air packet type.
    type Packet: Clone + std::fmt::Debug;

    /// Called once at simulation start.
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self::Packet>) {
        let _ = ctx;
    }

    /// The workload created a new end-to-end message at this node.
    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo);

    /// A frame from `from` arrived at this node.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, from: NodeId, packet: Self::Packet);

    /// A node entered radio contact (its beacon was heard and it was not in
    /// the fresh neighbour table before).
    fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, Self::Packet>, nbr: NodeId) {
        let _ = (ctx, nbr);
    }

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Packet>, token: u64) {
        let _ = (ctx, token);
    }

    /// Number of end-to-end messages currently occupying this node's
    /// storage (Store + Cache for GLR, buffer for epidemic); sampled
    /// periodically for the storage statistics.
    fn storage_used(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Beacon(NodeId),
    TxComplete(NodeId),
    Timer(NodeId, u64),
    Inject(u32),
    StatsSample,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for QEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for QEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Radio
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Frame<Pk> {
    to: NodeId,
    packet: Pk,
    size: u32,
    kind: PacketKind,
    retries: u32,
}

/// Why a frame failed at the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameLoss {
    Collision,
    OutOfRange,
}

#[derive(Debug, Clone)]
struct Radio<Pk> {
    queue: VecDeque<Frame<Pk>>,
    current: Option<Frame<Pk>>,
}

impl<Pk> Default for Radio<Pk> {
    fn default() -> Self {
        Radio {
            queue: VecDeque::new(),
            current: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Core world state
// ---------------------------------------------------------------------------

struct Core<Pk> {
    config: SimConfig,
    trajectories: Vec<Trajectory>,
    now: SimTime,
    queue: BinaryHeap<Reverse<QEvent>>,
    seq: u64,
    radios: Vec<Radio<Pk>>,
    one_hop: Vec<Vec<NeighborEntry>>,
    two_hop: Vec<Vec<NeighborEntry>>,
    rng: StdRng,
    stats: RunStats,
}

impl<Pk: Clone + std::fmt::Debug> Core<Pk> {
    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(QEvent {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn pos(&self, node: NodeId, t: SimTime) -> Point2 {
        self.trajectories[node.index()].position_at(t.as_secs())
    }

    /// Nodes currently within `range` of `p`, excluding `except`.
    fn nodes_within(&self, p: Point2, range: f64, except: NodeId) -> Vec<NodeId> {
        let t = self.now;
        (0..self.config.n_nodes as u32)
            .map(NodeId)
            .filter(|&v| v != except && self.pos(v, t).dist(p) <= range)
            .collect()
    }

    /// Number of other nodes actively transmitting within `range` of `p`.
    fn busy_transmitters_near(&self, p: Point2, range: f64, except: NodeId) -> usize {
        let t = self.now;
        (0..self.config.n_nodes as u32)
            .map(NodeId)
            .filter(|&v| {
                v != except
                    && self.radios[v.index()].current.is_some()
                    && self.pos(v, t).dist(p) <= range
            })
            .count()
    }

    fn start_tx_if_idle(&mut self, u: NodeId) {
        let ui = u.index();
        if self.radios[ui].current.is_some() || self.radios[ui].queue.is_empty() {
            return;
        }
        let frame = self.radios[ui].queue.pop_front().expect("queue non-empty");
        let pos_u = self.pos(u, self.now);
        // Carrier sense: back off proportionally to busy transmitters in a
        // two-radius neighbourhood, plus random jitter of one slot.
        let contention =
            self.busy_transmitters_near(pos_u, 2.0 * self.config.radio_range, u) as f64;
        let jitter: f64 = self.rng.random_range(0.0..=1.0);
        let access = self.config.mac_slot * (contention + jitter);
        let duration = self.config.tx_time(frame.size);
        let done = self.now + access + duration;
        self.radios[ui].current = Some(frame);
        self.schedule(done, EventKind::TxComplete(u));
    }

    /// Queue a frame for transmission from `u`. Control frames are short
    /// (acks, summary vectors) and jump ahead of queued data — modelling
    /// the MAC-level priority short frames enjoy in practice; without it,
    /// custody acknowledgements would sit behind seconds of queued data
    /// and every cache timeout would fork a duplicate copy.
    fn enqueue_frame(&mut self, u: NodeId, frame: Frame<Pk>) -> Result<(), QueueFull> {
        let ui = u.index();
        if self.radios[ui].queue.len() >= self.config.queue_limit {
            self.stats.queue_drops += 1;
            return Err(QueueFull);
        }
        match frame.kind {
            PacketKind::Control => {
                // Behind any already-queued control frames, ahead of data.
                let at = self.radios[ui]
                    .queue
                    .iter()
                    .position(|f| f.kind == PacketKind::Data)
                    .unwrap_or(self.radios[ui].queue.len());
                self.radios[ui].queue.insert(at, frame);
            }
            PacketKind::Data => self.radios[ui].queue.push_back(frame),
        }
        self.start_tx_if_idle(u);
        Ok(())
    }

    /// Fresh (non-expired) one-hop entries for `u`.
    fn fresh_one_hop(&self, u: NodeId) -> Vec<NeighborEntry> {
        let horizon = self.now.as_secs() - self.config.neighbor_ttl;
        self.one_hop[u.index()]
            .iter()
            .filter(|e| e.heard_at.as_secs() >= horizon)
            .copied()
            .collect()
    }

    /// Fresh two-hop entries for `u` (excluding `u` itself and its one-hop
    /// neighbours' duplicates — the freshest entry per id wins).
    fn fresh_view(&self, u: NodeId) -> Vec<NeighborEntry> {
        let horizon = self.now.as_secs() - self.config.neighbor_ttl;
        let mut best: std::collections::HashMap<NodeId, NeighborEntry> = Default::default();
        for e in self.one_hop[u.index()]
            .iter()
            .chain(self.two_hop[u.index()].iter())
        {
            if e.heard_at.as_secs() < horizon || e.id == u {
                continue;
            }
            match best.get(&e.id) {
                Some(cur) if cur.heard_at >= e.heard_at => {}
                _ => {
                    best.insert(e.id, *e);
                }
            }
        }
        let mut out: Vec<NeighborEntry> = best.into_values().collect();
        out.sort_by_key(|e| e.id);
        out
    }

    fn upsert(table: &mut Vec<NeighborEntry>, entry: NeighborEntry) {
        match table.iter_mut().find(|e| e.id == entry.id) {
            Some(e) => {
                if entry.heard_at >= e.heard_at {
                    *e = entry;
                }
            }
            None => table.push(entry),
        }
    }
}

// ---------------------------------------------------------------------------
// Ctx — the protocol's window on the world
// ---------------------------------------------------------------------------

/// The environment handed to every [`Protocol`] hook: clock, position,
/// neighbour tables, radio, timers, RNG, and statistics reporting.
pub struct Ctx<'a, Pk> {
    core: &'a mut Core<Pk>,
    me: NodeId,
}

impl<'a, Pk: Clone + std::fmt::Debug> Ctx<'a, Pk> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The run configuration (node count, region, radio range, …). The
    /// paper lets nodes use these global constants for the copy-count
    /// decision ("any node can calculate the network connectivity and the
    /// node density").
    pub fn config(&self) -> &SimConfig {
        &self.core.config
    }

    /// This node's own (GPS) position — always accurate.
    pub fn my_pos(&self) -> Point2 {
        self.core.pos(self.me, self.core.now)
    }

    /// Ground-truth position of an arbitrary node.
    ///
    /// Protocols may only use this where the paper grants an oracle: the
    /// "source knows the true destination location" assumption and the
    /// Table 2 "all nodes know" scenario. Everything else must go through
    /// [`Ctx::neighbors`]/[`Ctx::local_view`] or protocol-level location
    /// diffusion.
    pub fn true_pos(&self, node: NodeId) -> Point2 {
        self.core.pos(node, self.core.now)
    }

    /// Fresh one-hop neighbour entries (positions are as of each
    /// neighbour's last beacon, so up to `beacon_interval` stale).
    pub fn neighbors(&self) -> Vec<NeighborEntry> {
        self.core.fresh_one_hop(self.me)
    }

    /// Fresh merged 1- and 2-hop entries — the "distance two neighbourhood
    /// information" the paper's nodes collect to build the LDTG.
    pub fn local_view(&self) -> Vec<NeighborEntry> {
        self.core.fresh_view(self.me)
    }

    /// Queues a unicast frame to `to`.
    ///
    /// Delivery is not guaranteed: the frame can be lost to collisions or
    /// because `to` moved out of range; the sender is *not* notified
    /// (protocols needing reliability implement acknowledgements, as GLR's
    /// custody transfer does).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the link-layer queue already holds
    /// `queue_limit` frames; the frame is dropped, matching NS-2's
    /// drop-tail `IFq` behaviour.
    pub fn send(
        &mut self,
        to: NodeId,
        packet: Pk,
        size: u32,
        kind: PacketKind,
    ) -> Result<(), QueueFull> {
        self.core.enqueue_frame(
            self.me,
            Frame {
                to,
                packet,
                size,
                kind,
                retries: 0,
            },
        )
    }

    /// Number of frames waiting in this node's transmit queue.
    pub fn tx_queue_len(&self) -> usize {
        self.core.radios[self.me.index()].queue.len()
    }

    /// Schedules [`Protocol::on_timer`] with `token` after `delay` seconds.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(delay >= 0.0, "timer delay must be non-negative");
        let at = self.core.now + delay;
        self.core.schedule(at, EventKind::Timer(self.me, token));
    }

    /// Reports end-to-end delivery of `id` at this node (call at the
    /// destination, first reception; duplicates are tolerated and counted).
    pub fn deliver(&mut self, id: MessageId, hops: u32) {
        let now = self.core.now;
        self.core.stats.record_delivery(id, now, hops);
    }

    /// Reports that this node dropped a stored message under storage
    /// pressure (Figure 7 accounting).
    pub fn report_storage_drop(&mut self) {
        self.core.stats.storage_drops += 1;
    }

    /// Increments a named protocol event counter (diagnostics; shows up in
    /// [`crate::RunStats::counters`]).
    pub fn count_event(&mut self, name: &'static str) {
        self.core.stats.count_event(name);
    }

    /// Deterministic per-run random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// A complete simulation: world, protocols, workload and statistics.
///
/// # Examples
///
/// A protocol that does nothing still compiles and runs:
///
/// ```
/// use glr_sim::{Ctx, MessageInfo, NodeId, Protocol, SimConfig, Simulation, Workload};
///
/// struct Idle;
/// impl Protocol for Idle {
///     type Packet = ();
///     fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
///     fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
/// }
///
/// let cfg = SimConfig::paper(100.0, 1).with_duration(30.0);
/// let wl = Workload::paper_style(50, 10, 1000);
/// let stats = Simulation::new(cfg, wl, |_, _| Idle).run();
/// assert_eq!(stats.messages_created(), 10);
/// assert_eq!(stats.delivery_ratio(), 0.0);
/// ```
pub struct Simulation<P: Protocol> {
    core: Core<P::Packet>,
    protocols: Vec<Option<P>>,
    workload: Workload,
    message_ids: Vec<MessageId>,
}

impl<P: Protocol> Simulation<P> {
    /// Builds a simulation. `factory` constructs the protocol instance for
    /// each node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the workload references
    /// nodes outside `0..n_nodes`.
    pub fn new(
        config: SimConfig,
        workload: Workload,
        mut factory: impl FnMut(NodeId, &SimConfig) -> P,
    ) -> Self {
        config.validate();
        for m in workload.messages() {
            assert!(
                m.src.index() < config.n_nodes && m.dst.index() < config.n_nodes,
                "workload references node outside deployment"
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let model = RandomWaypoint::new(
            config.region,
            config.speed_range.0,
            config.speed_range.1,
            config.pause_time,
        );
        let trajectories =
            model.deployment(config.region, config.n_nodes, config.sim_duration, &mut rng);
        let n = config.n_nodes;
        let protocols = (0..n as u32)
            .map(|i| Some(factory(NodeId(i), &config)))
            .collect();
        let message_ids = (0..workload.len()).map(|i| workload.message_id(i)).collect();
        let core = Core {
            stats: RunStats::new(n),
            trajectories,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            radios: (0..n).map(|_| Radio::default()).collect(),
            one_hop: vec![Vec::new(); n],
            two_hop: vec![Vec::new(); n],
            rng,
            config,
        };
        Simulation {
            core,
            protocols,
            workload,
            message_ids,
        }
    }

    fn with_protocol<R>(
        core: &mut Core<P::Packet>,
        protocols: &mut [Option<P>],
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Packet>) -> R,
    ) -> R {
        let mut p = protocols[node.index()]
            .take()
            .expect("re-entrant protocol invocation");
        let mut ctx = Ctx { core, me: node };
        let r = f(&mut p, &mut ctx);
        protocols[node.index()] = Some(p);
        r
    }

    /// Runs the simulation to completion and returns the statistics.
    pub fn run(mut self) -> RunStats {
        let duration = self.core.config.sim_duration;
        let n = self.core.config.n_nodes;

        // Phase-staggered beacons.
        for i in 0..n as u32 {
            let phase =
                self.core.config.beacon_interval * (i as f64 + 1.0) / (n as f64 + 1.0);
            self.core
                .schedule(SimTime::from_secs(phase), EventKind::Beacon(NodeId(i)));
        }
        // Workload injections.
        for (i, m) in self.workload.messages().iter().enumerate() {
            self.core.schedule(m.at, EventKind::Inject(i as u32));
        }
        // Storage sampling.
        self.core.schedule(
            SimTime::from_secs(self.core.config.stats_interval),
            EventKind::StatsSample,
        );

        // Init hooks.
        for i in 0..n as u32 {
            Self::with_protocol(&mut self.core, &mut self.protocols, NodeId(i), |p, ctx| {
                p.on_init(ctx)
            });
        }

        while let Some(&Reverse(ev)) = self.core.queue.peek() {
            if ev.at.as_secs() > duration {
                break;
            }
            self.core.queue.pop();
            self.core.now = ev.at;
            match ev.kind {
                EventKind::Beacon(u) => self.handle_beacon(u),
                EventKind::TxComplete(u) => self.handle_tx_complete(u),
                EventKind::Timer(u, token) => {
                    Self::with_protocol(&mut self.core, &mut self.protocols, u, |p, ctx| {
                        p.on_timer(ctx, token)
                    });
                }
                EventKind::Inject(i) => self.handle_inject(i as usize),
                EventKind::StatsSample => {
                    for i in 0..n {
                        let used = self.protocols[i]
                            .as_ref()
                            .expect("protocol present")
                            .storage_used();
                        self.core.stats.sample_storage(NodeId(i as u32), used);
                    }
                    let next = self.core.now + self.core.config.stats_interval;
                    self.core.schedule(next, EventKind::StatsSample);
                }
            }
        }
        self.core.stats
    }

    fn handle_beacon(&mut self, u: NodeId) {
        let now = self.core.now;
        let pos_u = self.core.pos(u, now);
        let range = self.core.config.radio_range;
        let mut receivers = self.core.nodes_within(pos_u, range, u);
        receivers.sort_unstable();
        // Snapshot of u's one-hop table rides along in the beacon (2-hop info).
        let snapshot = self.core.fresh_one_hop(u);
        self.core.stats.control_tx += 1;

        let horizon = now.as_secs() - self.core.config.neighbor_ttl;
        for v in receivers {
            let vi = v.index();
            let was_fresh = self.core.one_hop[vi]
                .iter()
                .any(|e| e.id == u && e.heard_at.as_secs() >= horizon);
            Core::<P::Packet>::upsert(
                &mut self.core.one_hop[vi],
                NeighborEntry {
                    id: u,
                    pos: pos_u,
                    heard_at: now,
                },
            );
            for e in &snapshot {
                if e.id != v {
                    Core::<P::Packet>::upsert(&mut self.core.two_hop[vi], *e);
                }
            }
            // Garbage-collect expired entries occasionally to bound memory.
            self.core.one_hop[vi].retain(|e| e.heard_at.as_secs() >= horizon);
            self.core.two_hop[vi].retain(|e| e.heard_at.as_secs() >= horizon);
            if !was_fresh {
                Self::with_protocol(&mut self.core, &mut self.protocols, v, |p, ctx| {
                    p.on_neighbor_appeared(ctx, u)
                });
            }
        }
        let next = now + self.core.config.beacon_interval;
        self.core.schedule(next, EventKind::Beacon(u));
    }

    fn handle_tx_complete(&mut self, u: NodeId) {
        let frame = self.core.radios[u.index()]
            .current
            .take()
            .expect("TxComplete without a frame in flight");
        let now = self.core.now;
        let pos_u = self.core.pos(u, now);
        let to = frame.to;
        let pos_to = self.core.pos(to, now);
        let range = self.core.config.radio_range;

        let failure = if pos_u.dist(pos_to) > range {
            Some(FrameLoss::OutOfRange)
        } else {
            // Interference near the receiver (includes hidden terminals).
            let k = self.core.busy_transmitters_near(pos_to, range, u);
            let p_loss = 1.0 - (1.0 - self.core.config.collision_prob).powi(k as i32);
            if k > 0 && self.core.rng.random_range(0.0..1.0) < p_loss {
                Some(FrameLoss::Collision)
            } else {
                None
            }
        };

        if let Some(loss) = failure {
            match loss {
                FrameLoss::Collision => self.core.stats.collisions += 1,
                FrameLoss::OutOfRange => self.core.stats.out_of_range += 1,
            }
            // 802.11-style ARQ: retry with exponential backoff until the
            // retry budget is spent; the radio stays busy meanwhile
            // (head-of-line blocking, the paper's contention mechanism).
            if frame.retries < self.core.config.mac_retries {
                let mut frame = frame;
                frame.retries += 1;
                let slots = (1u32 << frame.retries.min(10)) as f64;
                let jitter: f64 = self.core.rng.random_range(0.0..=1.0);
                let backoff = self.core.config.mac_slot * slots * (1.0 + jitter);
                let duration = self.core.config.tx_time(frame.size);
                let done = now + backoff + duration;
                self.core.radios[u.index()].current = Some(frame);
                self.core.schedule(done, EventKind::TxComplete(u));
                return;
            }
            self.core.start_tx_if_idle(u);
            return;
        }

        {
            let frame = frame;
            match frame.kind {
                PacketKind::Data => self.core.stats.data_tx += 1,
                PacketKind::Control => self.core.stats.control_tx += 1,
            }
            // Hearing a frame also refreshes the receiver's entry for the
            // sender (data exchange doubles as location exchange, as in the
            // paper's IMEP adaptation).
            Core::<P::Packet>::upsert(
                &mut self.core.one_hop[to.index()],
                NeighborEntry {
                    id: u,
                    pos: pos_u,
                    heard_at: now,
                },
            );
            Self::with_protocol(&mut self.core, &mut self.protocols, to, |p, ctx| {
                p.on_packet(ctx, u, frame.packet)
            });
        }
        self.core.start_tx_if_idle(u);
    }

    fn handle_inject(&mut self, i: usize) {
        let m = self.workload.messages()[i];
        let id = self.message_ids[i];
        let now = self.core.now;
        self.core.stats.register_message(id, m.src, m.dst, now);
        let info = MessageInfo {
            id,
            dst: m.dst,
            size: m.size,
            created: now,
        };
        Self::with_protocol(&mut self.core, &mut self.protocols, m.src, |p, ctx| {
            p.on_message_created(ctx, info)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMessage;

    /// Forwards every created message straight to the destination if it is
    /// currently a fresh neighbour; delivers on reception.
    struct DirectSend;

    #[derive(Debug, Clone)]
    struct DirectPacket {
        info: MessageInfo,
        hops: u32,
    }

    impl Protocol for DirectSend {
        type Packet = DirectPacket;

        fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
            // Ground-truth check: if destination in range, send directly.
            let dst = info.dst;
            if ctx.true_pos(dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
                let _ = ctx.send(dst, DirectPacket { info, hops: 1 }, info.size, PacketKind::Data);
            }
        }

        fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, _from: NodeId, pkt: Self::Packet) {
            if pkt.info.dst == ctx.me() {
                ctx.deliver(pkt.info.id, pkt.hops);
            }
        }
    }

    fn cfg_retries() -> u64 {
        SimConfig::paper(100.0, 0).mac_retries as u64
    }

    fn two_node_config(seed: u64) -> SimConfig {
        let mut c = SimConfig::paper(250.0, seed).with_duration(50.0);
        c.n_nodes = 2;
        c.region = glr_mobility::Region::new(100.0, 100.0); // always in range
        c
    }

    #[test]
    fn direct_delivery_between_close_nodes() {
        let cfg = two_node_config(3);
        let wl = Workload::single(NodeId(0), NodeId(1), 5.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| DirectSend).run();
        assert_eq!(stats.messages_created(), 1);
        assert_eq!(stats.messages_delivered(), 1);
        let lat = stats.avg_latency().unwrap();
        // One frame: ~8.4 ms serialisation plus sub-slot jitter.
        assert!(lat > 0.0 && lat < 0.1, "latency {lat}");
        assert_eq!(stats.avg_hops(), Some(1.0));
        assert_eq!(stats.data_tx, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = Workload::paper_style(50, 50, 1000);
        let cfg = SimConfig::paper(150.0, 77).with_duration(120.0);
        let s1 = Simulation::new(cfg.clone(), wl.clone(), |_, _| DirectSend).run();
        let s2 = Simulation::new(cfg, wl, |_, _| DirectSend).run();
        assert_eq!(s1.messages_delivered(), s2.messages_delivered());
        assert_eq!(s1.data_tx, s2.data_tx);
        assert_eq!(s1.collisions, s2.collisions);
        assert_eq!(s1.avg_latency(), s2.avg_latency());
    }

    #[test]
    fn different_seeds_differ() {
        let wl = Workload::paper_style(50, 100, 1000);
        let a = Simulation::new(
            SimConfig::paper(100.0, 1).with_duration(150.0),
            wl.clone(),
            |_, _| DirectSend,
        )
        .run();
        let b = Simulation::new(
            SimConfig::paper(100.0, 2).with_duration(150.0),
            wl,
            |_, _| DirectSend,
        )
        .run();
        // Different topologies/movement: delivered counts almost surely differ.
        assert_ne!(
            (a.messages_delivered(), a.data_tx),
            (b.messages_delivered(), b.data_tx)
        );
    }

    #[test]
    fn neighbor_tables_fill_and_expire() {
        struct Spy {
            appeared: usize,
        }
        impl Protocol for Spy {
            type Packet = ();
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, ()>, nbr: NodeId) {
                self.appeared += 1;
                // The new neighbour must be in the fresh table.
                assert!(ctx.neighbors().iter().any(|e| e.id == nbr));
            }
        }
        let cfg = two_node_config(5);
        let stats = Simulation::new(cfg, Workload::default(), |_, _| Spy { appeared: 0 }).run();
        // No messages, but beacons flowed.
        assert!(stats.control_tx > 0);
    }

    #[test]
    fn queue_limit_enforced() {
        struct Flooder;
        impl Protocol for Flooder {
            type Packet = u32;
            fn on_message_created(&mut self, ctx: &mut Ctx<'_, u32>, _info: MessageInfo) {
                // Stuff far more frames than the queue can hold.
                let mut sent = 0;
                let mut dropped = 0;
                for i in 0..400u32 {
                    match ctx.send(NodeId(1), i, 1000, PacketKind::Data) {
                        Ok(()) => sent += 1,
                        Err(QueueFull) => dropped += 1,
                    }
                }
                // One frame goes straight into the transmitter, 150 queue.
                assert_eq!(sent, 151);
                assert_eq!(dropped, 249);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
        }
        let cfg = two_node_config(9);
        let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| Flooder).run();
        assert_eq!(stats.queue_drops, 249);
        assert_eq!(stats.data_tx, 151);
    }

    #[test]
    fn out_of_range_frames_are_lost() {
        struct SendAnyway;
        impl Protocol for SendAnyway {
            type Packet = ();
            fn on_message_created(&mut self, ctx: &mut Ctx<'_, ()>, _info: MessageInfo) {
                let _ = ctx.send(NodeId(1), (), 1000, PacketKind::Data);
            }
            fn on_packet(&mut self, ctx: &mut Ctx<'_, ()>, _: NodeId, _: ()) {
                // Should never happen.
                panic!("frame delivered beyond radio range at {}", ctx.now());
            }
        }
        // Tiny range in a huge region: the two nodes are almost surely far
        // apart at injection time.
        let mut cfg = SimConfig::paper(1.0, 1234).with_duration(20.0);
        cfg.n_nodes = 2;
        cfg.region = glr_mobility::Region::new(100_000.0, 100_000.0);
        let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| SendAnyway).run();
        // The initial attempt plus every ARQ retry fails out of range.
        assert_eq!(stats.out_of_range, 1 + cfg_retries());
        assert_eq!(stats.data_tx, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProto {
            log: Vec<u64>,
        }
        impl Protocol for TimerProto {
            type Packet = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(3.0, 30);
                ctx.set_timer(1.0, 10);
                ctx.set_timer(2.0, 20);
            }
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                self.log.push(token);
                assert!((ctx.now().as_secs() - (token as f64) / 10.0).abs() < 1e-9);
                if token == 10 && self.log.len() == 1 {
                    ctx.set_timer(0.5, 15);
                }
            }
        }
        let cfg = two_node_config(2);
        // No workload; run the timers only. We can't extract protocol state
        // after run(), so assertions live inside the hooks; the ordering
        // check is the token/now consistency assert above plus token 15
        // firing between 10 and 20 (guarded by set_timer placement).
        let _ = Simulation::new(cfg, Workload::default(), |_, _| TimerProto { log: Vec::new() })
            .run();
    }

    #[test]
    fn storage_sampling_reaches_stats() {
        struct Hoarder;
        impl Protocol for Hoarder {
            type Packet = ();
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn storage_used(&self) -> usize {
                7
            }
        }
        let cfg = two_node_config(4);
        let stats = Simulation::new(cfg, Workload::default(), |_, _| Hoarder).run();
        assert_eq!(stats.max_peak_storage(), 7);
        assert_eq!(stats.avg_peak_storage(), 7.0);
        assert_eq!(stats.mean_storage_occupancy(), 7.0);
    }

    #[test]
    #[should_panic(expected = "outside deployment")]
    fn workload_bounds_checked() {
        let cfg = two_node_config(1);
        let wl = Workload::new(vec![WorkloadMessage {
            at: SimTime::from_secs(1.0),
            src: NodeId(0),
            dst: NodeId(9),
            size: 10,
        }]);
        Simulation::new(cfg, wl, |_, _| DirectSend);
    }
}
