//! The discrete-event simulation engine.
//!
//! This is the NS-2 substitute described in DESIGN.md, composed from the
//! layered modules of this crate:
//!
//! * [`crate::event`] — the deterministic event queue (time-ordered,
//!   FIFO within a timestamp);
//! * [`crate::world`] — shared world state: clock, piecewise-linear node
//!   mobility (sampled lazily from trajectories), the spatial index, the
//!   run RNG, and statistics;
//! * [`crate::space`] — grid-indexed proximity queries with a linear-scan
//!   reference backend;
//! * [`crate::medium`] — the pluggable radio/PHY layer
//!   ([`ContentionMedium`] by default: FIFO transmit queues,
//!   serialisation, carrier-sense backoff, ARQ, probabilistic collision
//!   loss);
//! * [`crate::neighbors`] — IMEP-style beacon sensing maintaining stale
//!   1- and 2-hop neighbour tables.
//!
//! The engine itself (this module) only sequences events: it drains
//! everything due at the next timestamp into a batch (time-then-FIFO
//! order preserved), advances the clock, and dispatches each event to
//! the medium, the neighbour tables, the workload, or a protocol hook.
//! Under [`crate::EngineKind::Parallel`] a wide beacon's per-receiver
//! reception merges — disjoint, randomness-free, statistics-free — are
//! fanned in fixed chunks across a persistent [`WorkerPool`] (parked
//! workers spawned lazily on the first wide event and reused for the
//! whole run, sized by the [`crate::ThreadBudget`] in the
//! configuration), and everything order-sensitive (protocol hooks,
//! stats, scheduling) commits in the exact sequential order afterwards;
//! the serial engine remains the reference and both are bit-identical
//! for any thread count and budget (`tests/engine_equivalence.rs`).
//! Protocols implement [`Protocol`] and interact with the world through
//! [`Ctx`]. All randomness flows from the seed in [`crate::SimConfig`],
//! so a run is a pure function of `(config, workload, protocol, seed)`
//! — under either spatial-index backend, either engine, and any
//! conforming medium.

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::ids::{MessageId, MessageInfo, NodeId};
use crate::medium::{ContentionMedium, Frame, Medium, PacketKind, QueueFull, TxResolution};
use crate::neighbors::{NeighborEntry, NeighborTables, NeighborsView, TableFootprint};
use crate::pool::WorkerPool;
use crate::stats::RunStats;
use crate::time::SimTime;
use crate::workload::Workload;
use crate::world::World;
use glr_geometry::Point2;
use glr_mobility::{MobilityModel, RandomWaypoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A routing protocol instance running on one node.
///
/// One value of the implementing type exists per node; the simulator calls
/// the hooks below as events unfold. Default implementations make every
/// hook optional except message handling.
pub trait Protocol: Sized {
    /// The protocol's over-the-air packet type (owned data: the engine
    /// stores frames in queues that outlive any borrow).
    type Packet: Clone + std::fmt::Debug + 'static;

    /// Called once at simulation start.
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self::Packet>) {
        let _ = ctx;
    }

    /// The workload created a new end-to-end message at this node.
    fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo);

    /// A frame from `from` arrived at this node.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, from: NodeId, packet: Self::Packet);

    /// A node entered radio contact (its beacon was heard and it was not in
    /// the fresh neighbour table before).
    fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, Self::Packet>, nbr: NodeId) {
        let _ = (ctx, nbr);
    }

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Packet>, token: u64) {
        let _ = (ctx, token);
    }

    /// Number of end-to-end messages currently occupying this node's
    /// storage (Store + Cache for GLR, buffer for epidemic); sampled
    /// periodically for the storage statistics.
    fn storage_used(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Core world state
// ---------------------------------------------------------------------------

struct Core<Pk> {
    world: World,
    events: EventQueue,
    medium: Box<dyn Medium<Pk>>,
    tables: NeighborTables,
    /// Persistent fan-out pool for [`crate::EngineKind::Parallel`]:
    /// sized by the configuration's engine × thread budget, spawned
    /// lazily on the first wide event, parked between events, joined on
    /// drop. Serial engines get an inert single-thread pool.
    pool: WorkerPool,
}

// ---------------------------------------------------------------------------
// Ctx — the protocol's window on the world
// ---------------------------------------------------------------------------

/// The environment handed to every [`Protocol`] hook: clock, position,
/// neighbour tables, radio, timers, RNG, and statistics reporting.
pub struct Ctx<'a, Pk> {
    core: &'a mut Core<Pk>,
    me: NodeId,
}

impl<'a, Pk: Clone + std::fmt::Debug> Ctx<'a, Pk> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.world.now
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The run configuration (node count, region, radio range, …). The
    /// paper lets nodes use these global constants for the copy-count
    /// decision ("any node can calculate the network connectivity and the
    /// node density").
    pub fn config(&self) -> &SimConfig {
        &self.core.world.config
    }

    /// This node's own (GPS) position — always accurate.
    pub fn my_pos(&self) -> Point2 {
        self.core.world.pos(self.me)
    }

    /// Ground-truth position of an arbitrary node.
    ///
    /// Protocols may only use this where the paper grants an oracle: the
    /// "source knows the true destination location" assumption and the
    /// Table 2 "all nodes know" scenario. Everything else must go through
    /// [`Ctx::neighbors`]/[`Ctx::local_view`] or protocol-level location
    /// diffusion.
    pub fn true_pos(&self, node: NodeId) -> Point2 {
        self.core.world.pos(node)
    }

    /// Fresh one-hop neighbour entries (positions are as of each
    /// neighbour's last beacon, so up to `beacon_interval` stale).
    ///
    /// The returned [`NeighborsView`] derefs to `[NeighborEntry]` and
    /// iterates by value like the `Vec` it replaced; under the default
    /// [`crate::TableBackend::Shared`] repeated calls within one event
    /// are `Arc` clones of a cached snapshot, not fresh allocations.
    pub fn neighbors(&mut self) -> NeighborsView {
        self.core.tables.fresh_one_hop(self.me, self.core.world.now)
    }

    /// Fresh merged 1- and 2-hop entries — the "distance two neighbourhood
    /// information" the paper's nodes collect to build the LDTG.
    pub fn local_view(&mut self) -> NeighborsView {
        self.core.tables.fresh_view(self.me, self.core.world.now)
    }

    /// Queues a unicast frame to `to`.
    ///
    /// Delivery is not guaranteed: the frame can be lost to collisions or
    /// because `to` moved out of range; the sender is *not* notified
    /// (protocols needing reliability implement acknowledgements, as GLR's
    /// custody transfer does).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the link-layer queue already holds
    /// `queue_limit` frames; the frame is dropped, matching NS-2's
    /// drop-tail `IFq` behaviour.
    pub fn send(
        &mut self,
        to: NodeId,
        packet: Pk,
        size: u32,
        kind: PacketKind,
    ) -> Result<(), QueueFull> {
        let started = self.core.medium.enqueue(
            &mut self.core.world,
            self.me,
            Frame {
                to,
                packet,
                size,
                kind,
                retries: 0,
            },
        )?;
        if let Some(at) = started {
            self.core
                .events
                .schedule(at, EventKind::TxComplete(self.me));
        }
        Ok(())
    }

    /// Number of frames waiting in this node's transmit queue.
    pub fn tx_queue_len(&self) -> usize {
        self.core.medium.queue_len(self.me)
    }

    /// Schedules [`Protocol::on_timer`] with `token` after `delay` seconds.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(delay >= 0.0, "timer delay must be non-negative");
        let at = self.core.world.now + delay;
        self.core
            .events
            .schedule(at, EventKind::Timer(self.me, token));
    }

    /// Reports end-to-end delivery of `id` at this node (call at the
    /// destination, first reception; duplicates are tolerated and counted).
    pub fn deliver(&mut self, id: MessageId, hops: u32) {
        let now = self.core.world.now;
        self.core.world.stats.record_delivery(id, now, hops);
    }

    /// Reports that this node dropped a stored message under storage
    /// pressure (Figure 7 accounting).
    pub fn report_storage_drop(&mut self) {
        self.core.world.stats.storage_drops += 1;
    }

    /// Increments a named protocol event counter (diagnostics; shows up in
    /// [`crate::RunStats::counters`]).
    pub fn count_event(&mut self, name: &'static str) {
        self.core.world.stats.count_event(name);
    }

    /// Deterministic per-run random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.world.rng
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

/// A complete simulation: world, medium, protocols, workload and
/// statistics.
///
/// # Examples
///
/// A protocol that does nothing still compiles and runs:
///
/// ```
/// use glr_sim::{Ctx, MessageInfo, NodeId, Protocol, SimConfig, Simulation, Workload};
///
/// struct Idle;
/// impl Protocol for Idle {
///     type Packet = ();
///     fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
///     fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
/// }
///
/// let cfg = SimConfig::paper(100.0, 1).with_duration(30.0);
/// let wl = Workload::paper_style(50, 10, 1000);
/// let stats = Simulation::new(cfg, wl, |_, _| Idle).run();
/// assert_eq!(stats.messages_created(), 10);
/// assert_eq!(stats.delivery_ratio(), 0.0);
/// ```
pub struct Simulation<P: Protocol> {
    core: Core<P::Packet>,
    protocols: Vec<Option<P>>,
    workload: Workload,
    message_ids: Vec<MessageId>,
    /// Reusable same-tick event batch (drained from the queue per loop
    /// turn, so a timestamp's events are one visible unit of work).
    batch: Vec<EventKind>,
    /// Reusable receiver buffer for beacon events.
    receivers: Vec<NodeId>,
    /// Reusable per-receiver freshness flags for batched reception.
    fresh: Vec<bool>,
}

impl<P: Protocol> Simulation<P> {
    /// Builds a simulation with the default [`ContentionMedium`].
    /// `factory` constructs the protocol instance for each node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the workload references
    /// nodes outside `0..n_nodes`.
    pub fn new(
        config: SimConfig,
        workload: Workload,
        factory: impl FnMut(NodeId, &SimConfig) -> P,
    ) -> Self {
        let medium = ContentionMedium::new(config.n_nodes);
        Simulation::with_medium(config, workload, factory, medium)
    }

    /// Builds a simulation over a custom radio [`Medium`] — the hook for
    /// alternate PHY models (ideal links, shadowing, duty cycling, …).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the workload references
    /// nodes outside `0..n_nodes`.
    pub fn with_medium(
        config: SimConfig,
        workload: Workload,
        factory: impl FnMut(NodeId, &SimConfig) -> P,
        medium: impl Medium<P::Packet> + 'static,
    ) -> Self {
        Simulation::with_boxed_medium(config, workload, factory, Box::new(medium))
    }

    /// Like [`Simulation::with_medium`] for an already-boxed medium — the
    /// entry point used by [`crate::MediumKind`], where the concrete
    /// medium type is chosen at run time.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the workload references
    /// nodes outside `0..n_nodes`.
    pub fn with_boxed_medium(
        config: SimConfig,
        workload: Workload,
        mut factory: impl FnMut(NodeId, &SimConfig) -> P,
        medium: Box<dyn Medium<P::Packet>>,
    ) -> Self {
        config.validate();
        for m in workload.messages() {
            assert!(
                m.src.index() < config.n_nodes && m.dst.index() < config.n_nodes,
                "workload references node outside deployment"
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let model = RandomWaypoint::new(
            config.region,
            config.speed_range.0,
            config.speed_range.1,
            config.pause_time,
        );
        let trajectories =
            model.deployment(config.region, config.n_nodes, config.sim_duration, &mut rng);
        let n = config.n_nodes;
        let protocols = (0..n as u32)
            .map(|i| Some(factory(NodeId(i), &config)))
            .collect();
        let message_ids = (0..workload.len())
            .map(|i| workload.message_id(i))
            .collect();
        let tables = NeighborTables::new(n, config.neighbor_ttl, config.neighbor_tables);
        // The pool asks the run's budget for the engine's threads; a
        // serial engine (or an exhausted budget) yields a one-thread
        // pool that never spawns anything.
        let pool = WorkerPool::from_budget(&config.thread_budget, config.engine.threads());
        let core = Core {
            world: World::new(config, trajectories, rng),
            events: EventQueue::new(),
            medium,
            tables,
            pool,
        };
        Simulation {
            core,
            protocols,
            workload,
            message_ids,
            batch: Vec::new(),
            receivers: Vec::new(),
            fresh: Vec::new(),
        }
    }

    fn with_protocol<R>(
        core: &mut Core<P::Packet>,
        protocols: &mut [Option<P>],
        node: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Packet>) -> R,
    ) -> R {
        let mut p = protocols[node.index()]
            .take()
            .expect("re-entrant protocol invocation");
        let mut ctx = Ctx { core, me: node };
        let r = f(&mut p, &mut ctx);
        protocols[node.index()] = Some(p);
        r
    }

    /// Runs the simulation to completion and returns the statistics.
    pub fn run(self) -> RunStats {
        self.run_inspect(|_| {})
    }

    /// Like [`Simulation::run`], additionally handing the finished
    /// simulation to `inspect` before it is torn down — the hook for
    /// end-of-run telemetry that is not part of [`RunStats`] (and must
    /// not be, since `RunStats` equality underpins the engine/backend
    /// equivalence guarantees), such as
    /// [`Simulation::neighbor_footprint`].
    pub fn run_inspect(mut self, inspect: impl FnOnce(&Self)) -> RunStats {
        let duration = self.core.world.config.sim_duration;
        let n = self.core.world.config.n_nodes;

        // Phase-staggered beacons.
        for i in 0..n as u32 {
            let phase =
                self.core.world.config.beacon_interval * (i as f64 + 1.0) / (n as f64 + 1.0);
            self.core
                .events
                .schedule(SimTime::from_secs(phase), EventKind::Beacon(NodeId(i)));
        }
        // Workload injections.
        for (i, m) in self.workload.messages().iter().enumerate() {
            self.core.events.schedule(m.at, EventKind::Inject(i as u32));
        }
        // Storage sampling.
        self.core.events.schedule(
            SimTime::from_secs(self.core.world.config.stats_interval),
            EventKind::StatsSample,
        );

        // Init hooks.
        for i in 0..n as u32 {
            Self::with_protocol(&mut self.core, &mut self.protocols, NodeId(i), |p, ctx| {
                p.on_init(ctx)
            });
        }

        // Batched same-tick delivery: drain *everything* due at one
        // timestamp (FIFO order preserved), then dispatch the batch in
        // order. Events a handler schedules at the same timestamp carry
        // later sequence numbers, so they drain on the next loop turn —
        // after the current batch, exactly where the one-at-a-time
        // reference loop would run them. The batch buffer is reused
        // across the whole run.
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(at) = self.core.events.next_at() {
            if at.as_secs() > duration {
                break;
            }
            batch.clear();
            self.core.events.drain_due(at, &mut batch);
            self.core.world.now = at;
            for &ev in &batch {
                match ev {
                    EventKind::Beacon(u) => self.handle_beacon(u),
                    EventKind::TxComplete(u) => self.handle_tx_complete(u),
                    EventKind::Timer(u, token) => {
                        Self::with_protocol(&mut self.core, &mut self.protocols, u, |p, ctx| {
                            p.on_timer(ctx, token)
                        });
                    }
                    EventKind::Inject(i) => self.handle_inject(i as usize),
                    EventKind::StatsSample => {
                        for i in 0..n {
                            let used = self.protocols[i]
                                .as_ref()
                                .expect("protocol present")
                                .storage_used();
                            self.core.world.stats.sample_storage(NodeId(i as u32), used);
                        }
                        let next = self.core.world.now + self.core.world.config.stats_interval;
                        self.core.events.schedule(next, EventKind::StatsSample);
                    }
                }
            }
        }
        self.batch = batch;
        inspect(&self);
        self.core.world.stats
    }

    /// Heap-memory telemetry of the neighbour tables (per-node protocol
    /// state) — read it at end of run via [`Simulation::run_inspect`].
    pub fn neighbor_footprint(&self) -> TableFootprint {
        self.core.tables.footprint()
    }

    /// What the neighbour tables' live content would occupy under the
    /// PR-4 memory layout — the baseline for
    /// [`Simulation::neighbor_footprint`].
    pub fn neighbor_footprint_baseline(&self) -> usize {
        self.core.tables.baseline_footprint_bytes()
    }

    fn handle_beacon(&mut self, u: NodeId) {
        let now = self.core.world.now;
        let pos_u = self.core.world.pos(u);
        let range = self.core.world.config.radio_range;
        let mut receivers = std::mem::take(&mut self.receivers);
        self.core
            .world
            .nodes_within_into(pos_u, range, u, &mut receivers);
        // Snapshot of u's one-hop table rides along in the beacon (2-hop
        // info) — materialised once and shared by every receiver.
        let snapshot = self.core.tables.beacon_snapshot(u, now);
        self.core.world.stats.control_tx += 1;

        let sender = NeighborEntry {
            id: u,
            pos: pos_u,
            heard_at: now,
        };
        // Deterministic (possibly parallel) reception. Compute phase:
        // the per-receiver snapshot merges commute (each touches only
        // its receiver's table, draws no randomness, counts no
        // statistics), so fanning them across the run's persistent
        // worker pool in fixed chunks — engaged only for receiver sets
        // wide enough to repay dispatch — is observably identical to
        // the single-worker ascending loop. Commit phase: everything
        // order-sensitive — new-contact protocol hooks, with their
        // sends, timers and RNG draws — replays in exact sequential
        // order.
        let pool = self.core.pool.clone();
        let wide = pool.threads() > 1 && receivers.len() >= self.core.world.config.parallel_grain;
        let mut fresh = std::mem::take(&mut self.fresh);
        self.core.tables.record_beacon_batch(
            &receivers,
            sender,
            &snapshot,
            now,
            if wide { Some(&pool) } else { None },
            &mut fresh,
        );
        for (i, &v) in receivers.iter().enumerate() {
            if !fresh[i] {
                Self::with_protocol(&mut self.core, &mut self.protocols, v, |p, ctx| {
                    p.on_neighbor_appeared(ctx, u)
                });
            }
        }
        self.fresh = fresh;
        let next = now + self.core.world.config.beacon_interval;
        self.core.events.schedule(next, EventKind::Beacon(u));
        self.receivers = receivers;
    }

    fn handle_tx_complete(&mut self, u: NodeId) {
        match self.core.medium.tx_complete(&mut self.core.world, u) {
            TxResolution::Retrying { at } => {
                self.core.events.schedule(at, EventKind::TxComplete(u));
            }
            TxResolution::Lost => self.start_next_tx(u),
            TxResolution::Delivered {
                to,
                packet,
                from_pos,
                kind,
            } => {
                // Delivery accounting is the engine's job (media build
                // the resolution; wrappers may veto it).
                match kind {
                    PacketKind::Data => self.core.world.stats.data_tx += 1,
                    PacketKind::Control => self.core.world.stats.control_tx += 1,
                }
                // Hearing a frame also refreshes the receiver's entry for
                // the sender.
                self.core.tables.heard_frame(
                    to,
                    NeighborEntry {
                        id: u,
                        pos: from_pos,
                        heard_at: self.core.world.now,
                    },
                );
                Self::with_protocol(&mut self.core, &mut self.protocols, to, |p, ctx| {
                    p.on_packet(ctx, u, packet)
                });
                self.start_next_tx(u);
            }
        }
    }

    fn start_next_tx(&mut self, u: NodeId) {
        if let Some(at) = self.core.medium.start_next(&mut self.core.world, u) {
            self.core.events.schedule(at, EventKind::TxComplete(u));
        }
    }

    fn handle_inject(&mut self, i: usize) {
        let m = self.workload.messages()[i];
        let id = self.message_ids[i];
        let now = self.core.world.now;
        self.core
            .world
            .stats
            .register_message(id, m.src, m.dst, now);
        let info = MessageInfo {
            id,
            dst: m.dst,
            size: m.size,
            created: now,
        };
        Self::with_protocol(&mut self.core, &mut self.protocols, m.src, |p, ctx| {
            p.on_message_created(ctx, info)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadMessage;

    /// Forwards every created message straight to the destination if it is
    /// currently a fresh neighbour; delivers on reception.
    struct DirectSend;

    #[derive(Debug, Clone)]
    struct DirectPacket {
        info: MessageInfo,
        hops: u32,
    }

    impl Protocol for DirectSend {
        type Packet = DirectPacket;

        fn on_message_created(&mut self, ctx: &mut Ctx<'_, Self::Packet>, info: MessageInfo) {
            // Ground-truth check: if destination in range, send directly.
            let dst = info.dst;
            if ctx.true_pos(dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
                let _ = ctx.send(
                    dst,
                    DirectPacket { info, hops: 1 },
                    info.size,
                    PacketKind::Data,
                );
            }
        }

        fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Packet>, _from: NodeId, pkt: Self::Packet) {
            if pkt.info.dst == ctx.me() {
                ctx.deliver(pkt.info.id, pkt.hops);
            }
        }
    }

    fn cfg_retries() -> u64 {
        SimConfig::paper(100.0, 0).mac_retries as u64
    }

    fn two_node_config(seed: u64) -> SimConfig {
        let mut c = SimConfig::paper(250.0, seed).with_duration(50.0);
        c.n_nodes = 2;
        c.region = glr_mobility::Region::new(100.0, 100.0); // always in range
        c
    }

    #[test]
    fn direct_delivery_between_close_nodes() {
        let cfg = two_node_config(3);
        let wl = Workload::single(NodeId(0), NodeId(1), 5.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| DirectSend).run();
        assert_eq!(stats.messages_created(), 1);
        assert_eq!(stats.messages_delivered(), 1);
        let lat = stats.avg_latency().unwrap();
        // One frame: ~8.4 ms serialisation plus sub-slot jitter.
        assert!(lat > 0.0 && lat < 0.1, "latency {lat}");
        assert_eq!(stats.avg_hops(), Some(1.0));
        assert_eq!(stats.data_tx, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = Workload::paper_style(50, 50, 1000);
        let cfg = SimConfig::paper(150.0, 77).with_duration(120.0);
        let s1 = Simulation::new(cfg.clone(), wl.clone(), |_, _| DirectSend).run();
        let s2 = Simulation::new(cfg, wl, |_, _| DirectSend).run();
        assert_eq!(s1.messages_delivered(), s2.messages_delivered());
        assert_eq!(s1.data_tx, s2.data_tx);
        assert_eq!(s1.collisions, s2.collisions);
        assert_eq!(s1.avg_latency(), s2.avg_latency());
    }

    #[test]
    fn different_seeds_differ() {
        let wl = Workload::paper_style(50, 100, 1000);
        let a = Simulation::new(
            SimConfig::paper(100.0, 1).with_duration(150.0),
            wl.clone(),
            |_, _| DirectSend,
        )
        .run();
        let b = Simulation::new(
            SimConfig::paper(100.0, 2).with_duration(150.0),
            wl,
            |_, _| DirectSend,
        )
        .run();
        // Different topologies/movement: delivered counts almost surely differ.
        assert_ne!(
            (a.messages_delivered(), a.data_tx),
            (b.messages_delivered(), b.data_tx)
        );
    }

    #[test]
    fn grid_and_linear_scan_agree_exactly() {
        // The same seeds under both spatial-index backends must produce
        // bit-identical statistics (the grid is an exact index, not an
        // approximation).
        for seed in [5u64, 21, 99] {
            let wl = Workload::paper_style(50, 40, 1000);
            let cfg = SimConfig::paper(150.0, seed).with_duration(90.0);
            let grid = Simulation::new(
                cfg.clone().with_neighbor_index(crate::IndexBackend::Grid),
                wl.clone(),
                |_, _| DirectSend,
            )
            .run();
            let linear = Simulation::new(
                cfg.with_neighbor_index(crate::IndexBackend::LinearScan),
                wl,
                |_, _| DirectSend,
            )
            .run();
            assert_eq!(grid, linear, "backends diverged at seed {seed}");
        }
    }

    #[test]
    fn neighbor_tables_fill_and_expire() {
        struct Spy {
            appeared: usize,
        }
        impl Protocol for Spy {
            type Packet = ();
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_neighbor_appeared(&mut self, ctx: &mut Ctx<'_, ()>, nbr: NodeId) {
                self.appeared += 1;
                // The new neighbour must be in the fresh table.
                assert!(ctx.neighbors().iter().any(|e| e.id == nbr));
            }
        }
        let cfg = two_node_config(5);
        let stats = Simulation::new(cfg, Workload::default(), |_, _| Spy { appeared: 0 }).run();
        // No messages, but beacons flowed.
        assert!(stats.control_tx > 0);
    }

    #[test]
    fn queue_limit_enforced() {
        struct Flooder;
        impl Protocol for Flooder {
            type Packet = u32;
            fn on_message_created(&mut self, ctx: &mut Ctx<'_, u32>, _info: MessageInfo) {
                // Stuff far more frames than the queue can hold.
                let mut sent = 0;
                let mut dropped = 0;
                for i in 0..400u32 {
                    match ctx.send(NodeId(1), i, 1000, PacketKind::Data) {
                        Ok(()) => sent += 1,
                        Err(QueueFull) => dropped += 1,
                    }
                }
                // One frame goes straight into the transmitter, 150 queue.
                assert_eq!(sent, 151);
                assert_eq!(dropped, 249);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
        }
        let cfg = two_node_config(9);
        let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| Flooder).run();
        assert_eq!(stats.queue_drops, 249);
        assert_eq!(stats.data_tx, 151);
    }

    #[test]
    fn out_of_range_frames_are_lost() {
        struct SendAnyway;
        impl Protocol for SendAnyway {
            type Packet = ();
            fn on_message_created(&mut self, ctx: &mut Ctx<'_, ()>, _info: MessageInfo) {
                let _ = ctx.send(NodeId(1), (), 1000, PacketKind::Data);
            }
            fn on_packet(&mut self, ctx: &mut Ctx<'_, ()>, _: NodeId, _: ()) {
                // Should never happen.
                panic!("frame delivered beyond radio range at {}", ctx.now());
            }
        }
        // Tiny range in a huge region: the two nodes are almost surely far
        // apart at injection time.
        let mut cfg = SimConfig::paper(1.0, 1234).with_duration(20.0);
        cfg.n_nodes = 2;
        cfg.region = glr_mobility::Region::new(100_000.0, 100_000.0);
        let wl = Workload::single(NodeId(0), NodeId(1), 1.0, 1000);
        let stats = Simulation::new(cfg, wl, |_, _| SendAnyway).run();
        // The initial attempt plus every ARQ retry fails out of range.
        assert_eq!(stats.out_of_range, 1 + cfg_retries());
        assert_eq!(stats.data_tx, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProto {
            log: Vec<u64>,
        }
        impl Protocol for TimerProto {
            type Packet = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(3.0, 30);
                ctx.set_timer(1.0, 10);
                ctx.set_timer(2.0, 20);
            }
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                self.log.push(token);
                assert!((ctx.now().as_secs() - (token as f64) / 10.0).abs() < 1e-9);
                if token == 10 && self.log.len() == 1 {
                    ctx.set_timer(0.5, 15);
                }
            }
        }
        let cfg = two_node_config(2);
        // No workload; run the timers only. We can't extract protocol state
        // after run(), so assertions live inside the hooks; the ordering
        // check is the token/now consistency assert above plus token 15
        // firing between 10 and 20 (guarded by set_timer placement).
        let _ = Simulation::new(cfg, Workload::default(), |_, _| TimerProto {
            log: Vec::new(),
        })
        .run();
    }

    #[test]
    fn storage_sampling_reaches_stats() {
        struct Hoarder;
        impl Protocol for Hoarder {
            type Packet = ();
            fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn storage_used(&self) -> usize {
                7
            }
        }
        let cfg = two_node_config(4);
        let stats = Simulation::new(cfg, Workload::default(), |_, _| Hoarder).run();
        assert_eq!(stats.max_peak_storage(), 7);
        assert_eq!(stats.avg_peak_storage(), 7.0);
        assert_eq!(stats.mean_storage_occupancy(), 7.0);
    }

    #[test]
    #[should_panic(expected = "outside deployment")]
    fn workload_bounds_checked() {
        let cfg = two_node_config(1);
        let wl = Workload::new(vec![WorkloadMessage {
            at: SimTime::from_secs(1.0),
            src: NodeId(0),
            dst: NodeId(9),
            size: 10,
        }]);
        Simulation::new(cfg, wl, |_, _| DirectSend);
    }

    #[test]
    fn custom_medium_is_pluggable() {
        /// A lossless, contention-free medium: every frame arrives after
        /// pure serialisation time, regardless of distance.
        struct IdealMedium<Pk> {
            inner: ContentionMedium<Pk>,
        }
        impl<Pk: Clone + std::fmt::Debug> Medium<Pk> for IdealMedium<Pk> {
            fn enqueue(
                &mut self,
                world: &mut World,
                from: NodeId,
                frame: Frame<Pk>,
            ) -> Result<Option<SimTime>, QueueFull> {
                self.inner.enqueue(world, from, frame)
            }
            fn tx_complete(&mut self, world: &mut World, from: NodeId) -> TxResolution<Pk> {
                // Resolve through the contention model, then overrule any
                // loss: ideal radios always deliver.
                match self.inner.tx_complete(world, from) {
                    ok @ TxResolution::Delivered { .. } => ok,
                    _ => panic!("two static in-range nodes must never lose frames"),
                }
            }
            fn start_next(&mut self, world: &mut World, from: NodeId) -> Option<SimTime> {
                self.inner.start_next(world, from)
            }
            fn queue_len(&self, node: NodeId) -> usize {
                self.inner.queue_len(node)
            }
        }

        let cfg = two_node_config(8);
        let n = cfg.n_nodes;
        let wl = Workload::single(NodeId(0), NodeId(1), 5.0, 1000);
        let stats = Simulation::with_medium(
            cfg,
            wl,
            |_, _| DirectSend,
            IdealMedium {
                inner: ContentionMedium::new(n),
            },
        )
        .run();
        assert_eq!(stats.messages_delivered(), 1);
    }
}
