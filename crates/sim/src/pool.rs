//! Persistent worker pool and shared thread budget.
//!
//! PR 4's parallel engine spawned `std::thread::scope` workers per wide
//! event and tore them down again — at ~10 µs per spawn/join cycle the
//! fan-out barely broke even against the work it distributed. This
//! module replaces every scoped-spawn site with two pieces:
//!
//! * [`WorkerPool`] — a persistent pool of parked worker threads
//!   (std-only: channel-free `Mutex` + `Condvar`, since deps are
//!   vendored). Workers are spawned **lazily** on the first dispatch and
//!   then parked between dispatches, so a pool that never sees a wide
//!   event costs nothing, and one that does pays the spawn once per
//!   *run* instead of once per *event*. Dispatch is scoped: [`WorkerPool::run`]
//!   blocks until every task completed, so tasks may borrow caller
//!   state. The dispatching thread participates in draining the task
//!   queue — a pool of `k` threads is the caller plus `k - 1` parked
//!   workers, which is what makes pool sizes compose with a
//!   [`ThreadBudget`] (every claimant already owns one thread).
//! * [`ThreadBudget`] — a cloneable ledger of how many OS threads a
//!   whole experiment may use, shared by the sweep engine's outer
//!   `(cell, run)` workers and the engines' inner per-event fan-out.
//!   Claimants [`ThreadBudget::claim`] *extra* threads (beyond the one
//!   they run on) and get whatever is still unclaimed; dropping the
//!   [`BudgetLease`] returns them. A budget of 8 therefore yields
//!   4 sweep workers × 2-thread engines, or 1 runner × an 8-thread
//!   engine for a single 100k-node run — never 4 × 8 oversubscription.
//!
//! Determinism: the pool distributes *which thread runs a task*, never
//! what a task computes or the order results are committed — every call
//! site keeps collecting results by index (the sweep's unit slots, the
//! engine's in-order commit phase). Results are bit-identical for any
//! pool size, including the degenerate single-thread pool, which runs
//! tasks inline on the caller and never spawns anything.
//!
//! Panic safety: a panicking task marks its batch poisoned; the
//! dispatcher still waits for every other task of the batch to finish
//! (their borrows of caller state must end before `run` returns), then
//! panics with a clear message instead of deadlocking a commit phase on
//! a worker that will never report back.
//!
//! # Examples
//!
//! ```
//! use glr_sim::pool::{Task, ThreadBudget, WorkerPool};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = WorkerPool::with_threads(4);
//! let sum = AtomicUsize::new(0);
//! let tasks: Vec<Task<'_>> = (0..8)
//!     .map(|i| {
//!         let sum = &sum;
//!         Box::new(move || {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         }) as Task<'_>
//!     })
//!     .collect();
//! pool.run(tasks); // blocks until all 8 ran
//! assert_eq!(sum.load(Ordering::Relaxed), 28);
//!
//! // A budget of 8 shared by an outer layer (wants 4 extra) and two
//! // inner layers (want 2 extra each): the ledger grants 4 + 2 + 1.
//! let budget = ThreadBudget::total(8);
//! let outer = budget.claim(4);
//! let inner_a = budget.claim(2);
//! let inner_b = budget.claim(2);
//! assert_eq!(
//!     (outer.granted(), inner_a.granted(), inner_b.granted()),
//!     (4, 2, 1)
//! );
//! drop(inner_a); // returns 2 threads to the ledger
//! assert_eq!(budget.claim(9).granted(), 2);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of pool work: runs exactly once, on exactly one thread, before
/// [`WorkerPool::run`] returns.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

/// A shared ledger of how many OS threads an experiment may use in
/// total, drawn on by every layer that wants parallelism: the sweep
/// engine's outer `(cell, run)` workers and the simulation engines'
/// inner per-event fan-out.
///
/// Cloning shares the ledger (an `Arc`); a clone stored in
/// [`crate::SimConfig`] therefore draws from the same budget as the
/// [`crate::Sweep`] that spawned the run. Equality compares the *limit*
/// only (configurations with equal limits are interchangeable), never
/// the momentary claim state.
///
/// Every claimant is assumed to already own the thread it runs on, so
/// claims are for *extra* threads: a budget of `n` has `n - 1`
/// claimable threads (one is the root caller's own).
#[derive(Clone)]
pub struct ThreadBudget {
    /// `None` = unlimited (every claim granted in full) — the default,
    /// preserving pre-budget behaviour for standalone runs.
    ledger: Option<Arc<Ledger>>,
}

#[derive(Debug)]
struct Ledger {
    /// Total thread budget, including the root caller's own thread.
    total: usize,
    /// Extra threads currently claimed (of the `total - 1` claimable).
    taken: AtomicUsize,
}

impl ThreadBudget {
    /// An unlimited budget: every claim is granted in full. The default
    /// of [`crate::SimConfig`], preserving standalone-run behaviour
    /// (`EngineKind::Parallel(k)` really uses `k` threads).
    pub fn unlimited() -> Self {
        ThreadBudget { ledger: None }
    }

    /// A budget of `total` OS threads, shared by everything holding a
    /// clone.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` — the caller's own thread always exists.
    pub fn total(total: usize) -> Self {
        assert!(total >= 1, "a thread budget must include the caller");
        ThreadBudget {
            ledger: Some(Arc::new(Ledger {
                total,
                taken: AtomicUsize::new(0),
            })),
        }
    }

    /// The budget's total, or `None` when unlimited.
    pub fn limit(&self) -> Option<usize> {
        self.ledger.as_ref().map(|l| l.total)
    }

    /// Claims up to `want` extra threads (beyond the caller's own),
    /// granting whatever the ledger still has — possibly zero. The
    /// grant is returned to the ledger when the lease drops.
    ///
    /// Grants depend on what other claimants currently hold, i.e. on
    /// timing — which is safe precisely because results never depend on
    /// thread counts (the bit-identity guarantee every parallel path in
    /// this crate maintains).
    pub fn claim(&self, want: usize) -> BudgetLease {
        let Some(ledger) = &self.ledger else {
            return BudgetLease {
                granted: want,
                ledger: None,
            };
        };
        let claimable = ledger.total - 1;
        let mut cur = ledger.taken.load(Ordering::Relaxed);
        loop {
            let grant = want.min(claimable.saturating_sub(cur));
            if grant == 0 {
                return BudgetLease {
                    granted: 0,
                    ledger: None,
                };
            }
            match ledger.taken.compare_exchange_weak(
                cur,
                cur + grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return BudgetLease {
                        granted: grant,
                        ledger: Some(ledger.clone()),
                    }
                }
                Err(now) => cur = now,
            }
        }
    }
}

impl std::fmt::Debug for ThreadBudget {
    /// Prints the limit only — deliberately not the momentary claim
    /// state, so `Debug` output of configurations is stable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.limit() {
            None => f.write_str("ThreadBudget(unlimited)"),
            Some(n) => write!(f, "ThreadBudget(total={n})"),
        }
    }
}

impl PartialEq for ThreadBudget {
    fn eq(&self, other: &Self) -> bool {
        self.limit() == other.limit()
    }
}

impl Eq for ThreadBudget {}

/// A claim of extra threads from a [`ThreadBudget`]; returns them to
/// the ledger on drop.
#[derive(Debug)]
pub struct BudgetLease {
    granted: usize,
    ledger: Option<Arc<Ledger>>,
}

impl BudgetLease {
    /// How many extra threads the ledger granted (`<=` the claim).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        if let Some(ledger) = &self.ledger {
            ledger.taken.fetch_sub(self.granted, Ordering::AcqRel);
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A persistent pool of parked worker threads with scoped dispatch.
///
/// `WorkerPool::with_threads(k)` is a pool of `k` *compute* threads:
/// the dispatching caller plus `k - 1` workers, spawned lazily on the
/// first [`WorkerPool::run`] and parked on a condvar between
/// dispatches. Cloning shares the pool; the workers are joined when the
/// last clone drops.
///
/// A pool of one thread never spawns anything and runs every task
/// inline on the caller — the serial degradation path.
#[derive(Clone)]
pub struct WorkerPool {
    core: Arc<PoolCore>,
}

struct PoolCore {
    shared: Arc<Shared>,
    /// Worker threads this pool may spawn (`threads - 1`).
    workers: usize,
    /// Join handles of spawned workers (empty until first dispatch).
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Budget lease backing `workers`, if pool came from a budget;
    /// returned to the ledger when the pool drops.
    _lease: Option<BudgetLease>,
}

struct Shared {
    state: Mutex<TaskQueue>,
    /// Workers park here waiting for tasks (or shutdown).
    work: Condvar,
    /// Dispatchers park here waiting for their batch to complete.
    done: Condvar,
}

/// One `run` call's completion state.
struct Batch {
    /// Tasks of this batch not yet finished. Decremented under the pool
    /// mutex so a waiting dispatcher cannot miss the final notify.
    remaining: AtomicUsize,
    /// Set when any task of the batch panicked.
    panicked: AtomicBool,
}

#[derive(Default)]
struct TaskQueue {
    tasks: VecDeque<(Arc<Batch>, Task<'static>)>,
    shutdown: bool,
}

impl WorkerPool {
    /// A pool of `threads` compute threads (the caller plus
    /// `threads - 1` lazily-spawned workers).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "a pool includes the calling thread");
        WorkerPool {
            core: Arc::new(PoolCore {
                shared: Arc::new(Shared {
                    state: Mutex::new(TaskQueue::default()),
                    work: Condvar::new(),
                    done: Condvar::new(),
                }),
                workers: threads - 1,
                handles: Mutex::new(Vec::new()),
                _lease: None,
            }),
        }
    }

    /// A pool wanting `want_threads` compute threads, sized by what
    /// `budget` actually grants: the caller's own thread plus up to
    /// `want_threads - 1` claimed extras. The claim is held for the
    /// pool's lifetime and returned to the ledger when the pool drops.
    pub fn from_budget(budget: &ThreadBudget, want_threads: usize) -> Self {
        let lease = budget.claim(want_threads.saturating_sub(1));
        WorkerPool {
            core: Arc::new(PoolCore {
                shared: Arc::new(Shared {
                    state: Mutex::new(TaskQueue::default()),
                    work: Condvar::new(),
                    done: Condvar::new(),
                }),
                workers: lease.granted(),
                handles: Mutex::new(Vec::new()),
                _lease: Some(lease),
            }),
        }
    }

    /// Compute threads this pool dispatches across (caller + workers).
    pub fn threads(&self) -> usize {
        self.core.workers + 1
    }

    /// Whether the worker threads have been spawned yet (false until
    /// the first multi-task dispatch, and always false for a
    /// single-thread pool).
    pub fn is_started(&self) -> bool {
        !self.core.handles.lock().expect("pool mutex").is_empty()
    }

    /// Runs every task to completion, distributing them across the
    /// pool's threads; the caller participates. Blocks until all tasks
    /// finished, so tasks may borrow caller state.
    ///
    /// # Panics
    ///
    /// If any task panics, `run` waits for the rest of the batch to
    /// finish (their borrows must end) and then panics.
    pub fn run<'scope>(&self, tasks: Vec<Task<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        // Serial degradation: a single-thread pool (or single task)
        // runs inline — no spawn, no queue, no synchronisation.
        if self.core.workers == 0 || tasks.len() == 1 {
            for task in tasks {
                task();
            }
            return;
        }
        self.core.ensure_started();
        let batch = Arc::new(Batch {
            remaining: AtomicUsize::new(tasks.len()),
            panicked: AtomicBool::new(false),
        });
        let shared = &self.core.shared;
        {
            let mut q = shared.state.lock().expect("pool mutex");
            for task in tasks {
                // SAFETY: erasing the `'scope` lifetime to store the
                // task in the long-lived queue. Sound because this very
                // call blocks until `batch.remaining == 0`, i.e. until
                // every task has finished running — no task (or borrow
                // inside it) outlives the `'scope` the caller holds.
                // On panic the wait still happens before unwinding.
                let task: Task<'static> =
                    unsafe { std::mem::transmute::<Task<'scope>, Task<'static>>(task) };
                q.tasks.push_back((batch.clone(), task));
            }
        }
        shared.work.notify_all();
        // Work the queue ourselves until it drains (tasks of concurrent
        // dispatchers included — helping them can never hurt, and our
        // own batch cannot finish while queued tasks remain unclaimed).
        loop {
            let next = {
                let mut q = shared.state.lock().expect("pool mutex");
                q.tasks.pop_front()
            };
            match next {
                Some((b, task)) => Shared::execute(shared, &b, task),
                None => break,
            }
        }
        // Wait for tasks still running on workers.
        let mut q = shared.state.lock().expect("pool mutex");
        while batch.remaining.load(Ordering::Acquire) != 0 {
            q = shared.done.wait(q).expect("pool mutex");
        }
        drop(q);
        if batch.panicked.load(Ordering::Relaxed) {
            panic!("worker pool task panicked (run poisoned; see worker backtrace above)");
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("started", &self.is_started())
            .finish()
    }
}

impl PoolCore {
    /// Spawns the worker threads on first use.
    fn ensure_started(&self) {
        let mut handles = self.handles.lock().expect("pool mutex");
        if !handles.is_empty() {
            return;
        }
        for i in 0..self.workers {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("glr-pool-{i}"))
                .spawn(move || Shared::worker_loop(&shared))
                .expect("spawn pool worker");
            handles.push(handle);
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut q = self.shared.state.lock().expect("pool mutex");
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.get_mut().expect("pool mutex").drain(..) {
            let _ = handle.join();
        }
    }
}

impl Shared {
    /// Runs one task and reports completion to its batch. Panics are
    /// caught so the batch always completes (a deadlocked dispatcher
    /// would be strictly worse than a poisoned one).
    fn execute(shared: &Shared, batch: &Batch, task: Task<'static>) {
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            batch.panicked.store(true, Ordering::Relaxed);
        }
        // Decrement under the mutex: a dispatcher checks `remaining`
        // only while holding it, so the final notify cannot be missed.
        let q = shared.state.lock().expect("pool mutex");
        let was = batch.remaining.fetch_sub(1, Ordering::AcqRel);
        drop(q);
        if was == 1 {
            shared.done.notify_all();
        }
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let next = {
                let mut q = shared.state.lock().expect("pool mutex");
                loop {
                    if let Some(item) = q.tasks.pop_front() {
                        break Some(item);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = shared.work.wait(q).expect("pool mutex");
                }
            };
            match next {
                Some((batch, task)) => Shared::execute(shared, &batch, task),
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn count_tasks(pool: &WorkerPool, n: usize) -> usize {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..n)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::with_threads(4);
        assert_eq!(count_tasks(&pool, 64), 64);
        // The pool is persistent: a second dispatch reuses the workers.
        assert!(pool.is_started());
        assert_eq!(count_tasks(&pool, 3), 3);
    }

    #[test]
    fn tasks_may_mutate_disjoint_borrows() {
        let pool = WorkerPool::with_threads(3);
        let mut data = vec![0u64; 12];
        let tasks: Vec<Task<'_>> = data
            .chunks_mut(4)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for v in chunk.iter_mut() {
                        *v = i as u64 + 1;
                    }
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn single_thread_pool_runs_inline_and_never_spawns() {
        let pool = WorkerPool::with_threads(1);
        let caller = std::thread::current().id();
        let mut ran_on = None;
        pool.run(vec![Box::new(|| {
            ran_on = Some(std::thread::current().id());
        }) as Task<'_>]);
        assert_eq!(ran_on, Some(caller));
        assert!(!pool.is_started());
        assert_eq!(count_tasks(&pool, 10), 10);
        assert!(!pool.is_started(), "single-thread pool must stay inline");
    }

    #[test]
    fn pool_is_lazy_until_first_wide_dispatch() {
        let pool = WorkerPool::with_threads(4);
        assert!(!pool.is_started());
        // A single task stays inline even on a wide pool.
        assert_eq!(count_tasks(&pool, 1), 1);
        assert!(!pool.is_started());
        assert_eq!(count_tasks(&pool, 2), 2);
        assert!(pool.is_started());
    }

    #[test]
    fn clones_share_the_pool() {
        let pool = WorkerPool::with_threads(3);
        let clone = pool.clone();
        assert_eq!(count_tasks(&clone, 8), 8);
        assert!(pool.is_started());
        assert_eq!(pool.threads(), clone.threads());
    }

    #[test]
    fn panicking_task_poisons_the_batch_without_deadlock() {
        let pool = WorkerPool::with_threads(4);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Task<'_>> = Vec::new();
            tasks.push(Box::new(|| panic!("boom")) as Task<'_>);
            for _ in 0..7 {
                let completed = &completed;
                tasks.push(Box::new(move || {
                    completed.fetch_add(1, Ordering::Relaxed);
                }) as Task<'_>);
            }
            pool.run(tasks);
        }));
        let err = result.expect_err("panic must propagate to the dispatcher");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("worker pool task panicked"), "got {msg:?}");
        // Every non-panicking task still ran (the batch completed).
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives a poisoned batch.
        assert_eq!(count_tasks(&pool, 5), 5);
    }

    #[test]
    fn budget_grants_and_releases() {
        let budget = ThreadBudget::total(8);
        assert_eq!(budget.limit(), Some(8));
        let a = budget.claim(3);
        assert_eq!(a.granted(), 3);
        let b = budget.claim(7);
        assert_eq!(b.granted(), 4, "only 7 extras exist; 3 are taken");
        assert_eq!(budget.claim(1).granted(), 0);
        drop(a);
        assert_eq!(budget.claim(9).granted(), 3);
    }

    #[test]
    fn unlimited_budget_grants_everything() {
        let budget = ThreadBudget::unlimited();
        assert_eq!(budget.limit(), None);
        assert_eq!(budget.claim(100).granted(), 100);
        assert_eq!(budget.claim(100).granted(), 100);
    }

    #[test]
    fn budget_of_one_degrades_pools_to_serial() {
        let budget = ThreadBudget::total(1);
        let pool = WorkerPool::from_budget(&budget, 8);
        assert_eq!(pool.threads(), 1);
        assert_eq!(count_tasks(&pool, 6), 6);
        assert!(!pool.is_started(), "budget of 1 must never spawn threads");
    }

    #[test]
    fn budget_pools_return_their_claim_on_drop() {
        let budget = ThreadBudget::total(4);
        let pool = WorkerPool::from_budget(&budget, 4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(budget.claim(3).granted(), 0);
        drop(pool);
        assert_eq!(budget.claim(3).granted(), 3);
    }

    #[test]
    fn budget_equality_ignores_claim_state() {
        let a = ThreadBudget::total(4);
        let b = ThreadBudget::total(4);
        let _lease = a.claim(2);
        assert_eq!(a, b);
        assert_ne!(a, ThreadBudget::total(5));
        assert_ne!(a, ThreadBudget::unlimited());
        assert_eq!(format!("{a:?}"), "ThreadBudget(total=4)");
    }
}
