//! A deterministic timed priority queue: the engine's event-queue
//! backbone, exposed for reuse and isolated benchmarking.
//!
//! [`TimedQueue`] orders items by `(time, insertion sequence)` — time
//! ascending, FIFO within a timestamp — exactly the discipline the
//! simulator's determinism guarantee rests on. It is a hand-rolled
//! **4-ary min-heap** rather than `BinaryHeap<Reverse<…>>`: the flatter
//! tree halves the sift depth, sifts touch adjacent slots (one cache
//! line holds several children), and no `Reverse` wrapper or re-push is
//! needed anywhere. The sift loops compare single packed `u128` keys,
//! pick each level's minimum child by pairwise tournament (two
//! independent first-round compares instead of a serial min scan — the
//! fix for the small-heap regression where the dependent-compare chain,
//! not cache misses, dominated) and index uncheckedly along the
//! invariant-guarded sift path. [`TimedQueue::drain_due`] pops *every*
//! item due at one timestamp in a single call — the batch pop the
//! engine's same-tick delivery loop is built on.
//!
//! Every key is unique (the sequence number breaks all ties), so the pop
//! order is the fully sorted order regardless of internal layout: two
//! heaps fed the same schedule always drain identically.
//!
//! # Examples
//!
//! ```
//! use glr_sim::{SimTime, TimedQueue};
//!
//! let mut q = TimedQueue::new();
//! q.schedule(SimTime::from_secs(2.0), "late");
//! q.schedule(SimTime::from_secs(1.0), "first");
//! q.schedule(SimTime::from_secs(1.0), "second");
//!
//! let mut batch = Vec::new();
//! let at = q.next_at().unwrap();
//! q.drain_due(at, &mut batch);
//! assert_eq!(batch, vec!["first", "second"]); // FIFO within the tick
//! assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
//! ```

use crate::time::SimTime;

/// Branching factor of the heap. Four keeps the tree shallow while a
/// parent's children still share a cache line or two.
const ARITY: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Slot<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> Slot<T> {
    /// Comparison key: time bits then sequence number, packed into one
    /// `u128`. `SimTime` guarantees non-negative finite values, whose
    /// IEEE bit patterns order identically to the values — so the sift
    /// loops compare a single integer (which compiles to a branchless
    /// two-word compare) instead of running float `partial_cmp` with
    /// its NaN branch, or a lexicographic tuple compare with its
    /// equality branch, on every step. The min-of-children scan in
    /// [`TimedQueue::pop`] turns into conditional moves this way — the
    /// fix for the small-heap regression where those data-dependent
    /// branches (not cache misses) dominated.
    #[inline]
    fn key(&self) -> u128 {
        (u128::from(self.at.key_bits()) << 64) | u128::from(self.seq)
    }
}

/// A deterministic min-heap of timed items: pops in time order, FIFO
/// within equal timestamps.
///
/// Items are `Copy` (the engine's event kinds are a few words) so the
/// sift loops can move elements through a register-held hole instead of
/// swapping through memory.
#[derive(Debug, Clone)]
pub struct TimedQueue<T: Copy> {
    slots: Vec<Slot<T>>,
    seq: u64,
}

impl<T: Copy> Default for TimedQueue<T> {
    fn default() -> Self {
        TimedQueue {
            slots: Vec::new(),
            seq: 0,
        }
    }
}

impl<T: Copy> TimedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        TimedQueue::default()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Schedules `item` at time `at`. Items scheduled at equal times pop
    /// in scheduling order.
    pub fn schedule(&mut self, at: SimTime, item: T) {
        self.seq += 1;
        self.slots.push(Slot {
            at,
            seq: self.seq,
            item,
        });
        self.sift_up(self.slots.len() - 1);
    }

    /// Due time of the next item without removing it.
    #[inline]
    pub fn next_at(&self) -> Option<SimTime> {
        self.slots.first().map(|s| s.at)
    }

    /// Removes and returns the next `(time, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let last = self.slots.pop()?;
        let Some(&top) = self.slots.first() else {
            return Some((last.at, last.item));
        };
        // Bounce the hole from the root to a leaf along minimum
        // children (no comparison against `last` on the way down), then
        // sift `last` back up from there. `last` came from the deepest
        // layer, so the up-pass almost always stops immediately —
        // fewer comparisons than a guarded sink on every level. The
        // min-of-children scan keeps the running minimum's key in a
        // register (one load + one compare per child, no re-reads of
        // the current minimum slot) and uses unchecked indexing: the
        // data-dependent sift path made the bounds-check branches a
        // measurable fraction of a pop on small, cache-resident heaps.
        let n = self.slots.len();
        let slots = self.slots.as_mut_slice();
        let mut i = 0;
        // Full levels (all ARITY children present): a pairwise
        // tournament instead of a linear min scan — the two first-round
        // compares are independent, which roughly halves the
        // data-dependent latency chain the linear scan suffered.
        // SAFETY (both loops): child indices are `< n` by the loop
        // conditions; `i` starts at 0 on a non-empty slice and is then
        // a previous in-range child.
        loop {
            let c = i * ARITY + 1;
            if c + ARITY > n {
                break;
            }
            unsafe {
                let (k0, k1) = (
                    slots.get_unchecked(c).key(),
                    slots.get_unchecked(c + 1).key(),
                );
                let (k2, k3) = (
                    slots.get_unchecked(c + 2).key(),
                    slots.get_unchecked(c + 3).key(),
                );
                let (ka, ia) = if k1 < k0 { (k1, c + 1) } else { (k0, c) };
                let (kb, ib) = if k3 < k2 { (k3, c + 3) } else { (k2, c + 2) };
                let min = if kb < ka { ib } else { ia };
                *slots.get_unchecked_mut(i) = *slots.get_unchecked(min);
                i = min;
            }
        }
        // At most one partial level remains.
        let first_child = i * ARITY + 1;
        if first_child < n {
            let last_child = (first_child + ARITY).min(n);
            unsafe {
                let mut min = first_child;
                let mut min_key = slots.get_unchecked(first_child).key();
                for c in first_child + 1..last_child {
                    let key = slots.get_unchecked(c).key();
                    if key < min_key {
                        min = c;
                        min_key = key;
                    }
                }
                *slots.get_unchecked_mut(i) = *slots.get_unchecked(min);
                i = min;
            }
        }
        slots[i] = last;
        self.sift_up(i);
        Some((top.at, top.item))
    }

    /// Pops every item due exactly at `at` (in FIFO order) onto the end
    /// of `out`, returning how many were appended. Callers reusing `out`
    /// as a batch buffer clear it first.
    pub fn drain_due(&mut self, at: SimTime, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while self.next_at() == Some(at) {
            let (_, item) = self.pop().expect("peeked item vanished");
            out.push(item);
            n += 1;
        }
        n
    }

    /// Moves the element at `i` toward the root until its parent is
    /// smaller, shifting displaced parents down through a hole.
    fn sift_up(&mut self, mut i: usize) {
        let slots = self.slots.as_mut_slice();
        // SAFETY: `i` starts in range (callers pass an index < len) and
        // only ever decreases (`parent < i`).
        unsafe {
            let slot = *slots.get_unchecked(i);
            let key = slot.key();
            while i > 0 {
                let parent = (i - 1) / ARITY;
                if key < slots.get_unchecked(parent).key() {
                    *slots.get_unchecked_mut(i) = *slots.get_unchecked(parent);
                    i = parent;
                } else {
                    break;
                }
            }
            *slots.get_unchecked_mut(i) = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_sorted_with_fifo_ties() {
        let mut q = TimedQueue::new();
        for (at, v) in [(3.0, 30), (1.0, 10), (2.0, 20), (1.0, 11), (3.0, 31)] {
            q.schedule(SimTime::from_secs(at), v);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![10, 11, 20, 30, 31]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_due_takes_exactly_one_tick() {
        let mut q = TimedQueue::new();
        let t1 = SimTime::from_secs(1.0);
        q.schedule(SimTime::from_secs(2.0), "b");
        q.schedule(t1, "a1");
        q.schedule(t1, "a2");
        q.schedule(t1, "a3");
        let mut batch = Vec::new();
        assert_eq!(q.drain_due(t1, &mut batch), 3);
        assert_eq!(batch, vec!["a1", "a2", "a3"]);
        assert_eq!(q.len(), 1);
        // Draining a time with nothing due is a no-op.
        assert_eq!(q.drain_due(t1, &mut batch), 0);
        assert_eq!(q.next_at(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn matches_reference_sort_on_many_interleaved_ops() {
        // Pseudo-random schedule/pop interleaving vs a sorted reference.
        let mut q = TimedQueue::new();
        let mut reference: Vec<(u64, u64, u32)> = Vec::new(); // (time_key, seq, item)
        let mut state = 0x1234_5678_u64;
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let t = (state >> 33) % 50;
            seq += 1;
            q.schedule(SimTime::from_secs(t as f64), seq as u32);
            reference.push((t, seq, seq as u32));
            if state.is_multiple_of(3) {
                if let Some((_, v)) = q.pop() {
                    popped.push(v);
                    reference.sort_unstable();
                    expected.push(reference.remove(0).2);
                }
            }
        }
        reference.sort_unstable();
        while let Some((_, v)) = q.pop() {
            popped.push(v);
            expected.push(reference.remove(0).2);
        }
        assert_eq!(popped, expected);
    }
}
