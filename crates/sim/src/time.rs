//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// A thin wrapper over `f64` providing total ordering (simulation times are
/// always finite) so it can key the event queue.
///
/// # Examples
///
/// ```
/// use glr_sim::SimTime;
///
/// let t = SimTime::ZERO + 1.5;
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > SimTime::ZERO);
/// assert_eq!((t - SimTime::ZERO), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "simulation time must be finite and non-negative, got {secs}"
        );
        // Normalise -0.0 (it passes the assert) to +0.0 so that the IEEE
        // bit pattern of a SimTime always orders like its value — the
        // invariant SimTime::key_bits and the event queue rely on.
        SimTime(secs + 0.0)
    }

    /// The value's IEEE bit pattern, which for the non-negative finite
    /// times this type guarantees orders exactly like the value itself —
    /// a branchless `u64` stand-in for `Ord` on hot comparison paths.
    #[inline]
    pub fn key_bits(self) -> u64 {
        self.0.to_bits()
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

// SimTime is guaranteed finite by construction, so ordering is total.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("simulation times are finite")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.5);
        assert!(a < b);
        assert_eq!(b - a, 1.5);
        assert_eq!(a + 1.5, b);
        let mut c = a;
        c += 0.5;
        assert_eq!(c.as_secs(), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250s");
    }
}
