//! The discrete-event queue: event kinds over the deterministic
//! time-then-FIFO [`TimedQueue`].
//!
//! Events at equal timestamps pop in scheduling order (the queue's
//! monotone sequence number breaks ties), which is what makes a run a
//! pure function of its inputs: no ordering is ever left to the heap's
//! whim. [`EventQueue::drain_due`] hands the engine everything due at
//! one timestamp as a batch — the unit the batched-delivery loop and
//! the parallel reception phase operate on.

use crate::ids::NodeId;
use crate::queue::TimedQueue;
use crate::time::SimTime;

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Node broadcasts its IMEP-style neighbour-sensing beacon.
    Beacon(NodeId),
    /// The frame in flight at this node's radio finishes transmitting.
    TxComplete(NodeId),
    /// A protocol timer set through `Ctx::set_timer` fires.
    Timer(NodeId, u64),
    /// The workload injects message `i`.
    Inject(u32),
    /// Periodic storage-occupancy sampling.
    StatsSample,
}

/// The simulation's future: a deterministic min-heap of [`EventKind`]s.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    q: TimedQueue<EventKind>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at time `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.q.schedule(at, kind);
    }

    /// Due time of the next event without removing it.
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        self.q.next_at()
    }

    /// Removes and returns the next event.
    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.q.pop()
    }

    /// Pops every event due exactly at `at` (in FIFO order) onto the end
    /// of `out`. Events a handler schedules *at the same timestamp*
    /// while the batch runs are not in it — they drain on the next loop
    /// turn, after the current batch, exactly where the one-at-a-time
    /// reference loop would process them.
    pub(crate) fn drain_due(&mut self, at: SimTime, out: &mut Vec<EventKind>) {
        self.q.drain_due(at, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), EventKind::StatsSample);
        q.schedule(SimTime::from_secs(1.0), EventKind::Beacon(NodeId(1)));
        q.schedule(SimTime::from_secs(1.0), EventKind::Beacon(NodeId(2)));
        assert_eq!(q.next_at(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.pop().unwrap().1, EventKind::Beacon(NodeId(1)));
        assert_eq!(q.pop().unwrap().1, EventKind::Beacon(NodeId(2)));
        assert_eq!(q.pop().unwrap().1, EventKind::StatsSample);
        assert!(q.pop().is_none());
        assert_eq!(q.next_at(), None);
    }

    #[test]
    fn drain_due_batches_one_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, EventKind::Beacon(NodeId(1)));
        q.schedule(SimTime::from_secs(2.0), EventKind::StatsSample);
        q.schedule(t, EventKind::TxComplete(NodeId(3)));
        let mut batch = Vec::new();
        q.drain_due(t, &mut batch);
        assert_eq!(
            batch,
            vec![
                EventKind::Beacon(NodeId(1)),
                EventKind::TxComplete(NodeId(3))
            ]
        );
        assert_eq!(q.next_at(), Some(SimTime::from_secs(2.0)));
    }
}
