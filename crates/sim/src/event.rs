//! The discrete-event queue: event kinds and a deterministic
//! time-then-FIFO priority queue.
//!
//! Events at equal timestamps pop in scheduling order (a monotone
//! sequence number breaks ties), which is what makes a run a pure
//! function of its inputs: no ordering is ever left to the heap's whim.

use crate::ids::NodeId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Node broadcasts its IMEP-style neighbour-sensing beacon.
    Beacon(NodeId),
    /// The frame in flight at this node's radio finishes transmitting.
    TxComplete(NodeId),
    /// A protocol timer set through `Ctx::set_timer` fires.
    Timer(NodeId, u64),
    /// The workload injects message `i`.
    Inject(u32),
    /// Periodic storage-occupancy sampling.
    StatsSample,
}

/// An event with its due time and tie-breaking sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QEvent {
    pub(crate) at: SimTime,
    seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for QEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for QEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulation's future: a min-heap of [`QEvent`]s.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<QEvent>>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at time `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(QEvent {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// Due time of the next event without removing it.
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }

    /// Removes and returns the next event.
    pub(crate) fn pop(&mut self) -> Option<QEvent> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), EventKind::StatsSample);
        q.schedule(SimTime::from_secs(1.0), EventKind::Beacon(NodeId(1)));
        q.schedule(SimTime::from_secs(1.0), EventKind::Beacon(NodeId(2)));
        assert_eq!(q.next_at(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Beacon(NodeId(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Beacon(NodeId(2)));
        assert_eq!(q.pop().unwrap().kind, EventKind::StatsSample);
        assert!(q.pop().is_none());
        assert_eq!(q.next_at(), None);
    }
}
