//! Deterministic discrete-event DTN simulator — the NS-2 substitute for the
//! GLR reproduction.
//!
//! The paper evaluates GLR in NS-2 with full 802.11 PHY/MAC simulation.
//! This crate replaces that stack with a deterministic event-driven model
//! that preserves the causal mechanisms the results depend on:
//!
//! * **intermittent connectivity** — unit-disk radio over random-waypoint
//!   mobility, sampled lazily from piecewise-linear trajectories;
//! * **contention** — per-node FIFO transmit queues (capacity 150 frames,
//!   Table 1), 1 Mbps serialisation, carrier-sense backoff scaled by busy
//!   transmitters in range, and collision loss scaled by interferers near
//!   the receiver (hidden terminals included);
//! * **approximate neighbourhood knowledge** — IMEP-style beacons carrying
//!   the sender's position and 1-hop table, maintaining stale-by-design
//!   1- and 2-hop neighbour tables with timestamps;
//! * **finite storage** — protocols report occupancy, the engine samples
//!   peaks (Tables 4/5) and enforces nothing: buffer policy is the
//!   protocol's business, exactly as in the paper.
//!
//! Protocols implement [`Protocol`]; [`Simulation`] runs one seed;
//! [`MultiRun`] repeats an experiment across seeds and reports
//! `mean ± 90 % CI` like every table in the paper.
//!
//! # Example
//!
//! ```
//! use glr_sim::{Ctx, MessageInfo, NodeId, PacketKind, Protocol, SimConfig, Simulation, Workload};
//!
//! /// A protocol that forwards to the destination when it happens to be a
//! /// current radio neighbour.
//! struct Opportunistic;
//!
//! #[derive(Debug, Clone)]
//! struct Pkt(MessageInfo);
//!
//! impl Protocol for Opportunistic {
//!     type Packet = Pkt;
//!     fn on_message_created(&mut self, ctx: &mut Ctx<'_, Pkt>, info: MessageInfo) {
//!         if ctx.neighbors().iter().any(|e| e.id == info.dst) {
//!             let _ = ctx.send(info.dst, Pkt(info), info.size, PacketKind::Data);
//!         }
//!     }
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: NodeId, pkt: Pkt) {
//!         if pkt.0.dst == ctx.me() {
//!             ctx.deliver(pkt.0.id, 1);
//!         }
//!     }
//! }
//!
//! let cfg = SimConfig::paper(250.0, 42).with_duration(60.0);
//! let stats = Simulation::new(cfg, Workload::paper_style(50, 20, 1000), |_, _| Opportunistic)
//!     .run();
//! assert_eq!(stats.messages_created(), 20);
//! ```

#![warn(missing_docs)]

mod config;
mod ids;
mod runner;
mod sim;
mod stats;
mod time;
mod workload;

pub use config::SimConfig;
pub use ids::{MessageId, MessageInfo, NodeId};
pub use runner::MultiRun;
pub use sim::{Ctx, NeighborEntry, PacketKind, Protocol, QueueFull, Simulation};
pub use stats::{summarize, MessageRecord, RunStats, Summary};
pub use time::SimTime;
pub use workload::{Workload, WorkloadMessage};
