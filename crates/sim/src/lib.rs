//! Deterministic discrete-event DTN simulator — the NS-2 substitute for the
//! GLR reproduction.
//!
//! The paper evaluates GLR in NS-2 with full 802.11 PHY/MAC simulation.
//! This crate replaces that stack with a deterministic event-driven model
//! that preserves the causal mechanisms the results depend on:
//!
//! * **intermittent connectivity** — unit-disk radio over random-waypoint
//!   mobility, sampled lazily from piecewise-linear trajectories;
//! * **contention** — per-node FIFO transmit queues (capacity 150 frames,
//!   Table 1), 1 Mbps serialisation, carrier-sense backoff scaled by busy
//!   transmitters in range, and collision loss scaled by interferers near
//!   the receiver (hidden terminals included);
//! * **approximate neighbourhood knowledge** — IMEP-style beacons carrying
//!   the sender's position and 1-hop table, maintaining stale-by-design
//!   1- and 2-hop neighbour tables with timestamps;
//! * **finite storage** — protocols report occupancy, the engine samples
//!   peaks (Tables 4/5) and enforces nothing: buffer policy is the
//!   protocol's business, exactly as in the paper.
//!
//! # Architecture
//!
//! The engine is layered; each layer is its own module:
//!
//! | module | responsibility |
//! |---|---|
//! | [`mod@sim`] | event sequencing: pops events, advances the clock, dispatches |
//! | [`mod@medium`] | radio/PHY behind the pluggable [`Medium`] trait ([`ContentionMedium`] default) |
//! | [`mod@neighbors`] | IMEP beacon sensing, 1-/2-hop tables with TTL expiry |
//! | [`mod@space`] | proximity queries: grid-indexed ([`SpatialIndex`]) with an exact linear-scan reference backend |
//! | [`mod@world`] | shared state: clock, trajectories, RNG, statistics |
//! | `event` (private) | deterministic time-then-FIFO event queue |
//!
//! Protocols implement [`Protocol`]; [`Simulation`] runs one seed (or
//! [`Simulation::with_medium`] for an alternate PHY); [`MultiRun`]
//! repeats an experiment across seeds — in parallel, one thread per run —
//! and reports `mean ± 90 % CI` like every table in the paper. Runs are
//! pure functions of `(config, workload, protocol, seed)`: the same seed
//! gives bit-identical [`RunStats`] under either spatial-index backend,
//! any thread count, and any conforming medium.
//!
//! # Example
//!
//! ```
//! use glr_sim::{Ctx, MessageInfo, NodeId, PacketKind, Protocol, SimConfig, Simulation, Workload};
//!
//! /// A protocol that forwards to the destination when it happens to be a
//! /// current radio neighbour.
//! struct Opportunistic;
//!
//! #[derive(Debug, Clone)]
//! struct Pkt(MessageInfo);
//!
//! impl Protocol for Opportunistic {
//!     type Packet = Pkt;
//!     fn on_message_created(&mut self, ctx: &mut Ctx<'_, Pkt>, info: MessageInfo) {
//!         if ctx.neighbors().iter().any(|e| e.id == info.dst) {
//!             let _ = ctx.send(info.dst, Pkt(info), info.size, PacketKind::Data);
//!         }
//!     }
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: NodeId, pkt: Pkt) {
//!         if pkt.0.dst == ctx.me() {
//!             ctx.deliver(pkt.0.id, 1);
//!         }
//!     }
//! }
//!
//! let cfg = SimConfig::paper(250.0, 42).with_duration(60.0);
//! let stats = Simulation::new(cfg, Workload::paper_style(50, 20, 1000), |_, _| Opportunistic)
//!     .run();
//! assert_eq!(stats.messages_created(), 20);
//! ```

#![warn(missing_docs)]

mod config;
mod event;
mod ids;
pub mod medium;
pub mod neighbors;
mod runner;
pub mod sim;
pub mod space;
mod stats;
mod time;
mod workload;
pub mod world;

pub use config::SimConfig;
pub use ids::{MessageId, MessageInfo, NodeId};
pub use medium::{ContentionMedium, Frame, Medium, PacketKind, QueueFull, TxResolution};
pub use neighbors::NeighborEntry;
pub use runner::MultiRun;
pub use sim::{Ctx, Protocol, Simulation};
pub use space::{IndexBackend, SpatialIndex};
pub use stats::{summarize, MessageRecord, RunStats, Summary};
pub use time::SimTime;
pub use workload::{Workload, WorkloadMessage};
pub use world::World;
