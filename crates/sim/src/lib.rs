//! Deterministic discrete-event DTN simulator — the NS-2 substitute for the
//! GLR reproduction.
//!
//! The paper evaluates GLR in NS-2 with full 802.11 PHY/MAC simulation.
//! This crate replaces that stack with a deterministic event-driven model
//! that preserves the causal mechanisms the results depend on:
//!
//! * **intermittent connectivity** — unit-disk radio over random-waypoint
//!   mobility, sampled lazily from piecewise-linear trajectories;
//! * **contention** — per-node FIFO transmit queues (capacity 150 frames,
//!   Table 1), 1 Mbps serialisation, carrier-sense backoff scaled by busy
//!   transmitters in range, and collision loss scaled by interferers near
//!   the receiver (hidden terminals included);
//! * **approximate neighbourhood knowledge** — IMEP-style beacons carrying
//!   the sender's position and 1-hop table, maintaining stale-by-design
//!   1- and 2-hop neighbour tables with timestamps;
//! * **finite storage** — protocols report occupancy, the engine samples
//!   peaks (Tables 4/5) and enforces nothing: buffer policy is the
//!   protocol's business, exactly as in the paper.
//!
//! # Architecture
//!
//! The engine is layered; each layer is its own module:
//!
//! | module | responsibility |
//! |---|---|
//! | [`mod@sim`] | event sequencing: drains same-tick batches, advances the clock, dispatches ([`EngineKind::Serial`] reference / [`EngineKind::Parallel`] deterministic fan-out) |
//! | [`mod@pool`] | the parallel runtime: persistent [`WorkerPool`] (parked workers, lazy spawn, scoped dispatch) and the [`ThreadBudget`] ledger shared across engine, [`Sweep`] and [`MultiRun`] |
//! | [`mod@medium`] | radio/PHY behind the pluggable [`Medium`] trait: [`ContentionMedium`] (default), [`IdealMedium`], [`ShadowingMedium`], [`DutyCycledMedium`] |
//! | [`mod@neighbors`] | IMEP beacon sensing: `Arc`-interned beacon snapshots and incrementally merged 1-/2-hop tables with TTL expiry ([`TableBackend::Shared`]), plus the clone-and-merge reference ([`TableBackend::CloneMerge`]) |
//! | [`mod@space`] | proximity queries: grid-indexed ([`SpatialIndex`]) with an exact linear-scan reference backend |
//! | [`mod@world`] | shared state: clock, trajectories, RNG, statistics |
//! | [`mod@scenario`] | declarative experiment cells: [`Scenario`] = config + workload + [`MediumKind`] |
//! | [`mod@sweep`] | the parameter-sweep engine: work-queue execution of `(cell, seed)` units, sharding, deterministic collection |
//! | [`mod@report`] | shard-mergeable per-run metrics with a serde-free JSON round trip |
//! | [`mod@queue`] | deterministic time-then-FIFO priority queue ([`TimedQueue`]) with same-tick batch drain |
//!
//! Protocols implement [`Protocol`]; [`Simulation`] runs one seed (or
//! [`Simulation::with_medium`] for an alternate PHY); [`MultiRun`]
//! repeats an experiment across seeds and reports `mean ± 90 % CI` like
//! every table in the paper. Whole experiment grids are described as
//! `Vec<`[`Scenario`]`>` and executed by [`Sweep`], whose `(cell, run)`
//! work queue fans out across threads — and, via [`Sweep::with_shard`]
//! plus [`ReportSet::merge`], across machines; [`Sweep::skipping`]
//! resumes an interrupted run from the cells already present in its
//! partial report. Runs are pure functions of
//! `(config, workload, protocol, seed)`: the same seed gives
//! bit-identical [`RunStats`] under either spatial-index backend,
//! either neighbour-table backend, any thread count, any shard split,
//! and any conforming medium.
//!
//! # Scaling to 100k+ nodes
//!
//! Three hot paths get faster backends, each validated bit-for-bit
//! against a straightforward reference implementation:
//!
//! * proximity queries — [`IndexBackend::Grid`] vs
//!   [`IndexBackend::LinearScan`] (`tests/grid_equivalence.rs`);
//! * the beacon/neighbour layer — [`TableBackend::Shared`] (one
//!   `Arc`-interned snapshot per beacon shared by all receivers,
//!   incremental keyed merges, lazy staleness sweeping, cached
//!   [`Ctx::neighbors`]/[`Ctx::local_view`]) vs
//!   [`TableBackend::CloneMerge`] (`tests/table_equivalence.rs`);
//! * the engine loop — [`EngineKind::Parallel`] (same-tick batch drain,
//!   read-only per-receiver reception compute fanned across a
//!   persistent [`WorkerPool`], in-order commit) vs
//!   [`EngineKind::Serial`] (`tests/engine_equivalence.rs`); select via
//!   [`SimConfig::with_engine`].
//!
//! # The parallel runtime: one pool, one budget
//!
//! All thread-level parallelism runs on [`mod@pool`]:
//!
//! * Each parallel run owns a [`WorkerPool`] — workers spawn lazily on
//!   the first wide event, park between events, and are joined when the
//!   run ends. Replacing the per-event `std::thread::scope` spawn with
//!   parked workers is what makes the fan-out pay off (spawn/join per
//!   wide beacon used to eat the entire parallel gain).
//! * [`Sweep`] (and [`MultiRun`], a one-cell sweep) drains its
//!   `(cell, run)` work queue through a pool of its own.
//! * Both layers draw their threads from a **shared [`ThreadBudget`]**:
//!   `Sweep::with_budget(b)` sizes the outer workers and
//!   [`SimConfig::with_thread_budget`] hands the same ledger to each
//!   run's engine, so a budget of 8 yields e.g. 4 sweep workers × 2
//!   engine threads — or 1 × 8 for a single 100k-node run — and never
//!   32 oversubscribed threads. An exhausted ledger degrades cleanly:
//!   a grant of zero extra threads is the serial path.
//!
//! The scheduling never affects results: pools distribute *which thread
//! computes*, and every order-sensitive effect stays on the in-order
//! commit paths, so [`RunStats`] are bit-identical for any engine,
//! thread count and budget.
//!
//! Single-run memory is flat: the whole deployment's trajectories are
//! interned into one contiguous [`glr_mobility::DeploymentArena`]
//! keyframe buffer (offsets + per-node segment hints) instead of one
//! heap `Vec` per node, and all position sampling reads it. Per-node
//! protocol state is compact: thin `Arc`-only beacon snapshots, a
//! single-probe peer map with 32-byte entries, and the cold view caches
//! split out of the hot per-node tables ([`TableFootprint`] reports the
//! bytes; the `neighbor_footprint` bench row tracks them at 100k).
//!
//! [`Scenario::large_n_tier`] builds a ready-made 10k-node preset —
//! paper density via [`SimConfig::paper_scaled`], one cell per built-in
//! medium; `examples/large_n.rs` runs it (CI smokes it at 10k, and at
//! 100k nodes under `EngineKind::Parallel`) on every push.
//!
//! Selecting the engine is one builder call; everything else — results
//! included — is unchanged:
//!
//! ```
//! use glr_sim::{EngineKind, SimConfig};
//!
//! // Reference engine (the default):
//! let serial = SimConfig::paper_scaled(10_000, 100.0, 1).with_duration(2.0);
//! // Fan wide beacon receptions across 8 workers; Ctx/Protocol code,
//! // statistics and fingerprints are identical bit for bit:
//! let parallel = serial.clone().with_engine(EngineKind::Parallel(8));
//! assert_eq!(parallel.engine.threads(), 8);
//! // `parallel_grain` tunes when fan-out engages (never what it computes).
//! let eager = parallel.with_parallel_grain(64);
//! eager.validate();
//! ```
//!
//! # Example
//!
//! ```
//! use glr_sim::{Ctx, MediumKind, MessageInfo, NodeId, PacketKind, Protocol, Scenario, SimConfig};
//!
//! /// A protocol that forwards to the destination when it happens to be a
//! /// current radio neighbour.
//! struct Opportunistic;
//!
//! #[derive(Debug, Clone)]
//! struct Pkt(MessageInfo);
//!
//! impl Protocol for Opportunistic {
//!     type Packet = Pkt;
//!     fn on_message_created(&mut self, ctx: &mut Ctx<'_, Pkt>, info: MessageInfo) {
//!         if ctx.neighbors().iter().any(|e| e.id == info.dst) {
//!             let _ = ctx.send(info.dst, Pkt(info), info.size, PacketKind::Data);
//!         }
//!     }
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: NodeId, pkt: Pkt) {
//!         if pkt.0.dst == ctx.me() {
//!             ctx.deliver(pkt.0.id, 1);
//!         }
//!     }
//! }
//!
//! // Declarative cell: config + workload + medium. Swap the medium to
//! // re-run the identical experiment under an ideal or shadowing radio.
//! let cfg = SimConfig::paper(250.0, 42).with_duration(60.0);
//! let stats = Scenario::new("quickstart", cfg)
//!     .with_messages(20)
//!     .with_medium(MediumKind::Contention)
//!     .run(|_, _| Opportunistic);
//! assert_eq!(stats.messages_created(), 20);
//! ```

#![warn(missing_docs)]

mod config;
mod event;
mod ids;
mod json;
pub mod medium;
pub mod neighbors;
pub mod pool;
pub mod queue;
pub mod report;
mod runner;
pub mod scenario;
pub mod sim;
pub mod space;
mod stats;
pub mod sweep;
mod time;
mod workload;
pub mod world;

pub use config::{EngineKind, SimConfig};
pub use ids::{MessageId, MessageInfo, NodeId};
pub use medium::{
    ContentionMedium, DutyCycledMedium, Frame, IdealMedium, Medium, PacketKind, QueueFull,
    ShadowingMedium, ShadowingParams, TxResolution, DUTY_SLEEP_DROP, SHADOWING_FADE_LOSS,
};
pub use neighbors::{
    BeaconSnapshot, NeighborEntry, NeighborTables, NeighborsIter, NeighborsView, TableBackend,
    TableFootprint,
};
pub use pool::{BudgetLease, ThreadBudget, WorkerPool};
pub use queue::TimedQueue;
pub use report::{CellReport, ReportSet, RunMetrics};
pub use runner::MultiRun;
pub use scenario::{MediumKind, Scenario, WorkloadSpec};
pub use sim::{Ctx, Protocol, Simulation};
pub use space::{IndexBackend, SpatialIndex};
pub use stats::{summarize, MessageRecord, RunStats, Summary};
pub use sweep::{CellRuns, Shard, Sweep, SweepResults};
pub use time::SimTime;
pub use workload::{Workload, WorkloadMessage};
pub use world::World;
