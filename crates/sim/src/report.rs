//! Shard-mergeable experiment reports: per-run metrics, per-cell run
//! lists, and a serde-free JSON round trip.
//!
//! The sweep engine produces [`crate::RunStats`] per `(cell, run)`;
//! this module distils each run into a [`RunMetrics`] row (every scalar
//! the paper's tables consume), groups rows into [`CellReport`]s, and
//! reads/writes whole [`ReportSet`]s as JSON. The format is designed so
//! shards produced on different machines — or `--shard i/n` invocations
//! of the experiments binary — concatenate losslessly:
//!
//! * integers are written verbatim and parsed as `u64` (no `f64` detour),
//! * floats are written with Rust's shortest-round-trip `{:?}` and parse
//!   back bit-identically,
//! * counter maps are **sorted by key** at this output boundary (the
//!   in-memory map is a `HashMap`, whose iteration order would otherwise
//!   leak run-to-run nondeterminism into the files),
//!
//! so `merge(shards).to_json()` equals the unsharded `to_json()` byte for
//! byte — asserted by `tests/sweep_shard.rs`.

use crate::json::{write_escaped, Json};
use crate::stats::{summarize, RunStats, Summary};
use crate::sweep::SweepResults;
use std::fmt::Write as _;

/// Writes an `f64` in shortest-round-trip form.
///
/// # Panics
///
/// Panics on non-finite values — no metric in [`RunMetrics`] can
/// legitimately be NaN or infinite, and JSON could not represent them.
fn write_f64(out: &mut String, x: f64) {
    assert!(x.is_finite(), "non-finite metric value {x}");
    let _ = write!(out, "{x:?}");
}

/// One run's worth of scalar metrics — everything the experiment tables
/// need, cheap enough to serialise per run (unlike the full
/// [`RunStats`] with its per-message records).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Messages injected.
    pub messages_created: u64,
    /// Distinct messages delivered.
    pub messages_delivered: u64,
    /// Delivered fraction in `[0, 1]` (1.0 for an empty workload).
    pub delivery_ratio: f64,
    /// Mean creation-to-first-delivery latency in seconds, if anything
    /// was delivered.
    pub avg_latency: Option<f64>,
    /// Mean first-delivery hop count, if anything was delivered.
    pub avg_hops: Option<f64>,
    /// Duplicate deliveries after each message's first, summed.
    pub duplicate_deliveries: u64,
    /// Largest per-node peak storage occupancy (messages).
    pub max_peak_storage: u64,
    /// Mean of per-node peak storage occupancy (messages).
    pub avg_peak_storage: f64,
    /// Mean storage occupancy over all samples and nodes (messages).
    pub mean_storage_occupancy: f64,
    /// Data frames delivered at the link layer.
    pub data_tx: u64,
    /// Control frames delivered at the link layer.
    pub control_tx: u64,
    /// Frames lost to collisions.
    pub collisions: u64,
    /// Frames lost out of range.
    pub out_of_range: u64,
    /// Frames dropped at full transmit queues.
    pub queue_drops: u64,
    /// Messages dropped by protocols under storage pressure.
    pub storage_drops: u64,
    /// Protocol event counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl RunMetrics {
    /// Distils a run's statistics into its metric row. Counters are
    /// sorted by key here — the output boundary — so identical runs
    /// always serialise identically.
    pub fn from_stats(stats: &RunStats) -> Self {
        let counters = stats
            .counters_sorted()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        RunMetrics {
            messages_created: stats.messages_created() as u64,
            messages_delivered: stats.messages_delivered() as u64,
            delivery_ratio: stats.delivery_ratio(),
            avg_latency: stats.avg_latency(),
            avg_hops: stats.avg_hops(),
            duplicate_deliveries: stats
                .records()
                .iter()
                .map(|r| u64::from(r.duplicate_deliveries))
                .sum(),
            max_peak_storage: stats.max_peak_storage() as u64,
            avg_peak_storage: stats.avg_peak_storage(),
            mean_storage_occupancy: stats.mean_storage_occupancy(),
            data_tx: stats.data_tx,
            control_tx: stats.control_tx,
            collisions: stats.collisions,
            out_of_range: stats.out_of_range,
            queue_drops: stats.queue_drops,
            storage_drops: stats.storage_drops,
            counters,
        }
    }

    /// Value of a named event counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"messages_created\": ");
        let _ = write!(out, "{}", self.messages_created);
        let _ = write!(out, ", \"messages_delivered\": {}", self.messages_delivered);
        out.push_str(", \"delivery_ratio\": ");
        write_f64(out, self.delivery_ratio);
        out.push_str(", \"avg_latency\": ");
        match self.avg_latency {
            Some(x) => write_f64(out, x),
            None => out.push_str("null"),
        }
        out.push_str(", \"avg_hops\": ");
        match self.avg_hops {
            Some(x) => write_f64(out, x),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ", \"duplicate_deliveries\": {}, \"max_peak_storage\": {}",
            self.duplicate_deliveries, self.max_peak_storage
        );
        out.push_str(", \"avg_peak_storage\": ");
        write_f64(out, self.avg_peak_storage);
        out.push_str(", \"mean_storage_occupancy\": ");
        write_f64(out, self.mean_storage_occupancy);
        let _ = write!(
            out,
            ", \"data_tx\": {}, \"control_tx\": {}, \"collisions\": {}, \"out_of_range\": {}, \
             \"queue_drops\": {}, \"storage_drops\": {}",
            self.data_tx,
            self.control_tx,
            self.collisions,
            self.out_of_range,
            self.queue_drops,
            self.storage_drops
        );
        out.push_str(", \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_escaped(out, k);
            let _ = write!(out, ": {v}");
        }
        out.push_str("}}");
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for (k, c) in v.field("counters")?.as_obj()? {
            counters.push((k.clone(), c.as_u64()?));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(RunMetrics {
            messages_created: v.field("messages_created")?.as_u64()?,
            messages_delivered: v.field("messages_delivered")?.as_u64()?,
            delivery_ratio: v.field("delivery_ratio")?.as_f64()?,
            avg_latency: v.field("avg_latency")?.as_opt_f64()?,
            avg_hops: v.field("avg_hops")?.as_opt_f64()?,
            duplicate_deliveries: v.field("duplicate_deliveries")?.as_u64()?,
            max_peak_storage: v.field("max_peak_storage")?.as_u64()?,
            avg_peak_storage: v.field("avg_peak_storage")?.as_f64()?,
            mean_storage_occupancy: v.field("mean_storage_occupancy")?.as_f64()?,
            data_tx: v.field("data_tx")?.as_u64()?,
            control_tx: v.field("control_tx")?.as_u64()?,
            collisions: v.field("collisions")?.as_u64()?,
            out_of_range: v.field("out_of_range")?.as_u64()?,
            queue_drops: v.field("queue_drops")?.as_u64()?,
            storage_drops: v.field("storage_drops")?.as_u64()?,
            counters,
        })
    }
}

/// One sweep cell's report: global index, label, and per-run metric rows
/// in run (seed) order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Global cell index within the sweep (stable across shards).
    pub cell: usize,
    /// Human-readable cell label.
    pub label: String,
    /// Per-run metrics, indexed by run.
    pub runs: Vec<RunMetrics>,
}

impl CellReport {
    /// Summarises an arbitrary per-run metric as `mean ± 90 % CI`.
    pub fn metric(&self, f: impl Fn(&RunMetrics) -> f64) -> Summary {
        let xs: Vec<f64> = self.runs.iter().map(f).collect();
        summarize(&xs)
    }

    /// Delivery ratio across runs, in percent.
    pub fn delivery_pct(&self) -> Summary {
        self.metric(|m| m.delivery_ratio * 100.0)
    }

    /// Mean latency across runs; runs with no deliveries contribute
    /// `undelivered_penalty` (they would otherwise silently vanish).
    pub fn avg_latency(&self, undelivered_penalty: f64) -> Summary {
        self.metric(|m| m.avg_latency.unwrap_or(undelivered_penalty))
    }

    /// Mean hop count across runs (0 when nothing was delivered).
    pub fn avg_hops(&self) -> Summary {
        self.metric(|m| m.avg_hops.unwrap_or(0.0))
    }

    /// Max peak storage across runs.
    pub fn max_peak_storage(&self) -> Summary {
        self.metric(|m| m.max_peak_storage as f64)
    }

    /// Average peak storage across runs.
    pub fn avg_peak_storage(&self) -> Summary {
        self.metric(|m| m.avg_peak_storage)
    }

    /// A named event counter summarised across runs.
    pub fn counter(&self, name: &str) -> Summary {
        self.metric(|m| m.counter(name) as f64)
    }
}

/// A full (or shard-partial) result set: cell reports ascending by cell
/// index, with a JSON round trip and shard merging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportSet {
    /// Free-form description of the grid this set was produced from
    /// (experiment ids, effort, runs per cell — everything except the
    /// shard split). [`ReportSet::merge`] refuses shards whose contexts
    /// differ, so files from mismatched invocations cannot silently
    /// interleave into one corrupt report.
    pub context: String,
    /// The cell reports, ascending by `cell`.
    pub cells: Vec<CellReport>,
}

impl ReportSet {
    /// Builds a report set from sweep results, labelling cell `i` with
    /// `labels(i)`. The context starts empty; set it with
    /// [`ReportSet::with_context`] before writing shard files.
    pub fn from_sweep(results: &SweepResults, labels: impl Fn(usize) -> String) -> Self {
        ReportSet {
            context: String::new(),
            cells: results
                .cells()
                .iter()
                .map(|cr| CellReport {
                    cell: cr.cell,
                    label: labels(cr.cell),
                    runs: cr.runs.iter().map(RunMetrics::from_stats).collect(),
                })
                .collect(),
        }
    }

    /// Returns the set with its grid context set.
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = context.into();
        self
    }

    /// The report for cell `cell`, if present in this (possibly sharded)
    /// set.
    pub fn get(&self, cell: usize) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.cell == cell)
    }

    /// Whether every cell of an `n_cells` sweep is present.
    pub fn is_complete(&self, n_cells: usize) -> bool {
        self.cells.len() == n_cells && self.cells.iter().enumerate().all(|(i, c)| c.cell == i)
    }

    /// The global indices of the cells this (possibly partial) set
    /// contains — the list to hand to [`crate::Sweep::skipping`] when
    /// resuming an interrupted run from its JSON output.
    pub fn completed_cells(&self) -> Vec<usize> {
        self.cells.iter().map(|c| c.cell).collect()
    }

    /// Serialises the set as JSON (deterministic byte-for-byte for equal
    /// contents: sorted counters, shortest-round-trip floats).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"context\": ");
        write_escaped(&mut out, &self.context);
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"cell\": {}, \"label\": ", cell.cell);
            write_escaped(&mut out, &cell.label);
            out.push_str(", \"runs\": [");
            for (j, run) in cell.runs.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                out.push_str("      ");
                run.write_json(&mut out);
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a set previously written by [`ReportSet::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let version = doc.field("version")?.as_u64()?;
        if version != 1 {
            return Err(format!("unsupported report version {version}"));
        }
        let context = doc.field("context")?.as_str()?.to_string();
        let mut cells = Vec::new();
        for cell in doc.field("cells")?.as_arr()? {
            let index = cell.field("cell")?.as_u64()? as usize;
            let label = cell.field("label")?.as_str()?.to_string();
            let mut runs = Vec::new();
            for run in cell.field("runs")?.as_arr()? {
                runs.push(RunMetrics::from_json(run)?);
            }
            cells.push(CellReport {
                cell: index,
                label,
                runs,
            });
        }
        cells.sort_by_key(|c| c.cell);
        Ok(ReportSet { context, cells })
    }

    /// Merges shard sets into one, re-sorting by cell index.
    ///
    /// # Errors
    ///
    /// Fails when the shards' contexts differ (files from different
    /// experiment grids, effort levels, or run counts — disjoint cell
    /// indices would otherwise interleave them into one corrupt report)
    /// or when two shards report the same cell (a mis-specified
    /// `--shard` split; silently preferring one would hide it).
    pub fn merge(parts: Vec<ReportSet>) -> Result<ReportSet, String> {
        let context = parts.first().map(|p| p.context.clone()).unwrap_or_default();
        for p in &parts {
            if p.context != context {
                return Err(format!(
                    "shards come from different sweeps: context {:?} vs {:?}",
                    context, p.context
                ));
            }
        }
        let mut cells: Vec<CellReport> = parts.into_iter().flat_map(|p| p.cells).collect();
        cells.sort_by_key(|c| c.cell);
        for w in cells.windows(2) {
            if w[0].cell == w[1].cell {
                return Err(format!(
                    "cell {} ({:?}) appears in more than one shard",
                    w[0].cell, w[0].label
                ));
            }
        }
        Ok(ReportSet { context, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MessageId, NodeId};
    use crate::time::SimTime;

    fn stats_with(delivered: usize, total: usize) -> RunStats {
        let mut s = RunStats::new(3);
        for i in 0..total {
            let id = MessageId {
                src: NodeId(0),
                seq: i as u32,
            };
            s.register_message(id, NodeId(0), NodeId(1), SimTime::ZERO);
            if i < delivered {
                s.record_delivery(id, SimTime::from_secs(7.5), 3);
                s.record_delivery(id, SimTime::from_secs(9.0), 4); // duplicate
            }
        }
        s.data_tx = 10;
        s.collisions = 2;
        s.count_event("zeta");
        s.count_event("alpha");
        s.count_event("alpha");
        s.sample_storage(NodeId(1), 4);
        s
    }

    fn sample_set() -> ReportSet {
        ReportSet {
            context: "ids=tab9; effort=2runs/250pm".into(),
            cells: vec![
                CellReport {
                    cell: 0,
                    label: "radius 50 m / glr".into(),
                    runs: vec![
                        RunMetrics::from_stats(&stats_with(2, 4)),
                        RunMetrics::from_stats(&stats_with(3, 4)),
                    ],
                },
                CellReport {
                    cell: 1,
                    label: "radius 50 m / \"epidemic\"".into(),
                    runs: vec![RunMetrics::from_stats(&stats_with(0, 4))],
                },
            ],
        }
    }

    #[test]
    fn metrics_distill_stats() {
        let m = RunMetrics::from_stats(&stats_with(2, 4));
        assert_eq!(m.messages_created, 4);
        assert_eq!(m.messages_delivered, 2);
        assert_eq!(m.delivery_ratio, 0.5);
        assert_eq!(m.avg_latency, Some(7.5));
        assert_eq!(m.avg_hops, Some(3.0));
        assert_eq!(m.duplicate_deliveries, 2);
        assert_eq!(m.max_peak_storage, 4);
        assert_eq!(m.data_tx, 10);
        assert_eq!(m.counter("alpha"), 2);
        assert_eq!(m.counter("zeta"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn counters_sorted_at_output_boundary() {
        let m = RunMetrics::from_stats(&stats_with(1, 2));
        let keys: Vec<&str> = m.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "zeta"]);
        // ... and the serialised form lists them in that order too.
        let mut out = String::new();
        m.write_json(&mut out);
        assert!(out.find("alpha").unwrap() < out.find("zeta").unwrap());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let set = sample_set();
        let text = set.to_json();
        let back = ReportSet::from_json(&text).expect("parse back");
        assert_eq!(back, set);
        // Byte-identical re-serialisation: the merge pipeline depends on it.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn undelivered_run_serialises_null_latency() {
        let set = sample_set();
        assert!(set.to_json().contains("\"avg_latency\": null"));
        let back = ReportSet::from_json(&set.to_json()).unwrap();
        assert_eq!(back.cells[1].runs[0].avg_latency, None);
    }

    #[test]
    fn merge_reassembles_and_rejects_overlap() {
        let set = sample_set();
        let shard0 = ReportSet {
            context: set.context.clone(),
            cells: vec![set.cells[0].clone()],
        };
        let shard1 = ReportSet {
            context: set.context.clone(),
            cells: vec![set.cells[1].clone()],
        };
        let merged = ReportSet::merge(vec![shard1.clone(), shard0.clone()]).unwrap();
        assert_eq!(merged, set);
        assert!(merged.is_complete(2));
        assert!(!shard0.is_complete(2));
        assert!(ReportSet::merge(vec![shard0.clone(), shard0]).is_err());
    }

    #[test]
    fn merge_rejects_mismatched_contexts() {
        let set = sample_set();
        // Disjoint cell indices, but from different experiment grids —
        // without the context check this would "merge" cleanly.
        let shard0 = ReportSet {
            context: "ids=tab9; effort=2runs/250pm".into(),
            cells: vec![set.cells[0].clone()],
        };
        let other_grid = ReportSet {
            context: "ids=fig3; effort=10runs/1000pm".into(),
            cells: vec![set.cells[1].clone()],
        };
        let err = ReportSet::merge(vec![shard0, other_grid]).unwrap_err();
        assert!(err.contains("different sweeps"), "{err}");
    }

    #[test]
    fn summaries_from_cells() {
        let set = sample_set();
        let c = set.get(0).unwrap();
        assert!((c.delivery_pct().mean - 62.5).abs() < 1e-12);
        assert_eq!(c.avg_hops().mean, 3.0);
        assert_eq!(c.counter("alpha").mean, 2.0);
        // Undelivered penalty kicks in for the all-lost cell.
        let lost = set.get(1).unwrap();
        assert_eq!(lost.avg_latency(1000.0).mean, 1000.0);
        assert_eq!(lost.avg_hops().mean, 0.0);
    }

    #[test]
    fn bad_version_rejected() {
        let text = sample_set()
            .to_json()
            .replace("\"version\": 1", "\"version\": 9");
        assert!(ReportSet::from_json(&text).is_err());
    }
}
