//! Declarative experiment description: one [`Scenario`] bundles the
//! engine configuration, the traffic workload, and the radio medium into
//! a value that can be stored, labelled, swept over, and executed.
//!
//! This is the layer the sweep engine ([`crate::Sweep`]) iterates over:
//! experiment grids expand into `Vec<Scenario>` (one per cell) instead of
//! hand-rolled nested loops, and a scenario runs any [`Protocol`] under
//! any of the built-in media without the call site naming concrete
//! medium types.
//!
//! # Example
//!
//! ```
//! use glr_sim::{Ctx, MediumKind, MessageInfo, NodeId, Protocol, Scenario, SimConfig};
//!
//! struct Idle;
//! impl Protocol for Idle {
//!     type Packet = ();
//!     fn on_message_created(&mut self, _: &mut Ctx<'_, ()>, _: MessageInfo) {}
//!     fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
//! }
//!
//! let base = SimConfig::paper(100.0, 7).with_duration(30.0);
//! // The same experiment under two radios, differing only in the medium.
//! for medium in [MediumKind::Contention, MediumKind::Ideal] {
//!     let sc = Scenario::new("demo", base.clone())
//!         .with_messages(5)
//!         .with_medium(medium);
//!     let stats = sc.run(|_, _| Idle);
//!     assert_eq!(stats.messages_created(), 5);
//! }
//! ```

use crate::config::SimConfig;
use crate::ids::NodeId;
use crate::medium::{
    ContentionMedium, DutyCycledMedium, IdealMedium, Medium, ShadowingMedium, ShadowingParams,
};
use crate::sim::{Protocol, Simulation};
use crate::stats::RunStats;
use crate::workload::Workload;

/// Which radio/PHY model a scenario runs over.
///
/// This is the declarative counterpart of the [`Medium`] trait: a value
/// that names a built-in medium and can be stored in a scenario, printed,
/// compared, and expanded along a sweep axis. Custom media keep using
/// [`Simulation::with_medium`] directly.
#[derive(Debug, Clone, PartialEq)]
pub enum MediumKind {
    /// [`ContentionMedium`] — the paper's NS-2-calibrated 802.11 model
    /// (the default).
    Contention,
    /// [`IdealMedium`] — lossless and contention-free, for protocol-logic
    /// debugging.
    Ideal,
    /// [`ShadowingMedium`] — log-distance path loss with per-frame
    /// log-normal shadowing.
    Shadowing(ShadowingParams),
    /// [`DutyCycledMedium`] — any inner medium, with radios that sleep
    /// for the back `1 - on_fraction` of every `period` seconds and drop
    /// frames arriving during sleep.
    DutyCycled {
        /// The wrapped medium (usually [`MediumKind::Contention`]).
        inner: Box<MediumKind>,
        /// Fraction of each period the radio is awake, in `(0, 1]`.
        on_fraction: f64,
        /// Sleep/wake cycle length in seconds.
        period: f64,
    },
}

impl MediumKind {
    /// The shadowing medium with default parameters.
    pub fn shadowing() -> Self {
        MediumKind::Shadowing(ShadowingParams::default())
    }

    /// A duty-cycled wrapper around `inner` with the given wake fraction
    /// and period.
    pub fn duty_cycled(inner: MediumKind, on_fraction: f64, period: f64) -> Self {
        MediumKind::DutyCycled {
            inner: Box::new(inner),
            on_fraction,
            period,
        }
    }

    /// Instantiates the medium for `n_nodes` radios.
    pub fn build<Pk: Clone + std::fmt::Debug + 'static>(
        &self,
        n_nodes: usize,
    ) -> Box<dyn Medium<Pk>> {
        match self {
            MediumKind::Contention => Box::new(ContentionMedium::new(n_nodes)),
            MediumKind::Ideal => Box::new(IdealMedium::new(n_nodes)),
            MediumKind::Shadowing(p) => Box::new(ShadowingMedium::new(n_nodes, *p)),
            MediumKind::DutyCycled {
                inner,
                on_fraction,
                period,
            } => Box::new(DutyCycledMedium::new(
                inner.build(n_nodes),
                *on_fraction,
                *period,
            )),
        }
    }

    /// A short stable name (`"contention"`, `"ideal"`, `"shadowing"`,
    /// `"duty-cycled"`) for labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            MediumKind::Contention => "contention",
            MediumKind::Ideal => "ideal",
            MediumKind::Shadowing(_) => "shadowing",
            MediumKind::DutyCycled { .. } => "duty-cycled",
        }
    }
}

impl std::fmt::Display for MediumKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a scenario's traffic is generated.
///
/// Workloads are derived from the scenario configuration at run time, so
/// a sweep axis over `n_nodes` automatically gets correctly-sized
/// paper-style traffic without the cell storing a stale message list.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// [`Workload::paper_style`] traffic: `messages` messages of `size`
    /// bytes, round-robin over the active subset of the deployment.
    PaperStyle {
        /// Number of messages to inject.
        messages: usize,
        /// Payload size in bytes.
        size: u32,
    },
    /// An explicit, pre-built message schedule.
    Explicit(Workload),
}

/// A declarative, self-contained experiment cell: configuration, traffic
/// and radio medium, plus a human-readable label.
///
/// A `Scenario` is inert data until [`Scenario::run`] (or
/// [`Scenario::run_nth`], which the sweep engine uses to re-seed the
/// same cell per run). Two runs of the same scenario with the same seed
/// are bit-identical regardless of thread count — the property the
/// shard-merge pipeline relies on. Across *machines* this extends to
/// any host computing `f64` math identically (in practice: the same
/// binary, or same target + libm); [`MediumKind::Shadowing`] draws
/// through `ln`/`cos`/`log10`, whose last-ulp rounding is libm's, not
/// IEEE-mandated — see [`ShadowingMedium`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label (table row / JSON cell name).
    pub label: String,
    /// Engine configuration (including the cell's base seed).
    pub config: SimConfig,
    /// Traffic description.
    pub workload: WorkloadSpec,
    /// Radio/PHY model.
    pub medium: MediumKind,
}

impl Scenario {
    /// A scenario over `config` with an empty workload and the default
    /// [`MediumKind::Contention`]; attach traffic with
    /// [`Scenario::with_messages`] or [`Scenario::with_workload`].
    pub fn new(label: impl Into<String>, config: SimConfig) -> Self {
        Scenario {
            label: label.into(),
            config,
            workload: WorkloadSpec::Explicit(Workload::default()),
            medium: MediumKind::Contention,
        }
    }

    /// Returns the scenario with paper-style traffic of `messages`
    /// 1000-byte messages (the paper's payload size).
    pub fn with_messages(mut self, messages: usize) -> Self {
        self.workload = WorkloadSpec::PaperStyle {
            messages,
            size: 1000,
        };
        self
    }

    /// Returns the scenario with an explicit workload spec.
    pub fn with_workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = spec;
        self
    }

    /// Returns the scenario over a different medium.
    pub fn with_medium(mut self, medium: MediumKind) -> Self {
        self.medium = medium;
        self
    }

    /// Materialises the workload for this scenario's configuration.
    pub fn build_workload(&self) -> Workload {
        match &self.workload {
            WorkloadSpec::PaperStyle { messages, size } => {
                Workload::paper_style(self.config.n_nodes, *messages, *size)
            }
            WorkloadSpec::Explicit(w) => w.clone(),
        }
    }

    /// The large-`n` preset tier: one scenario per built-in medium
    /// ([`MediumKind::Contention`], [`MediumKind::Ideal`],
    /// [`MediumKind::Shadowing`]) at `n_nodes` nodes and the paper's node
    /// density ([`SimConfig::paper_scaled`]: the region grows with `√n`),
    /// running for `duration` simulated seconds with paper-style traffic
    /// of one message per 50 nodes.
    ///
    /// This is the tier that exercises the beacon hot path — interned
    /// snapshots and incremental two-hop merges — at 10k+ nodes; the CI
    /// smoke runs it short, benches run it longer. Tune individual cells
    /// afterwards via the public fields or the builder methods.
    ///
    /// # Examples
    ///
    /// ```
    /// use glr_sim::Scenario;
    ///
    /// let tier = Scenario::large_n_tier(10_000, 5.0, 1);
    /// assert_eq!(tier.len(), 3);
    /// assert!(tier.iter().all(|s| s.config.n_nodes == 10_000));
    /// ```
    pub fn large_n_tier(n_nodes: usize, duration: f64, seed: u64) -> Vec<Scenario> {
        [
            MediumKind::Contention,
            MediumKind::Ideal,
            MediumKind::shadowing(),
        ]
        .into_iter()
        .map(|medium| {
            let config = SimConfig::paper_scaled(n_nodes, 100.0, seed).with_duration(duration);
            Scenario::new(format!("large-n/{n_nodes}/{medium}"), config)
                .with_messages((n_nodes / 50).max(1))
                .with_medium(medium)
        })
        .collect()
    }

    /// Runs the scenario once with its configured seed.
    pub fn run<P: Protocol>(&self, factory: impl FnMut(NodeId, &SimConfig) -> P) -> RunStats {
        self.run_seeded(self.config.seed, factory)
    }

    /// Runs the `run`-th seeded repetition of the scenario: seed
    /// `config.seed + run`, matching [`crate::MultiRun`] semantics. This
    /// is THE per-cell run function for [`crate::Sweep`] — the shard
    /// merge's byte-identity guarantee depends on every executor seeding
    /// the same way, so derive sweep seeds here rather than by hand.
    pub fn run_nth<P: Protocol>(
        &self,
        run: usize,
        factory: impl FnMut(NodeId, &SimConfig) -> P,
    ) -> RunStats {
        self.run_seeded(self.config.seed + run as u64, factory)
    }

    /// Runs the scenario once under an explicit seed.
    pub fn run_seeded<P: Protocol>(
        &self,
        seed: u64,
        factory: impl FnMut(NodeId, &SimConfig) -> P,
    ) -> RunStats {
        let config = self.config.clone().with_seed(seed);
        let workload = self.build_workload();
        let medium = self.medium.build(config.n_nodes);
        Simulation::with_boxed_medium(config, workload, factory, medium).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MessageInfo;
    use crate::medium::PacketKind;
    use crate::sim::Ctx;

    /// Forwards to the destination when it is in (true) range.
    struct Direct;
    impl Protocol for Direct {
        type Packet = MessageInfo;
        fn on_message_created(&mut self, ctx: &mut Ctx<'_, MessageInfo>, info: MessageInfo) {
            if ctx.true_pos(info.dst).dist(ctx.my_pos()) <= ctx.config().radio_range {
                let _ = ctx.send(info.dst, info, info.size, PacketKind::Data);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, MessageInfo>, _: NodeId, pkt: MessageInfo) {
            if pkt.dst == ctx.me() {
                ctx.deliver(pkt.id, 1);
            }
        }
    }

    fn base() -> SimConfig {
        SimConfig::paper(150.0, 11).with_duration(40.0)
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let sc = Scenario::new("det", base()).with_messages(20);
        let a = sc.run(|_, _| Direct);
        let b = sc.run(|_, _| Direct);
        assert_eq!(a, b);
        assert_eq!(a.messages_created(), 20);
    }

    #[test]
    fn run_seeded_overrides_seed() {
        let sc = Scenario::new("seeded", base()).with_messages(30);
        let a = sc.run_seeded(100, |_, _| Direct);
        let b = sc.run_seeded(101, |_, _| Direct);
        let a2 = sc.run_seeded(100, |_, _| Direct);
        assert_eq!(a, a2);
        assert_ne!(
            (a.data_tx, a.messages_delivered()),
            (b.data_tx, b.messages_delivered())
        );
    }

    #[test]
    fn media_are_selectable() {
        for medium in [
            MediumKind::Contention,
            MediumKind::Ideal,
            MediumKind::shadowing(),
        ] {
            let sc = Scenario::new(format!("m-{medium}"), base())
                .with_messages(10)
                .with_medium(medium.clone());
            let stats = sc.run(|_, _| Direct);
            assert_eq!(stats.messages_created(), 10, "medium {medium}");
            if medium == MediumKind::Ideal {
                assert_eq!(stats.collisions, 0);
                assert_eq!(stats.out_of_range, 0);
            }
        }
    }

    #[test]
    fn explicit_workload_respected() {
        let wl = Workload::single(NodeId(0), NodeId(1), 2.0, 500);
        let sc = Scenario::new("explicit", base()).with_workload(WorkloadSpec::Explicit(wl));
        let stats = sc.run(|_, _| Direct);
        assert_eq!(stats.messages_created(), 1);
    }

    #[test]
    fn paper_workload_tracks_node_count() {
        let mut cfg = base();
        cfg.n_nodes = 20;
        let sc = Scenario::new("scaled", cfg).with_messages(40);
        let wl = sc.build_workload();
        assert_eq!(wl.len(), 40);
        // paper_style keeps sources within the active subset of 20 nodes.
        assert!(wl.messages().iter().all(|m| m.src.index() < 15));
    }

    #[test]
    fn large_n_tier_covers_all_media_at_paper_density() {
        let tier = Scenario::large_n_tier(5000, 8.0, 3);
        let names: Vec<&str> = tier.iter().map(|s| s.medium.name()).collect();
        assert_eq!(names, vec!["contention", "ideal", "shadowing"]);
        for s in &tier {
            assert_eq!(s.config.n_nodes, 5000);
            assert_eq!(s.config.sim_duration, 8.0);
            // Paper density: 50 nodes per 1500 m × 300 m strip.
            let density =
                s.config.n_nodes as f64 / (s.config.region.width() * s.config.region.height());
            assert!((density - 50.0 / (1500.0 * 300.0)).abs() < 1e-12);
            assert_eq!(s.build_workload().len(), 100);
        }
    }

    #[test]
    fn medium_kind_names() {
        assert_eq!(MediumKind::Contention.name(), "contention");
        assert_eq!(MediumKind::Ideal.to_string(), "ideal");
        assert_eq!(MediumKind::shadowing().name(), "shadowing");
    }
}
