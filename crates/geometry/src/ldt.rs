//! k-local Delaunay triangulation graphs (k-LDTG) — the GLR routing spanner.
//!
//! Following the paper (§2.1, after Li, Calinescu & Wan), every node `u`
//! computes the Delaunay triangulation `A(Nk(u))` of its distance-`k`
//! neighbourhood in the unit-disk graph. A link `uv` (with `v` a radio
//! neighbour of `u`) is accepted into the final graph iff it appears in
//! `A(Nk(u))` **and** in `A(Nk(w))` for every radio neighbour `w` of `u`
//! whose `k`-neighbourhood contains both `u` and `v`. The witness rule
//! removes the crossings that plain 1-local Delaunay would admit, yielding
//! a planar spanner without an extra planarisation round.
//!
//! Two entry points are provided:
//!
//! * [`k_ldtg`] — the global (omniscient) construction, used as ground
//!   truth by tests and by the topology analyses in the benchmark harness;
//! * [`ldtg_local_neighbors`] — the node-local construction a protocol
//!   instance actually runs: it sees only the positions it has collected
//!   (its `k`-hop view) and applies the same acceptance rule restricted to
//!   that view.

use crate::delaunay::Triangulation;
use crate::graph::Graph;
use crate::point::Point2;
use crate::udg::unit_disk_graph;
use std::collections::HashSet;

/// Builds the k-local Delaunay triangulation graph of `points` with radio
/// radius `r`.
///
/// The result is a subgraph of the unit-disk graph. For `k >= 2` it is
/// planar (asserted empirically by this crate's tests) and a constant
/// stretch spanner of the unit-disk graph.
///
/// # Panics
///
/// Panics if `k == 0` or `r` is not strictly positive.
///
/// # Examples
///
/// ```
/// use glr_geometry::{k_ldtg, unit_disk_graph, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(80.0, 0.0),
///     Point2::new(40.0, 60.0),
///     Point2::new(40.0, -60.0),
/// ];
/// let ldtg = k_ldtg(&pts, 100.0, 2);
/// // Subgraph of the UDG:
/// let udg = unit_disk_graph(&pts, 100.0);
/// for (u, v) in ldtg.edges() {
///     assert!(udg.has_edge(u, v));
/// }
/// ```
pub fn k_ldtg(points: &[Point2], r: f64, k: usize) -> Graph {
    assert!(k >= 1, "k must be at least 1");
    let udg = unit_disk_graph(points, r);
    let n = points.len();

    // k-hop neighbourhoods (sorted) and their membership sets.
    let nk: Vec<Vec<usize>> = (0..n).map(|u| udg.k_hop_neighborhood(u, k)).collect();
    let nk_set: Vec<HashSet<usize>> = nk.iter().map(|v| v.iter().copied().collect()).collect();

    // Local Delaunay edge sets A(Nk(u)), in global indices.
    let local_dt: Vec<HashSet<(usize, usize)>> = (0..n)
        .map(|u| local_delaunay_edges(points, &nk[u]))
        .collect();

    let mut g = Graph::new(n);
    for (u, v) in udg.edges() {
        if accepted(u, v, &udg, &nk_set, &local_dt) {
            g.add_edge(u, v);
        }
    }
    g
}

/// The paper's acceptance rule for the candidate link `uv`.
fn accepted(
    u: usize,
    v: usize,
    udg: &Graph,
    nk_set: &[HashSet<usize>],
    local_dt: &[HashSet<(usize, usize)>],
) -> bool {
    let e = ordered(u, v);
    // Must be in both endpoints' local triangulations.
    if !local_dt[u].contains(&e) || !local_dt[v].contains(&e) {
        return false;
    }
    // Every 1-hop witness of either endpoint that can see both endpoints
    // must agree.
    let witness_agrees = |w: usize| -> bool {
        if nk_set[w].contains(&u) && nk_set[w].contains(&v) {
            local_dt[w].contains(&e)
        } else {
            true
        }
    };
    udg.neighbors(u).iter().all(|&w| witness_agrees(w))
        && udg.neighbors(v).iter().all(|&w| witness_agrees(w))
}

/// Delaunay edge set of the induced point set `members` (global indices).
fn local_delaunay_edges(points: &[Point2], members: &[usize]) -> HashSet<(usize, usize)> {
    let local_pts: Vec<Point2> = members.iter().map(|&i| points[i]).collect();
    let tri = Triangulation::build(&local_pts);
    tri.edges()
        .map(|(a, b)| ordered(members[a], members[b]))
        .collect()
}

/// Node-local LDTG computation over a collected view.
///
/// `view` holds the positions a node currently knows (typically its `k`-hop
/// neighbourhood gathered via beaconing), with `self_idx` identifying the
/// computing node inside the slice. Returns the view-local indices of the
/// node's LDTG neighbours: radio neighbours `v` such that the edge
/// `self`–`v` is accepted by the paper's rule evaluated within the view.
///
/// This is what a GLR node runs at every route check; it degrades
/// gracefully when the view is incomplete (a truncated witness set can only
/// keep *more* edges, never disconnect the node from a Delaunay neighbour).
///
/// # Panics
///
/// Panics if `self_idx` is out of range, `k == 0`, or `r <= 0`.
///
/// # Examples
///
/// ```
/// use glr_geometry::{ldtg_local_neighbors, Point2};
///
/// let view = vec![
///     Point2::new(0.0, 0.0),   // self
///     Point2::new(60.0, 0.0),
///     Point2::new(0.0, 60.0),
/// ];
/// let nbrs = ldtg_local_neighbors(&view, 0, 100.0, 2);
/// assert_eq!(nbrs, vec![1, 2]);
/// ```
pub fn ldtg_local_neighbors(view: &[Point2], self_idx: usize, r: f64, k: usize) -> Vec<usize> {
    assert!(self_idx < view.len(), "self_idx out of range");
    assert!(k >= 1, "k must be at least 1");
    assert!(r > 0.0, "radius must be positive");
    let n = view.len();
    if n <= 1 {
        return Vec::new();
    }
    let udg = unit_disk_graph(view, r);
    let nk: Vec<Vec<usize>> = (0..n).map(|u| udg.k_hop_neighborhood(u, k)).collect();
    let nk_set: Vec<HashSet<usize>> = nk.iter().map(|v| v.iter().copied().collect()).collect();
    let local_dt: Vec<HashSet<(usize, usize)>> =
        (0..n).map(|u| local_delaunay_edges(view, &nk[u])).collect();

    let mut out: Vec<usize> = udg
        .neighbors(self_idx)
        .iter()
        .copied()
        .filter(|&v| accepted(self_idx, v, &udg, &nk_set, &local_dt))
        .collect();
    out.sort_unstable();
    out
}

#[inline]
fn ordered(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::segments_cross;

    fn pseudo_random_points(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point2::new(next() * w, next() * h))
            .collect()
    }

    fn assert_planar(points: &[Point2], g: &Graph) {
        let edges: Vec<_> = g.edges().collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            for &(c, d) in &edges[i + 1..] {
                assert!(
                    !segments_cross(points[a], points[b], points[c], points[d]),
                    "edges ({a},{b}) and ({c},{d}) cross"
                );
            }
        }
    }

    #[test]
    fn subgraph_of_udg() {
        let pts = pseudo_random_points(50, 1000.0, 1000.0, 11);
        let ldtg = k_ldtg(&pts, 250.0, 2);
        let udg = unit_disk_graph(&pts, 250.0);
        for (u, v) in ldtg.edges() {
            assert!(udg.has_edge(u, v));
        }
    }

    #[test]
    fn planar_for_k2_dense() {
        for seed in [3, 17, 101] {
            let pts = pseudo_random_points(50, 1000.0, 1000.0, seed);
            let ldtg = k_ldtg(&pts, 250.0, 2);
            assert_planar(&pts, &ldtg);
        }
    }

    #[test]
    fn planar_for_k2_sparse() {
        for seed in [9, 23] {
            let pts = pseudo_random_points(50, 1500.0, 300.0, seed);
            let ldtg = k_ldtg(&pts, 100.0, 2);
            assert_planar(&pts, &ldtg);
        }
    }

    #[test]
    fn preserves_udg_connectivity() {
        // The LDTG contains the Gabriel graph of each connected component,
        // so components must match the UDG's.
        for seed in [5, 29, 64] {
            let pts = pseudo_random_points(50, 1000.0, 1000.0, seed);
            let ldtg = k_ldtg(&pts, 250.0, 2);
            let udg = unit_disk_graph(&pts, 250.0);
            assert_eq!(
                ldtg.connected_components().len(),
                udg.connected_components().len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn dense_network_matches_delaunay_restricted_to_udg() {
        // With a radius covering the whole region, every node sees everyone
        // within k=2 hops, so the LDTG equals the true Delaunay graph.
        let pts = pseudo_random_points(30, 100.0, 100.0, 41);
        let r = 300.0; // everything within one hop
        let ldtg = k_ldtg(&pts, r, 2);
        let tri = Triangulation::build(&pts);
        for (u, v) in ldtg.edges() {
            assert!(tri.has_edge(u, v), "extra edge ({u},{v})");
        }
        for (u, v) in tri.edges() {
            if pts[u].dist(pts[v]) <= r {
                assert!(ldtg.has_edge(u, v), "missing Delaunay edge ({u},{v})");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(k_ldtg(&[], 10.0, 2).len(), 0);
        let one = k_ldtg(&[Point2::ORIGIN], 10.0, 2);
        assert_eq!(one.edge_count(), 0);
        let two = k_ldtg(&[Point2::ORIGIN, Point2::new(5.0, 0.0)], 10.0, 2);
        assert!(two.has_edge(0, 1));
        let far = k_ldtg(&[Point2::ORIGIN, Point2::new(50.0, 0.0)], 10.0, 2);
        assert_eq!(far.edge_count(), 0);
    }

    #[test]
    fn local_view_agrees_on_complete_information() {
        // When the view includes the whole component, the local rule equals
        // the global rule for edges incident to the node.
        let pts = pseudo_random_points(25, 300.0, 300.0, 7);
        let r = 150.0;
        let k = 2;
        let global = k_ldtg(&pts, r, k);
        let udg = unit_disk_graph(&pts, r);
        for u in 0..pts.len() {
            // View = u's component (complete information about it).
            let comp: Vec<usize> = udg
                .connected_components()
                .into_iter()
                .find(|c| c.contains(&u))
                .unwrap();
            let view: Vec<Point2> = comp.iter().map(|&i| pts[i]).collect();
            let self_local = comp.iter().position(|&i| i == u).unwrap();
            let local = ldtg_local_neighbors(&view, self_local, r, k);
            let mut got: Vec<usize> = local.iter().map(|&li| comp[li]).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = global.neighbors(u).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "node {u}");
        }
    }

    #[test]
    fn local_view_truncated_keeps_superset_of_radio_delaunay() {
        // With only the 2-hop view, the node must still find at least its
        // true LDTG neighbours that lie inside the view.
        let pts = pseudo_random_points(40, 600.0, 600.0, 19);
        let r = 180.0;
        let global = k_ldtg(&pts, r, 2);
        let udg = unit_disk_graph(&pts, r);
        for u in 0..pts.len() {
            let view_ids = udg.k_hop_neighborhood(u, 2);
            let view: Vec<Point2> = view_ids.iter().map(|&i| pts[i]).collect();
            let self_local = view_ids.iter().position(|&i| i == u).unwrap();
            let local = ldtg_local_neighbors(&view, self_local, r, 2);
            let got: HashSet<usize> = local.iter().map(|&li| view_ids[li]).collect();
            for &v in global.neighbors(u) {
                assert!(
                    got.contains(&v),
                    "node {u} lost true LDTG neighbour {v} in local view"
                );
            }
        }
    }

    #[test]
    fn local_neighbors_of_isolated_node() {
        let view = vec![Point2::ORIGIN];
        assert!(ldtg_local_neighbors(&view, 0, 50.0, 2).is_empty());
    }
}
