//! Unit-disk graphs: the connectivity model of the paper's wireless network.
//!
//! Two nodes are connected iff their Euclidean distance is at most the
//! common transmission radius `r`. The paper's Figure 1 (topology of 50
//! nodes at 250 m vs 100 m in a 1000 m x 1000 m area) is exactly a pair of
//! unit-disk graphs; [`connectivity_radius_bound`] is the Georgiou et al.
//! bound the copy-count decision (Algorithm 1) relies on.

use crate::graph::Graph;
use crate::grid::Grid;
use crate::point::Point2;

/// Builds the unit-disk graph of `points` with transmission radius `r`.
///
/// Edges are inclusive: `dist(u, v) <= r` connects.
///
/// # Panics
///
/// Panics if `r` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use glr_geometry::{unit_disk_graph, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(50.0, 0.0),
///     Point2::new(200.0, 0.0),
/// ];
/// let g = unit_disk_graph(&pts, 100.0);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// assert!(!g.is_connected());
/// ```
pub fn unit_disk_graph(points: &[Point2], r: f64) -> Graph {
    assert!(r.is_finite() && r > 0.0, "radius must be positive, got {r}");
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = Grid::build(points, r);
    for (u, &p) in points.iter().enumerate() {
        grid.for_each_within(points, p, r, |v| {
            if u < v {
                g.add_edge(u, v);
            }
        });
    }
    g
}

/// The Georgiou et al. connectivity radius bound used by GLR's copy-count
/// decision: a random network of `n` nodes in a **unit square** is connected
/// with probability at least `1 - 1/s` when the radius is at least
/// `sqrt((ln n + ln s) / (n * pi))`.
///
/// For a rectangular region of area `A`, scale the result by `sqrt(A)`
/// (see [`connectivity_radius_for_region`]).
///
/// # Panics
///
/// Panics unless `n >= 2` and `s > 1`.
///
/// # Examples
///
/// ```
/// use glr_geometry::connectivity_radius_bound;
///
/// // 50 nodes, 90% connectivity confidence (s = 10):
/// let r = connectivity_radius_bound(50, 10.0);
/// assert!(r > 0.19 && r < 0.21);
/// ```
pub fn connectivity_radius_bound(n: usize, s: f64) -> f64 {
    assert!(n >= 2, "need at least two nodes, got {n}");
    assert!(s > 1.0, "confidence parameter s must exceed 1, got {s}");
    (((n as f64).ln() + s.ln()) / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// [`connectivity_radius_bound`] scaled to a rectangular region of the given
/// dimensions: the radius (in the same units as the dimensions) above which
/// the network is connected with probability at least `1 - 1/s`.
///
/// # Examples
///
/// ```
/// use glr_geometry::connectivity_radius_for_region;
///
/// // The paper's 1500 m x 300 m strip with 50 nodes: the threshold falls
/// // between 100 m (3 copies) and 150 m (single copy).
/// let r = connectivity_radius_for_region(50, 10.0, 1500.0, 300.0);
/// assert!(r > 100.0 && r < 150.0);
/// ```
pub fn connectivity_radius_for_region(n: usize, s: f64, width: f64, height: f64) -> f64 {
    assert!(
        width > 0.0 && height > 0.0,
        "region dimensions must be positive"
    );
    connectivity_radius_bound(n, s) * (width * height).sqrt()
}

/// Estimated probability that a random `n`-node deployment with radius `r`
/// in a `width x height` region is connected, inverted from the Georgiou
/// bound: `p >= 1 - 1/s` where `ln s = n * pi * (r/sqrt(A))^2 - ln n`.
///
/// Clamped to `[0, 1]`. This is the quantity GLR's Algorithm 1 thresholds.
///
/// # Examples
///
/// ```
/// use glr_geometry::connectivity_probability;
///
/// let dense = connectivity_probability(50, 250.0, 1000.0, 1000.0);
/// let sparse = connectivity_probability(50, 100.0, 1000.0, 1000.0);
/// assert!(dense > 0.9);
/// assert!(sparse < 0.5);
/// ```
pub fn connectivity_probability(n: usize, r: f64, width: f64, height: f64) -> f64 {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        r > 0.0 && width > 0.0 && height > 0.0,
        "dimensions must be positive"
    );
    let rn = r / (width * height).sqrt();
    let ln_s = n as f64 * std::f64::consts::PI * rn * rn - (n as f64).ln();
    if ln_s <= 0.0 {
        return 0.0;
    }
    (1.0 - (-ln_s).exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_inclusive_at_radius() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        assert!(unit_disk_graph(&pts, 100.0).has_edge(0, 1));
        assert!(!unit_disk_graph(&pts, 99.999).has_edge(0, 1));
    }

    #[test]
    fn matches_brute_force() {
        let mut pts = Vec::new();
        let mut state = 12345u64;
        for _ in 0..120 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 20) % 1000) as f64;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 20) % 1000) as f64;
            pts.push(Point2::new(x, y));
        }
        let r = 150.0;
        let g = unit_disk_graph(&pts, r);
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                assert_eq!(g.has_edge(u, v), pts[u].dist(pts[v]) <= r, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn empty_input() {
        let g = unit_disk_graph(&[], 10.0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn non_positive_radius_panics() {
        unit_disk_graph(&[Point2::ORIGIN], 0.0);
    }

    #[test]
    fn radius_bound_monotone_in_n() {
        // More nodes need a smaller radius for the same confidence.
        let r50 = connectivity_radius_bound(50, 10.0);
        let r500 = connectivity_radius_bound(500, 10.0);
        assert!(r500 < r50);
    }

    #[test]
    fn paper_threshold_between_100_and_150m() {
        // The paper uses 3 copies at 50/100 m and 1 copy at 150/200/250 m in
        // the 1500x300 region; the bound should separate those regimes.
        let r = connectivity_radius_for_region(50, 10.0, 1500.0, 300.0);
        assert!(r > 100.0 && r < 150.0, "threshold {r}");
    }

    #[test]
    fn probability_monotone_in_radius() {
        let mut last = 0.0;
        for r in [50.0, 100.0, 150.0, 200.0, 250.0] {
            let p = connectivity_probability(50, r, 1000.0, 1000.0);
            assert!(p >= last, "probability must be non-decreasing in r");
            last = p;
        }
        assert!(connectivity_probability(50, 250.0, 1000.0, 1000.0) > 0.9);
    }

    #[test]
    fn fig1_shape_250_vs_100() {
        // Reproduce Figure 1's qualitative claim on a deterministic sample:
        // 50 nodes in 1000x1000; at 250 m the graph is connected or nearly
        // so, at 100 m it is badly fragmented.
        let mut pts = Vec::new();
        let mut state = 777u64;
        for _ in 0..50 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let x = ((state >> 17) % 1000) as f64;
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let y = ((state >> 17) % 1000) as f64;
            pts.push(Point2::new(x, y));
        }
        let dense = unit_disk_graph(&pts, 250.0);
        let sparse = unit_disk_graph(&pts, 100.0);
        assert!(dense.connected_components().len() <= 3);
        assert!(sparse.connected_components().len() > dense.connected_components().len());
        assert!(dense.edge_count() > 3 * sparse.edge_count());
    }
}
