//! Spanner quality metrics.
//!
//! The paper leans on the local Delaunay triangulation being a *constant
//! stretch* planar spanner (Keil & Gutwin bound the Delaunay stretch by
//! ~2.42). These metrics quantify that for any subgraph: the worst-case and
//! average ratio of graph distance to straight-line distance, and the ratio
//! against unit-disk-graph distances (what pruning to a spanner costs).

use crate::graph::Graph;
use crate::point::Point2;

/// Summary of a spanner-quality measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchReport {
    /// Maximum over connected pairs of `d_G(u,v) / |uv|`.
    pub max_stretch: f64,
    /// Mean of the same ratio over connected pairs.
    pub mean_stretch: f64,
    /// Number of (ordered-once) pairs measured.
    pub pairs: usize,
}

/// Euclidean stretch of `g` relative to straight-line distance.
///
/// Only connected pairs with distinct positions contribute. Returns a
/// report with `max_stretch = 1` when fewer than two vertices are
/// connected.
///
/// # Panics
///
/// Panics if `positions.len() != g.len()`.
///
/// # Examples
///
/// ```
/// use glr_geometry::{euclidean_stretch, Graph, Point2};
///
/// // A detour: path 0-1-2 where 0-2 would be direct.
/// let pos = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 1.0),
///     Point2::new(2.0, 0.0),
/// ];
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// let r = euclidean_stretch(&g, &pos);
/// assert!((r.max_stretch - 2.0_f64.sqrt()).abs() < 1e-9);
/// ```
pub fn euclidean_stretch(g: &Graph, positions: &[Point2]) -> StretchReport {
    assert_eq!(
        positions.len(),
        g.len(),
        "positions must match vertex count"
    );
    let n = g.len();
    let mut max_s: f64 = 1.0;
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for u in 0..n {
        let d = g.euclidean_shortest_paths(u, positions);
        for v in (u + 1)..n {
            if !d[v].is_finite() {
                continue;
            }
            let direct = positions[u].dist(positions[v]);
            if direct == 0.0 {
                continue;
            }
            let s = d[v] / direct;
            max_s = max_s.max(s);
            sum += s;
            pairs += 1;
        }
    }
    StretchReport {
        max_stretch: max_s,
        mean_stretch: if pairs > 0 { sum / pairs as f64 } else { 1.0 },
        pairs,
    }
}

/// Stretch of subgraph `g` relative to the Euclidean shortest paths of a
/// reference graph `reference` (typically the unit-disk graph `g` was
/// pruned from): the worst and mean ratio `d_g(u,v) / d_ref(u,v)` over
/// pairs connected in the reference.
///
/// Pairs connected in the reference but not in `g` would have infinite
/// stretch; they are counted in `pairs` but reported through
/// `max_stretch = f64::INFINITY`.
///
/// # Panics
///
/// Panics if the graphs have different vertex counts or `positions` does
/// not match.
pub fn relative_stretch(g: &Graph, reference: &Graph, positions: &[Point2]) -> StretchReport {
    assert_eq!(g.len(), reference.len(), "vertex counts must match");
    assert_eq!(
        positions.len(),
        g.len(),
        "positions must match vertex count"
    );
    let n = g.len();
    let mut max_s: f64 = 1.0;
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for u in 0..n {
        let dg = g.euclidean_shortest_paths(u, positions);
        let dr = reference.euclidean_shortest_paths(u, positions);
        for v in (u + 1)..n {
            if !dr[v].is_finite() || dr[v] == 0.0 {
                continue;
            }
            pairs += 1;
            let s = dg[v] / dr[v];
            max_s = max_s.max(s);
            if s.is_finite() {
                sum += s;
            }
        }
    }
    StretchReport {
        max_stretch: max_s,
        mean_stretch: if pairs > 0 { sum / pairs as f64 } else { 1.0 },
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delaunay::Triangulation;
    use crate::ldt::k_ldtg;
    use crate::udg::unit_disk_graph;

    fn pseudo_random_points(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point2::new(next() * w, next() * h))
            .collect()
    }

    #[test]
    fn complete_graph_stretch_is_one() {
        let pts = pseudo_random_points(12, 100.0, 100.0, 4);
        let mut g = Graph::new(12);
        for u in 0..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        let r = euclidean_stretch(&g, &pts);
        assert!((r.max_stretch - 1.0).abs() < 1e-12);
        assert!((r.mean_stretch - 1.0).abs() < 1e-12);
        assert_eq!(r.pairs, 12 * 11 / 2);
    }

    #[test]
    fn delaunay_stretch_below_keil_gutwin_bound() {
        // The Delaunay triangulation is a ~2.42-spanner of the complete
        // Euclidean graph; random instances should sit well below that.
        for seed in [2, 6, 18] {
            let pts = pseudo_random_points(60, 1000.0, 1000.0, seed);
            let tri = Triangulation::build(&pts);
            let r = euclidean_stretch(&tri.to_graph(), &pts);
            assert!(
                r.max_stretch < 2.42,
                "seed {seed}: stretch {} exceeds Keil-Gutwin bound",
                r.max_stretch
            );
            assert!(r.mean_stretch >= 1.0);
        }
    }

    #[test]
    fn ldtg_constant_stretch_vs_udg() {
        // The k-LDTG should approximate UDG distances within a small
        // constant — the property that makes it a good routing graph.
        for seed in [10, 30] {
            let pts = pseudo_random_points(50, 1000.0, 1000.0, seed);
            let udg = unit_disk_graph(&pts, 280.0);
            let ldtg = k_ldtg(&pts, 280.0, 2);
            let r = relative_stretch(&ldtg, &udg, &pts);
            assert!(
                r.max_stretch.is_finite(),
                "spanner must preserve connectivity"
            );
            assert!(
                r.max_stretch < 4.0,
                "seed {seed}: LDTG/UDG stretch {}",
                r.max_stretch
            );
        }
    }

    #[test]
    fn disconnected_pairs_are_skipped() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(10.0, 0.0),
        ];
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let r = euclidean_stretch(&g, &pts);
        assert_eq!(r.pairs, 1);
        assert!((r.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_connectivity_reported_as_infinite_relative_stretch() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let mut reference = Graph::new(2);
        reference.add_edge(0, 1);
        let g = Graph::new(2); // empty subgraph
        let r = relative_stretch(&g, &reference, &pts);
        assert!(r.max_stretch.is_infinite());
        assert_eq!(r.pairs, 1);
    }
}
