//! Delaunay triangulation via Bowyer–Watson incremental insertion.
//!
//! The GLR spanner is built from *local* Delaunay triangulations of k-hop
//! neighbourhoods (at most a few dozen points each), so an `O(n^2)`
//! incremental algorithm with exact predicates is the right trade-off:
//! simple, robust, and fast at the sizes that matter. The implementation
//! still handles thousands of points well enough for the benchmark suite.
//!
//! Degenerate inputs get the standard limit behaviour: fewer than two
//! points yield no edges, two points yield one edge, and fully collinear
//! sets yield the path connecting consecutive points.

use crate::point::Point2;
use crate::predicates::{incircle, orient2d, Sign};
use std::collections::HashSet;

/// A Delaunay triangulation of a point set.
///
/// Construct with [`Triangulation::build`]. Triangle vertices are indices
/// into the original slice and are stored in counter-clockwise order.
///
/// # Examples
///
/// ```
/// use glr_geometry::{Point2, Triangulation};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(0.0, 1.0),
///     Point2::new(1.0, 1.0),
/// ];
/// let tri = Triangulation::build(&pts);
/// assert_eq!(tri.triangles().len(), 2);
/// assert!(tri.has_edge(0, 1));
/// assert!(tri.has_edge(0, 3) ^ tri.has_edge(1, 2)); // one diagonal
/// ```
#[derive(Debug, Clone)]
pub struct Triangulation {
    triangles: Vec<[usize; 3]>,
    edges: HashSet<(usize, usize)>,
    num_points: usize,
}

impl Triangulation {
    /// Builds the Delaunay triangulation of `points`.
    ///
    /// Duplicate points are tolerated (duplicates after the first are
    /// skipped and end up isolated). Cocircular configurations are resolved
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    pub fn build(points: &[Point2]) -> Self {
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} has non-finite coordinates");
        }
        let n = points.len();
        if n < 2 {
            return Triangulation {
                triangles: Vec::new(),
                edges: HashSet::new(),
                num_points: n,
            };
        }
        if n == 2 {
            let mut edges = HashSet::new();
            if points[0] != points[1] {
                edges.insert(ordered(0, 1));
            }
            return Triangulation {
                triangles: Vec::new(),
                edges,
                num_points: n,
            };
        }

        if let Some(chain) = collinear_chain(points) {
            return Triangulation {
                triangles: Vec::new(),
                edges: chain,
                num_points: n,
            };
        }

        Self::bowyer_watson(points)
    }

    fn bowyer_watson(points: &[Point2]) -> Self {
        let n = points.len();
        // Working point list: real points then three super-triangle vertices.
        let (min, max) = crate::grid::bounding_box(points);
        let span = (max.x - min.x).max(max.y - min.y).max(1.0);
        let cx = (min.x + max.x) * 0.5;
        let cy = (min.y + max.y) * 0.5;
        // Far enough that no circumcircle of a non-degenerate real triangle
        // reaches the super vertices at simulation scales.
        let big = span * 1.0e6;
        let mut pts: Vec<Point2> = points.to_vec();
        pts.push(Point2::new(cx - 2.0 * big, cy - big));
        pts.push(Point2::new(cx + 2.0 * big, cy - big));
        pts.push(Point2::new(cx, cy + 2.0 * big));
        let s0 = n;
        let s1 = n + 1;
        let s2 = n + 2;

        let mut tris: Vec<[usize; 3]> = vec![[s0, s1, s2]];
        let mut seen_dup: HashSet<(u64, u64)> = HashSet::new();

        for p in 0..n {
            // Skip exact duplicates: inserting them would create degenerate
            // triangles.
            let key = (pts[p].x.to_bits(), pts[p].y.to_bits());
            if !seen_dup.insert(key) {
                continue;
            }
            // Find all triangles whose circumcircle contains pts[p].
            let mut bad: Vec<usize> = Vec::new();
            for (ti, t) in tris.iter().enumerate() {
                if in_circumcircle(&pts, *t, pts[p]) {
                    bad.push(ti);
                }
            }
            // Boundary of the cavity: edges belonging to exactly one bad
            // triangle.
            let mut boundary: Vec<(usize, usize)> = Vec::new();
            for &ti in &bad {
                let t = tris[ti];
                for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                    let shared = bad.iter().any(|&tj| {
                        tj != ti && {
                            let u = tris[tj];
                            let es = [
                                ordered(u[0], u[1]),
                                ordered(u[1], u[2]),
                                ordered(u[2], u[0]),
                            ];
                            es.contains(&ordered(e.0, e.1))
                        }
                    });
                    if !shared {
                        boundary.push(e);
                    }
                }
            }
            // Remove bad triangles (descending order keeps indices valid).
            for &ti in bad.iter().rev() {
                tris.swap_remove(ti);
            }
            // Re-triangulate the cavity.
            for (a, b) in boundary {
                // Ensure counter-clockwise orientation.
                match orient2d(pts[a], pts[b], pts[p]) {
                    Sign::Positive => tris.push([a, b, p]),
                    Sign::Negative => tris.push([b, a, p]),
                    Sign::Zero => {} // degenerate sliver; skip
                }
            }
        }

        // Drop triangles using super vertices.
        let triangles: Vec<[usize; 3]> = tris
            .into_iter()
            .filter(|t| t.iter().all(|&v| v < n))
            .collect();
        let mut edges = HashSet::new();
        for t in &triangles {
            edges.insert(ordered(t[0], t[1]));
            edges.insert(ordered(t[1], t[2]));
            edges.insert(ordered(t[2], t[0]));
        }
        Triangulation {
            triangles,
            edges,
            num_points: n,
        }
    }

    /// The triangles, each a counter-clockwise index triple.
    #[inline]
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Number of points the triangulation was built from.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// `true` when `uv` is a Delaunay edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&ordered(u, v))
    }

    /// Iterates over the undirected edge set as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Converts the edge set to a [`crate::Graph`] on the same vertex indices.
    pub fn to_graph(&self) -> crate::Graph {
        let mut g = crate::Graph::new(self.num_points);
        for &(u, v) in &self.edges {
            g.add_edge(u, v);
        }
        g
    }
}

/// Circumcircle membership for Bowyer–Watson, robust to the triangle's
/// stored orientation.
fn in_circumcircle(pts: &[Point2], t: [usize; 3], p: Point2) -> bool {
    let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
    match orient2d(a, b, c) {
        Sign::Positive => incircle(a, b, c, p) == Sign::Positive,
        Sign::Negative => incircle(a, c, b, p) == Sign::Positive,
        Sign::Zero => false,
    }
}

#[inline]
fn ordered(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// When all points are collinear, returns the path edge set connecting
/// consecutive distinct points along the line; `None` otherwise.
fn collinear_chain(points: &[Point2]) -> Option<HashSet<(usize, usize)>> {
    let n = points.len();
    // Find two distinct points to define the line.
    let first = points[0];
    let anchor = (1..n).find(|&i| points[i] != first)?;
    for i in 1..n {
        if orient2d(first, points[anchor], points[i]) != Sign::Zero {
            return None;
        }
    }
    // Sort along the dominant axis and connect consecutive distinct points.
    let mut idx: Vec<usize> = (0..n).collect();
    let dx = (points[anchor].x - first.x).abs();
    let dy = (points[anchor].y - first.y).abs();
    if dx >= dy {
        idx.sort_by(|&a, &b| points[a].x.partial_cmp(&points[b].x).unwrap());
    } else {
        idx.sort_by(|&a, &b| points[a].y.partial_cmp(&points[b].y).unwrap());
    }
    let mut edges = HashSet::new();
    let mut prev = idx[0];
    for &i in &idx[1..] {
        if points[i] != points[prev] {
            edges.insert(ordered(prev, i));
            prev = i;
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive empty-circumcircle check; cocircular points allowed on the
    /// boundary.
    fn assert_delaunay(points: &[Point2], tri: &Triangulation) {
        for t in tri.triangles() {
            let (a, b, c) = (points[t[0]], points[t[1]], points[t[2]]);
            assert_eq!(orient2d(a, b, c), Sign::Positive, "triangle not ccw");
            for (i, &p) in points.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                assert_ne!(
                    incircle(a, b, c, p),
                    Sign::Positive,
                    "point {i} strictly inside circumcircle of {t:?}"
                );
            }
        }
    }

    fn pseudo_random_points(n: usize, scale: f64, seed: u64) -> Vec<Point2> {
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point2::new(next() * scale, next() * scale))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(Triangulation::build(&[]).edge_count(), 0);
        assert_eq!(Triangulation::build(&[Point2::ORIGIN]).edge_count(), 0);
    }

    #[test]
    fn two_points_single_edge() {
        let tri = Triangulation::build(&[Point2::ORIGIN, Point2::new(1.0, 0.0)]);
        assert!(tri.has_edge(0, 1));
        assert_eq!(tri.edge_count(), 1);
        assert!(tri.triangles().is_empty());
    }

    #[test]
    fn duplicate_points_tolerated() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 0.0), // duplicate of index 1
        ];
        let tri = Triangulation::build(&pts);
        assert_eq!(tri.triangles().len(), 1);
    }

    #[test]
    fn single_triangle() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, 1.0),
        ];
        let tri = Triangulation::build(&pts);
        assert_eq!(tri.triangles().len(), 1);
        assert_eq!(tri.edge_count(), 3);
        assert_delaunay(&pts, &tri);
    }

    #[test]
    fn collinear_points_form_chain() {
        let pts = vec![
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(3.0, 3.0),
        ];
        let tri = Triangulation::build(&pts);
        assert!(tri.triangles().is_empty());
        assert_eq!(tri.edge_count(), 3);
        assert!(tri.has_edge(1, 2));
        assert!(tri.has_edge(2, 0));
        assert!(tri.has_edge(0, 3));
        assert!(!tri.has_edge(1, 3));
    }

    #[test]
    fn vertical_collinear_chain() {
        let pts = vec![
            Point2::new(0.0, 3.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.0, 2.0),
        ];
        let tri = Triangulation::build(&pts);
        assert_eq!(tri.edge_count(), 2);
        assert!(tri.has_edge(1, 2));
        assert!(tri.has_edge(2, 0));
    }

    #[test]
    fn square_has_two_triangles() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let tri = Triangulation::build(&pts);
        assert_eq!(tri.triangles().len(), 2);
        // All four sides present.
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            assert!(tri.has_edge(u, v), "missing side ({u},{v})");
        }
        assert_delaunay(&pts, &tri);
    }

    #[test]
    fn random_points_are_delaunay() {
        for seed in [1, 7, 42] {
            let pts = pseudo_random_points(60, 1000.0, seed);
            let tri = Triangulation::build(&pts);
            assert_delaunay(&pts, &tri);
            // Euler: for a triangulation of a point set with h hull vertices,
            // triangles = 2n - 2 - h and edges = 3n - 3 - h.
            let h = crate::hull::convex_hull(&pts).len();
            let n = pts.len();
            assert_eq!(tri.triangles().len(), 2 * n - 2 - h, "seed {seed}");
            assert_eq!(tri.edge_count(), 3 * n - 3 - h, "seed {seed}");
        }
    }

    #[test]
    fn hull_edges_belong_to_triangulation() {
        let pts = pseudo_random_points(40, 500.0, 123);
        let tri = Triangulation::build(&pts);
        let hull = crate::hull::convex_hull(&pts);
        for w in 0..hull.len() {
            let u = hull[w];
            let v = hull[(w + 1) % hull.len()];
            assert!(tri.has_edge(u, v), "hull edge ({u},{v}) missing");
        }
    }

    #[test]
    fn grid_points_cocircular_ok() {
        // 4x4 grid: every unit square is cocircular — worst case for the
        // incircle tie-breaking.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(Point2::new(i as f64, j as f64));
            }
        }
        let tri = Triangulation::build(&pts);
        assert_delaunay(&pts, &tri);
        // Euler's formula counts *boundary* vertices including collinear
        // ones: the 4x4 grid has 12 of them (strict hull has only 4).
        let h = 12;
        assert_eq!(tri.triangles().len(), 2 * pts.len() - 2 - h);
        assert_eq!(tri.edge_count(), 3 * pts.len() - 3 - h);
    }

    #[test]
    fn to_graph_roundtrip() {
        let pts = pseudo_random_points(25, 100.0, 5);
        let tri = Triangulation::build(&pts);
        let g = tri.to_graph();
        assert_eq!(g.edge_count(), tri.edge_count());
        for (u, v) in tri.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn delaunay_edges_do_not_cross() {
        let pts = pseudo_random_points(50, 800.0, 99);
        let tri = Triangulation::build(&pts);
        let edges: Vec<_> = tri.edges().collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            for &(c, d) in &edges[i + 1..] {
                assert!(
                    !crate::predicates::segments_cross(pts[a], pts[b], pts[c], pts[d]),
                    "edges ({a},{b}) and ({c},{d}) cross"
                );
            }
        }
    }
}
