//! Robust geometric predicates: orientation and in-circle tests.
//!
//! Delaunay triangulation correctness hinges on consistent answers from the
//! `orient2d` and `incircle` predicates. Plain floating-point evaluation can
//! return inconsistent signs for nearly-degenerate inputs, which manifests as
//! crossing edges or infinite loops in Bowyer–Watson. We use the classic
//! *filtered* approach (Shewchuk, 1997):
//!
//! 1. evaluate the determinant in ordinary `f64` arithmetic,
//! 2. compare against a forward error bound,
//! 3. when the result is smaller than the bound, re-evaluate with
//!    double-double ("two-float") expansion arithmetic, which is exact for
//!    the polynomials involved here for all practically occurring inputs.
//!
//! The double-double stage is not a full adaptive-precision implementation,
//! but its ~106-bit mantissa exceeds what is needed for coordinates that fit
//! a simulation region (|x| < 1e8 with metre-scale separations), and a
//! deterministic tie-break keeps the triangulation consistent even in exact
//! ties.

use crate::point::Point2;

/// Sign of a predicate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative determinant.
    Negative,
    /// Exactly zero (degenerate configuration).
    Zero,
    /// Strictly positive determinant.
    Positive,
}

impl Sign {
    /// Converts a raw float to a sign.
    #[inline]
    fn of(v: f64) -> Sign {
        if v > 0.0 {
            Sign::Positive
        } else if v < 0.0 {
            Sign::Negative
        } else {
            Sign::Zero
        }
    }

    /// `true` when the sign is [`Sign::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        self == Sign::Positive
    }

    /// `true` when the sign is [`Sign::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        self == Sign::Negative
    }

    /// `true` when the sign is [`Sign::Zero`].
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Sign::Zero
    }
}

// ---------------------------------------------------------------------------
// Double-double ("two-float") expansion arithmetic.
// ---------------------------------------------------------------------------

/// A number represented as an unevaluated sum `hi + lo` with `|lo| <= ulp(hi)/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dd {
    hi: f64,
    lo: f64,
}

impl Dd {
    const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };

    /// Exact lift of a double (used by the predicate tests).
    #[cfg(test)]
    #[inline]
    fn from_f64(v: f64) -> Dd {
        Dd { hi: v, lo: 0.0 }
    }

    /// Error-free sum of two doubles (Knuth two-sum).
    #[inline]
    fn two_sum(a: f64, b: f64) -> Dd {
        let s = a + b;
        let bv = s - a;
        let av = s - bv;
        let err = (a - av) + (b - bv);
        Dd { hi: s, lo: err }
    }

    /// Error-free product of two doubles using FMA.
    #[inline]
    fn two_prod(a: f64, b: f64) -> Dd {
        let p = a * b;
        let err = a.mul_add(b, -p);
        Dd { hi: p, lo: err }
    }

    #[inline]
    fn add(self, other: Dd) -> Dd {
        let s = Dd::two_sum(self.hi, other.hi);
        let lo = s.lo + self.lo + other.lo;
        let r = Dd::two_sum(s.hi, lo);
        Dd { hi: r.hi, lo: r.lo }
    }

    #[inline]
    fn sub(self, other: Dd) -> Dd {
        self.add(Dd {
            hi: -other.hi,
            lo: -other.lo,
        })
    }

    #[inline]
    fn mul(self, other: Dd) -> Dd {
        let p = Dd::two_prod(self.hi, other.hi);
        let lo = p.lo + self.hi * other.lo + self.lo * other.hi;
        let r = Dd::two_sum(p.hi, lo);
        Dd { hi: r.hi, lo: r.lo }
    }

    #[inline]
    fn sign(self) -> Sign {
        if self.hi > 0.0 || (self.hi == 0.0 && self.lo > 0.0) {
            Sign::Positive
        } else if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            Sign::Negative
        } else {
            Sign::Zero
        }
    }
}

// ---------------------------------------------------------------------------
// orient2d
// ---------------------------------------------------------------------------

/// Error-bound coefficient for the `orient2d` filter (Shewchuk's `ccwerrboundA`).
const ORIENT_ERRBOUND: f64 = (3.0 + 16.0 * f64::EPSILON) * f64::EPSILON;

/// Orientation of the ordered triple `(a, b, c)`.
///
/// Returns [`Sign::Positive`] when the triple winds counter-clockwise,
/// [`Sign::Negative`] when clockwise, and [`Sign::Zero`] when collinear.
///
/// The computation is exact: a floating-point filter falls back to
/// double-double arithmetic near degeneracy.
///
/// # Examples
///
/// ```
/// use glr_geometry::{orient2d, Point2, Sign};
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(1.0, 0.0);
/// let c = Point2::new(0.0, 1.0);
/// assert_eq!(orient2d(a, b, c), Sign::Positive);
/// assert_eq!(orient2d(a, c, b), Sign::Negative);
/// assert_eq!(orient2d(a, b, Point2::new(2.0, 0.0)), Sign::Zero);
/// ```
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Sign {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Sign::of(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Sign::of(det);
        }
        -(detleft + detright)
    } else {
        return Sign::of(det);
    };

    let errbound = ORIENT_ERRBOUND * detsum;
    if det >= errbound || -det >= errbound {
        return Sign::of(det);
    }

    orient2d_dd(a, b, c)
}

/// Double-double evaluation of the orientation determinant.
fn orient2d_dd(a: Point2, b: Point2, c: Point2) -> Sign {
    let acx = Dd::two_sum(a.x, -c.x);
    let acy = Dd::two_sum(a.y, -c.y);
    let bcx = Dd::two_sum(b.x, -c.x);
    let bcy = Dd::two_sum(b.y, -c.y);
    let left = acx.mul(bcy);
    let right = acy.mul(bcx);
    left.sub(right).sign()
}

/// Raw orientation determinant value (non-robust), `2 * signed area` of the
/// triangle `abc`. Useful when the magnitude matters (e.g. area computations)
/// rather than only the sign.
#[inline]
pub fn orient2d_raw(a: Point2, b: Point2, c: Point2) -> f64 {
    (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x)
}

// ---------------------------------------------------------------------------
// incircle
// ---------------------------------------------------------------------------

/// Error-bound coefficient for the `incircle` filter (Shewchuk's `iccerrboundA`).
const INCIRCLE_ERRBOUND: f64 = (10.0 + 96.0 * f64::EPSILON) * f64::EPSILON;

/// In-circle test: position of `d` relative to the circumcircle of `(a, b, c)`.
///
/// With `(a, b, c)` in **counter-clockwise** order, the result is
/// [`Sign::Positive`] when `d` lies strictly inside the circumcircle,
/// [`Sign::Negative`] when strictly outside, and [`Sign::Zero`] when
/// cocircular. For clockwise triangles the sign is flipped; callers should
/// normalise orientation first (the Delaunay code does).
///
/// # Examples
///
/// ```
/// use glr_geometry::{incircle, Point2, Sign};
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(2.0, 0.0);
/// let c = Point2::new(0.0, 2.0);
/// assert_eq!(incircle(a, b, c, Point2::new(0.5, 0.5)), Sign::Positive);
/// assert_eq!(incircle(a, b, c, Point2::new(5.0, 5.0)), Sign::Negative);
/// assert_eq!(incircle(a, b, c, Point2::new(2.0, 2.0)), Sign::Zero);
/// ```
pub fn incircle(a: Point2, b: Point2, c: Point2, d: Point2) -> Sign {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = INCIRCLE_ERRBOUND * permanent;
    if det > errbound || -det > errbound {
        return Sign::of(det);
    }

    incircle_dd(a, b, c, d)
}

/// Double-double evaluation of the in-circle determinant.
fn incircle_dd(a: Point2, b: Point2, c: Point2, d: Point2) -> Sign {
    let adx = Dd::two_sum(a.x, -d.x);
    let ady = Dd::two_sum(a.y, -d.y);
    let bdx = Dd::two_sum(b.x, -d.x);
    let bdy = Dd::two_sum(b.y, -d.y);
    let cdx = Dd::two_sum(c.x, -d.x);
    let cdy = Dd::two_sum(c.y, -d.y);

    let alift = adx.mul(adx).add(ady.mul(ady));
    let blift = bdx.mul(bdx).add(bdy.mul(bdy));
    let clift = cdx.mul(cdx).add(cdy.mul(cdy));

    let bcd = bdx.mul(cdy).sub(cdx.mul(bdy));
    let cad = cdx.mul(ady).sub(adx.mul(cdy));
    let abd = adx.mul(bdy).sub(bdx.mul(ady));

    let det = alift.mul(bcd).add(blift.mul(cad)).add(clift.mul(abd));
    let _ = Dd::ZERO;
    det.sign()
}

/// `true` when `p` lies strictly inside the disk with diameter `uv`.
///
/// This is the Gabriel-graph membership predicate: the edge `uv` belongs to
/// the Gabriel graph iff no other point lies in the closed diametral disk.
///
/// ```
/// use glr_geometry::{in_diametral_disk, Point2};
///
/// let u = Point2::new(0.0, 0.0);
/// let v = Point2::new(2.0, 0.0);
/// assert!(in_diametral_disk(Point2::new(1.0, 0.5), u, v));
/// assert!(!in_diametral_disk(Point2::new(0.0, 2.0), u, v));
/// ```
#[inline]
pub fn in_diametral_disk(p: Point2, u: Point2, v: Point2) -> bool {
    let m = u.midpoint(v);
    p.dist_sq(m) < u.dist_sq(v) * 0.25
}

/// Circumcenter of the triangle `(a, b, c)`, or `None` when degenerate
/// (collinear points).
///
/// ```
/// use glr_geometry::{circumcenter, Point2};
///
/// let c = circumcenter(
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(0.0, 2.0),
/// ).unwrap();
/// assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
/// ```
pub fn circumcenter(a: Point2, b: Point2, c: Point2) -> Option<Point2> {
    let d = 2.0 * ((a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x));
    if d == 0.0 {
        return None;
    }
    let aa = a.norm_sq() - c.norm_sq();
    let bb = b.norm_sq() - c.norm_sq();
    let ux = (aa * (b.y - c.y) - bb * (a.y - c.y)) / d;
    let uy = (bb * (a.x - c.x) - aa * (b.x - c.x)) / d;
    let p = Point2::new(ux, uy);
    p.is_finite().then_some(p)
}

/// `true` when segments `ab` and `cd` properly intersect (cross at a point
/// interior to both), or when an endpoint of one lies strictly inside the
/// other. Shared endpoints do **not** count as an intersection, so adjacent
/// edges of a planar graph pass.
///
/// ```
/// use glr_geometry::{segments_cross, Point2};
///
/// let p = |x, y| Point2::new(x, y);
/// assert!(segments_cross(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0)));
/// // Sharing an endpoint is fine:
/// assert!(!segments_cross(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 0.0), p(2.0, 1.0)));
/// ```
pub fn segments_cross(a: Point2, b: Point2, c: Point2, d: Point2) -> bool {
    // Shared endpoints never count.
    if a == c || a == d || b == c || b == d {
        return false;
    }
    let d1 = orient2d(c, d, a);
    let d2 = orient2d(c, d, b);
    let d3 = orient2d(a, b, c);
    let d4 = orient2d(a, b, d);

    if ((d1 == Sign::Positive && d2 == Sign::Negative)
        || (d1 == Sign::Negative && d2 == Sign::Positive))
        && ((d3 == Sign::Positive && d4 == Sign::Negative)
            || (d3 == Sign::Negative && d4 == Sign::Positive))
    {
        return true;
    }

    // Degenerate cases: an endpoint of one segment strictly interior to the
    // other (T-junctions and collinear overlap).
    let strictly_inside = |p: Point2, q: Point2, r: Point2| -> bool {
        if orient2d(p, q, r) != Sign::Zero {
            return false;
        }
        // Compare along the dominant axis to tolerate vertical segments.
        if (p.x - q.x).abs() >= (p.y - q.y).abs() {
            r.x > p.x.min(q.x) && r.x < p.x.max(q.x)
        } else {
            r.y > p.y.min(q.y) && r.y < p.y.max(q.y)
        }
    };
    strictly_inside(a, b, c)
        || strictly_inside(a, b, d)
        || strictly_inside(c, d, a)
        || strictly_inside(c, d, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert_eq!(orient2d(a, b, Point2::new(0.5, 1.0)), Sign::Positive);
        assert_eq!(orient2d(a, b, Point2::new(0.5, -1.0)), Sign::Negative);
        assert_eq!(orient2d(a, b, Point2::new(7.0, 0.0)), Sign::Zero);
    }

    #[test]
    fn orientation_antisymmetry() {
        let a = Point2::new(0.3, 0.7);
        let b = Point2::new(-1.2, 4.4);
        let c = Point2::new(2.9, -3.5);
        let s1 = orient2d(a, b, c);
        let s2 = orient2d(b, a, c);
        assert_ne!(s1, s2);
        assert_eq!(orient2d(a, b, c), orient2d(b, c, a));
        assert_eq!(orient2d(a, b, c), orient2d(c, a, b));
    }

    #[test]
    fn orientation_near_degenerate_is_consistent() {
        // Points almost on a line; the filter must kick in and stay
        // consistent under cyclic permutation.
        let a = Point2::new(0.5, 0.5);
        let b = Point2::new(12.0, 12.0);
        let c = Point2::new(24.0, 24.0 + 1.0e-13);
        let s = orient2d(a, b, c);
        assert_eq!(s, orient2d(b, c, a));
        assert_eq!(s, orient2d(c, a, b));
        assert_ne!(s, Sign::Zero);
    }

    #[test]
    fn orientation_exact_collinear_with_offsets() {
        // Exactly collinear but with coordinates that stress cancellation.
        let a = Point2::new(1.0e7, 1.0e7);
        let b = Point2::new(2.0e7, 2.0e7);
        let c = Point2::new(3.0e7, 3.0e7);
        assert_eq!(orient2d(a, b, c), Sign::Zero);
    }

    #[test]
    fn incircle_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert_eq!(incircle(a, b, c, Point2::new(0.4, 0.4)), Sign::Positive);
        assert_eq!(incircle(a, b, c, Point2::new(3.0, 3.0)), Sign::Negative);
        // (1,1) is cocircular with the right triangle's circumcircle.
        assert_eq!(incircle(a, b, c, Point2::new(1.0, 1.0)), Sign::Zero);
    }

    #[test]
    fn incircle_orientation_flip() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        let inside = Point2::new(0.3, 0.3);
        // Swapping two vertices (cw order) flips the sign.
        assert_eq!(incircle(a, b, c, inside), Sign::Positive);
        assert_eq!(incircle(a, c, b, inside), Sign::Negative);
    }

    #[test]
    fn incircle_near_cocircular() {
        // Four points nearly on a unit circle; tiny radial perturbation decides.
        let eps = 1.0e-13;
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        let c = Point2::new(-1.0, 0.0);
        let just_inside = Point2::new(0.0, -(1.0 - eps));
        let just_outside = Point2::new(0.0, -(1.0 + eps));
        assert_eq!(incircle(a, b, c, just_inside), Sign::Positive);
        assert_eq!(incircle(a, b, c, just_outside), Sign::Negative);
    }

    #[test]
    fn circumcenter_right_triangle() {
        let c = circumcenter(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 4.0),
        )
        .unwrap();
        assert!((c.x - 2.0).abs() < 1e-12);
        assert!((c.y - 2.0).abs() < 1e-12);
        assert!(circumcenter(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0)
        )
        .is_none());
    }

    #[test]
    fn diametral_disk() {
        let u = Point2::new(0.0, 0.0);
        let v = Point2::new(4.0, 0.0);
        assert!(in_diametral_disk(Point2::new(2.0, 1.0), u, v));
        assert!(!in_diametral_disk(Point2::new(2.0, 2.1), u, v));
        // Boundary is exclusive.
        assert!(!in_diametral_disk(Point2::new(2.0, 2.0), u, v));
    }

    #[test]
    fn crossing_segments() {
        let p = |x: f64, y: f64| Point2::new(x, y);
        assert!(segments_cross(
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(2.0, 0.0)
        ));
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(1.0, 1.0),
            p(2.0, 2.0),
            p(3.0, 3.0)
        ));
        // Parallel, non-intersecting.
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.0, 1.0),
            p(1.0, 1.0)
        ));
        // T-junction: endpoint of one strictly inside the other counts.
        assert!(segments_cross(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0)
        ));
        // Shared endpoint does not count.
        assert!(!segments_cross(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0)
        ));
    }

    #[test]
    fn dd_arithmetic_sanity() {
        // 1e16 + 1 is not representable in f64; two_sum keeps the lost bit.
        let a = Dd::two_sum(1.0e16, 1.0);
        assert_eq!(a.hi, 1.0e16);
        assert_eq!(a.lo, 1.0);
        // (1e8 + 1)^2 = 1e16 + 2e8 + 1 exceeds 2^53, so the rounded product
        // loses the +1; two_prod recovers it in the error term.
        let x = 1.0e8 + 1.0;
        let p = Dd::two_prod(x, x);
        assert_eq!(p.hi, x * x);
        assert_ne!(p.lo, 0.0);
        // Subtracting the representable part 1e16 + 2e8 leaves exactly 1.
        let rem = Dd::two_sum(p.hi, -(1.0e16 + 2.0e8));
        assert_eq!(rem.hi + p.lo, 1.0);
        // Sign detection honours the low word on cancellation.
        let tiny = Dd {
            hi: 0.0,
            lo: -1e-300,
        };
        assert_eq!(tiny.sign(), Sign::Negative);
        assert_eq!(Dd::ZERO.sign(), Sign::Zero);
        assert_eq!(Dd::from_f64(2.0).sign(), Sign::Positive);
    }
}
