//! Gabriel and relative-neighbourhood graphs.
//!
//! These classic localized planar graphs serve as ablation baselines for
//! the k-LDTG spanner: both are planar and locally computable, but they are
//! *not* constant-stretch spanners, which is exactly the property the paper
//! buys by using local Delaunay triangulations instead.

use crate::graph::Graph;
use crate::point::Point2;
use crate::predicates::in_diametral_disk;

/// Gabriel graph restricted to unit-disk edges of radius `r`.
///
/// Edge `uv` survives iff no other point lies strictly inside the closed
/// disk with diameter `uv`. Restricting to unit-disk edges matches how a
/// wireless node would compute it (it only knows its radio neighbours).
///
/// # Examples
///
/// ```
/// use glr_geometry::{gabriel_graph, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(1.0, 0.1), // inside the diametral disk of 0-1
/// ];
/// let g = gabriel_graph(&pts, 10.0);
/// assert!(!g.has_edge(0, 1));
/// assert!(g.has_edge(0, 2));
/// assert!(g.has_edge(1, 2));
/// ```
pub fn gabriel_graph(points: &[Point2], r: f64) -> Graph {
    let udg = crate::udg::unit_disk_graph(points, r);
    let mut g = Graph::new(points.len());
    for (u, v) in udg.edges() {
        let blocked = udg
            .neighbors(u)
            .iter()
            .chain(udg.neighbors(v))
            .any(|&w| w != u && w != v && in_diametral_disk(points[w], points[u], points[v]));
        if !blocked {
            g.add_edge(u, v);
        }
    }
    g
}

/// Relative neighbourhood graph restricted to unit-disk edges of radius `r`.
///
/// Edge `uv` survives iff no point `w` is simultaneously closer to `u` and
/// to `v` than `u` and `v` are to each other (no point in the "lune").
/// RNG is a subgraph of the Gabriel graph.
pub fn relative_neighborhood_graph(points: &[Point2], r: f64) -> Graph {
    let udg = crate::udg::unit_disk_graph(points, r);
    let mut g = Graph::new(points.len());
    for (u, v) in udg.edges() {
        let d_uv = points[u].dist_sq(points[v]);
        let blocked = udg.neighbors(u).iter().chain(udg.neighbors(v)).any(|&w| {
            w != u
                && w != v
                && points[w].dist_sq(points[u]) < d_uv
                && points[w].dist_sq(points[v]) < d_uv
        });
        if !blocked {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::segments_cross;

    fn pseudo_random_points(n: usize, scale: f64, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point2::new(next() * scale, next() * scale))
            .collect()
    }

    #[test]
    fn triangle_all_edges_survive() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, 0.9),
        ];
        let g = gabriel_graph(&pts, 10.0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn rng_subset_of_gabriel() {
        let pts = pseudo_random_points(80, 1000.0, 31);
        let gg = gabriel_graph(&pts, 200.0);
        let rng = relative_neighborhood_graph(&pts, 200.0);
        for (u, v) in rng.edges() {
            assert!(gg.has_edge(u, v), "RNG edge ({u},{v}) missing from Gabriel");
        }
        assert!(rng.edge_count() <= gg.edge_count());
    }

    #[test]
    fn gabriel_subset_of_udg() {
        let pts = pseudo_random_points(60, 1000.0, 77);
        let udg = crate::udg::unit_disk_graph(&pts, 180.0);
        let gg = gabriel_graph(&pts, 180.0);
        for (u, v) in gg.edges() {
            assert!(udg.has_edge(u, v));
        }
    }

    #[test]
    fn gabriel_is_planar() {
        let pts = pseudo_random_points(60, 1000.0, 13);
        let gg = gabriel_graph(&pts, 250.0);
        let edges: Vec<_> = gg.edges().collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            for &(c, d) in &edges[i + 1..] {
                assert!(
                    !segments_cross(pts[a], pts[b], pts[c], pts[d]),
                    "Gabriel edges ({a},{b}) and ({c},{d}) cross"
                );
            }
        }
    }

    #[test]
    fn rng_preserves_connectivity() {
        // RNG contains the Euclidean MST, so it preserves UDG connectivity.
        let pts = pseudo_random_points(50, 500.0, 5);
        let udg = crate::udg::unit_disk_graph(&pts, 220.0);
        let rng = relative_neighborhood_graph(&pts, 220.0);
        assert_eq!(
            udg.connected_components().len(),
            rng.connected_components().len()
        );
    }
}
