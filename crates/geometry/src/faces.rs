//! Planar embeddings and face routing.
//!
//! When a greedily-forwarded message reaches a *local minimum* (no
//! neighbour is closer to the destination), GLR escapes using face routing
//! on its planar spanner (paper §1, citing Bose et al. and Frey &
//! Stojmenovic). This module provides:
//!
//! * [`PlanarEmbedding`] — the rotation system (neighbours of every vertex
//!   sorted by angle) that face traversal needs;
//! * [`face_route`] — the offline FACE-2 algorithm with guaranteed delivery
//!   on connected planar graphs;
//! * [`greedy_face_route`] — greedy forwarding with face-routing recovery
//!   (the combined algorithm GLR follows);
//! * [`FaceWalk`] — the incremental right-hand-rule stepper a protocol node
//!   runs online, one hop at a time.

use crate::graph::Graph;
use crate::point::Point2;
use crate::predicates::{orient2d, segments_cross, Sign};

/// A rotation system for a (plane) graph: every vertex's neighbours sorted
/// counter-clockwise by angle.
///
/// # Examples
///
/// ```
/// use glr_geometry::{Graph, PlanarEmbedding, Point2};
///
/// let pos = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(0.0, 1.0),
///     Point2::new(-1.0, 0.0),
/// ];
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(0, 2);
/// g.add_edge(0, 3);
/// let emb = PlanarEmbedding::new(&g, &pos);
/// assert_eq!(emb.sorted_neighbors(0), &[1, 2, 3]); // ccw from +x axis
/// assert_eq!(emb.next_ccw(0, 1), 2);
/// assert_eq!(emb.next_cw(0, 1), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PlanarEmbedding {
    sorted_adj: Vec<Vec<usize>>,
}

impl PlanarEmbedding {
    /// Builds the rotation system for `g` with vertex `positions`.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != g.len()`.
    pub fn new(g: &Graph, positions: &[Point2]) -> Self {
        assert_eq!(
            positions.len(),
            g.len(),
            "positions must match vertex count"
        );
        let sorted_adj = (0..g.len())
            .map(|u| {
                let mut nbrs: Vec<usize> = g.neighbors(u).to_vec();
                nbrs.sort_by(|&a, &b| {
                    positions[u]
                        .angle_to(positions[a])
                        .partial_cmp(&positions[u].angle_to(positions[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                nbrs
            })
            .collect();
        PlanarEmbedding { sorted_adj }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.sorted_adj.len()
    }

    /// `true` when the embedding has no vertices.
    pub fn is_empty(&self) -> bool {
        self.sorted_adj.is_empty()
    }

    /// Neighbours of `u` in counter-clockwise angular order.
    pub fn sorted_neighbors(&self, u: usize) -> &[usize] {
        &self.sorted_adj[u]
    }

    /// The neighbour following `v` counter-clockwise around `u`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a neighbour of `u`.
    pub fn next_ccw(&self, u: usize, v: usize) -> usize {
        let nbrs = &self.sorted_adj[u];
        let i = nbrs
            .iter()
            .position(|&w| w == v)
            .unwrap_or_else(|| panic!("{v} is not a neighbour of {u}"));
        nbrs[(i + 1) % nbrs.len()]
    }

    /// The neighbour preceding `v` counter-clockwise (i.e. next clockwise)
    /// around `u`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a neighbour of `u`.
    pub fn next_cw(&self, u: usize, v: usize) -> usize {
        let nbrs = &self.sorted_adj[u];
        let i = nbrs
            .iter()
            .position(|&w| w == v)
            .unwrap_or_else(|| panic!("{v} is not a neighbour of {u}"));
        nbrs[(i + nbrs.len() - 1) % nbrs.len()]
    }

    /// First neighbour of `u` counter-clockwise from the ray `u -> toward`
    /// (the perimeter-mode entry edge of GPSR-style face routing).
    ///
    /// Returns `None` when `u` has no neighbours.
    pub fn first_ccw_from_direction(
        &self,
        u: usize,
        toward: Point2,
        positions: &[Point2],
    ) -> Option<usize> {
        let nbrs = &self.sorted_adj[u];
        if nbrs.is_empty() {
            return None;
        }
        let base = positions[u].angle_to(toward);
        // Smallest positive angular offset ccw from the ray.
        nbrs.iter().copied().min_by(|&a, &b| {
            let oa = angular_offset(base, positions[u].angle_to(positions[a]));
            let ob = angular_offset(base, positions[u].angle_to(positions[b]));
            oa.partial_cmp(&ob).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Traces the face containing the directed edge `(u, v)`.
    ///
    /// The successor of directed edge `(a, b)` is `(b, next_ccw(b, a))` —
    /// the right-hand rule. Returns the vertex cycle starting at `u`.
    pub fn trace_face(&self, u: usize, v: usize) -> Vec<usize> {
        let mut face = vec![u];
        let (mut a, mut b) = (u, v);
        loop {
            let c = self.next_ccw(b, a);
            a = b;
            b = c;
            if a == u && b == v {
                break;
            }
            face.push(a);
            // Safety valve: a face cannot have more than 2E directed edges.
            if face.len() > 2 * self.sorted_adj.iter().map(Vec::len).sum::<usize>() + 2 {
                break;
            }
        }
        face
    }

    /// All faces of the embedding, each traced once.
    ///
    /// For a connected plane graph the count satisfies Euler's formula
    /// `V - E + F = 2`; each extra component adds one (shared) outer face
    /// trace.
    pub fn faces(&self) -> Vec<Vec<usize>> {
        let mut visited: std::collections::HashSet<(usize, usize)> = Default::default();
        let mut out = Vec::new();
        for u in 0..self.len() {
            for &v in &self.sorted_adj[u] {
                if visited.contains(&(u, v)) {
                    continue;
                }
                // Trace and mark all directed edges of this face.
                let face = self.trace_face(u, v);
                let mut a = u;
                let mut b = v;
                loop {
                    visited.insert((a, b));
                    let c = self.next_ccw(b, a);
                    a = b;
                    b = c;
                    if a == u && b == v {
                        break;
                    }
                }
                out.push(face);
            }
        }
        out
    }
}

/// Angular offset of `angle` counter-clockwise from `base`, in `[0, 2pi)`.
fn angular_offset(base: f64, angle: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut d = angle - base;
    while d < 0.0 {
        d += two_pi;
    }
    while d >= two_pi {
        d -= two_pi;
    }
    d
}

/// Incremental right-hand-rule face walk — the online stepper used by a
/// protocol node in recovery mode.
///
/// Created at a local minimum; [`FaceWalk::step`] yields successive hops.
/// The caller exits recovery as soon as it reaches a node closer to the
/// destination than the entry point ([`FaceWalk::should_exit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceWalk {
    /// Distance from the entry node to the destination; recovery ends when
    /// beaten.
    pub entry_dist: f64,
    /// Current node.
    pub current: usize,
    /// Node we arrived from (`None` right after entry).
    pub prev: Option<usize>,
}

impl FaceWalk {
    /// Starts a face walk at `start` (a local minimum) heading to `dst_pos`.
    pub fn begin(start: usize, start_pos: Point2, dst_pos: Point2) -> Self {
        FaceWalk {
            entry_dist: start_pos.dist(dst_pos),
            current: start,
            prev: None,
        }
    }

    /// Next hop by the right-hand rule; `None` when the current node is
    /// isolated.
    pub fn step(
        &mut self,
        emb: &PlanarEmbedding,
        positions: &[Point2],
        dst_pos: Point2,
    ) -> Option<usize> {
        let next = match self.prev {
            None => emb.first_ccw_from_direction(self.current, dst_pos, positions)?,
            Some(p) => emb.next_ccw(self.current, p),
        };
        self.prev = Some(self.current);
        self.current = next;
        Some(next)
    }

    /// `true` when `pos` is strictly closer to the destination than the
    /// recovery entry point — time to resume greedy forwarding.
    pub fn should_exit(&self, pos: Point2, dst_pos: Point2) -> bool {
        pos.dist(dst_pos) < self.entry_dist
    }
}

/// FACE-2 routing on a plane graph: guaranteed delivery from `s` to `t`
/// when they are connected. Returns the vertex path (including both
/// endpoints), or `None` when disconnected (or `max_steps` exhausted).
///
/// # Examples
///
/// ```
/// use glr_geometry::{face_route, Graph, Point2};
///
/// // A square; route between opposite corners.
/// let pos = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(1.0, 1.0),
///     Point2::new(0.0, 1.0),
/// ];
/// let mut g = Graph::new(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     g.add_edge(u, v);
/// }
/// let path = face_route(&g, &pos, 0, 2, 100).unwrap();
/// assert_eq!(path.first(), Some(&0));
/// assert_eq!(path.last(), Some(&2));
/// ```
pub fn face_route(
    g: &Graph,
    positions: &[Point2],
    s: usize,
    t: usize,
    max_steps: usize,
) -> Option<Vec<usize>> {
    if s == t {
        return Some(vec![s]);
    }
    let emb = PlanarEmbedding::new(g, positions);
    let tp = positions[t];
    let mut path = vec![s];
    // `anchor` is the point where we entered the current face (initially s);
    // face switching happens on edges crossing segment (anchor, t).
    let mut anchor = positions[s];
    let mut cur = s;
    let mut first = emb.first_ccw_from_direction(cur, tp, positions)?;
    let mut prev_cross_dist = f64::INFINITY;
    let mut steps = 0;

    let mut next = first;
    loop {
        if steps > max_steps {
            return None;
        }
        steps += 1;
        if next == t {
            path.push(t);
            return Some(path);
        }
        // Does the edge (cur, next) cross (anchor, t) closer to t?
        if let Some(x) = segment_intersection(positions[cur], positions[next], anchor, tp) {
            let d = x.dist(tp);
            if d < prev_cross_dist - 1e-12 {
                // Switch to the new face: restart traversal from `cur`
                // anchored at the crossing point.
                prev_cross_dist = d;
                anchor = x;
                // Traverse the face on the other side of the crossed edge:
                // continue from `next`, coming from `cur`.
                path.push(next);
                let after = emb.next_ccw(next, cur);
                cur = next;
                next = after;
                // Reset loop-detection for the new face.
                first = next;
                continue;
            }
        }
        path.push(next);
        let after = emb.next_ccw(next, cur);
        cur = next;
        next = after;
        // Completed a full face loop without progress => disconnected.
        if cur == path[0] && next == first && prev_cross_dist.is_infinite() {
            return None;
        }
    }
}

/// Greedy-Face-Greedy (GFG) routing: greedy forwarding with FACE-2 recovery
/// at local minima. Guaranteed delivery on connected plane graphs.
///
/// Returns the hop path including both endpoints.
pub fn greedy_face_route(
    g: &Graph,
    positions: &[Point2],
    s: usize,
    t: usize,
    max_steps: usize,
) -> Option<Vec<usize>> {
    if s == t {
        return Some(vec![s]);
    }
    let emb = PlanarEmbedding::new(g, positions);
    let tp = positions[t];
    let mut path = vec![s];
    let mut cur = s;
    let mut steps = 0;
    while cur != t {
        if steps > max_steps {
            return None;
        }
        // Greedy step.
        let best = g
            .neighbors(cur)
            .iter()
            .copied()
            .min_by(|&a, &b| {
                positions[a]
                    .dist_sq(tp)
                    .partial_cmp(&positions[b].dist_sq(tp))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .filter(|&v| positions[v].dist_sq(tp) < positions[cur].dist_sq(tp));
        match best {
            Some(v) => {
                path.push(v);
                cur = v;
                steps += 1;
            }
            None => {
                // Local minimum: face-walk until we beat the entry distance.
                let mut walk = FaceWalk::begin(cur, positions[cur], tp);
                loop {
                    if steps > max_steps {
                        return None;
                    }
                    let v = walk.step(&emb, positions, tp)?;
                    path.push(v);
                    cur = v;
                    steps += 1;
                    if cur == t || walk.should_exit(positions[cur], tp) {
                        break;
                    }
                    // Came all the way around: destination unreachable.
                    if walk.prev == Some(cur) {
                        return None;
                    }
                    if path.len() > max_steps {
                        return None;
                    }
                }
            }
        }
    }
    Some(path)
}

/// Intersection point of segments `ab` and `cd` when they properly cross
/// (or touch at a T-junction); `None` otherwise.
fn segment_intersection(a: Point2, b: Point2, c: Point2, d: Point2) -> Option<Point2> {
    if !segments_cross(a, b, c, d) {
        return None;
    }
    let r = b - a;
    let s = d - c;
    let denom = r.cross(s);
    if denom == 0.0 {
        // Collinear overlap: return the endpoint of cd nearest to d inside ab.
        return Some(c.midpoint(d));
    }
    let t = (c - a).cross(s) / denom;
    Some(a + r * t)
}

/// `true` when vertex `u` is a local minimum for destination position
/// `dst_pos`: no neighbour of `u` in `g` is strictly closer to `dst_pos`.
pub fn is_local_minimum(g: &Graph, positions: &[Point2], u: usize, dst_pos: Point2) -> bool {
    let du = positions[u].dist_sq(dst_pos);
    !g.neighbors(u)
        .iter()
        .any(|&v| positions[v].dist_sq(dst_pos) < du)
}

/// `true` when the plane graph drawing has no crossing edges (brute force;
/// test/diagnostic use).
pub fn is_plane_drawing(g: &Graph, positions: &[Point2]) -> bool {
    let edges: Vec<_> = g.edges().collect();
    for (i, &(a, b)) in edges.iter().enumerate() {
        for &(c, d) in &edges[i + 1..] {
            if segments_cross(positions[a], positions[b], positions[c], positions[d]) {
                return false;
            }
        }
    }
    true
}

/// `true` when `p` lies strictly left of the directed line `a -> b`.
/// Convenience re-export of the orientation predicate for callers doing
/// their own face bookkeeping.
pub fn left_of(a: Point2, b: Point2, p: Point2) -> bool {
    orient2d(a, b, p) == Sign::Positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldt::k_ldtg;
    use crate::udg::unit_disk_graph;

    fn pseudo_random_points(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point2::new(next() * w, next() * h))
            .collect()
    }

    fn star_embedding() -> (Graph, Vec<Point2>) {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(-1.0, 0.0),
            Point2::new(0.0, -1.0),
        ];
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        (g, pos)
    }

    #[test]
    fn rotation_order_is_ccw() {
        let (g, pos) = star_embedding();
        let emb = PlanarEmbedding::new(&g, &pos);
        // Angles: 1 at 0, 2 at pi/2, 3 at pi, 4 at -pi/2; ccw order from
        // -pi: 4, 1, 2, 3.
        assert_eq!(emb.sorted_neighbors(0), &[4, 1, 2, 3]);
        assert_eq!(emb.next_ccw(0, 1), 2);
        assert_eq!(emb.next_ccw(0, 3), 4);
        assert_eq!(emb.next_cw(0, 4), 3);
    }

    #[test]
    #[should_panic(expected = "not a neighbour")]
    fn next_ccw_requires_edge() {
        let (g, pos) = star_embedding();
        let emb = PlanarEmbedding::new(&g, &pos);
        emb.next_ccw(1, 2);
    }

    #[test]
    fn first_ccw_from_direction_picks_entry_edge() {
        let (g, pos) = star_embedding();
        let emb = PlanarEmbedding::new(&g, &pos);
        // Heading towards (1, 0.1): slightly ccw of neighbour 1, so the
        // first edge ccw from that ray is vertex 2 (at pi/2).
        let e = emb
            .first_ccw_from_direction(0, Point2::new(1.0, 0.1), &pos)
            .unwrap();
        assert_eq!(e, 2);
    }

    #[test]
    fn euler_formula_on_triangulated_square() {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let mut g = Graph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.add_edge(u, v);
        }
        let emb = PlanarEmbedding::new(&g, &pos);
        let faces = emb.faces();
        // V - E + F = 2 => F = 2 - 4 + 5 = 3 (two triangles + outer face).
        assert_eq!(faces.len(), 3);
        // Total face degree = 2E.
        let total: usize = faces.iter().map(Vec::len).sum();
        assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn euler_formula_on_random_ldtg() {
        for seed in [21, 55] {
            let pts = pseudo_random_points(40, 800.0, 800.0, seed);
            let g = k_ldtg(&pts, 300.0, 2);
            if !g.is_connected() || g.edge_count() == 0 {
                continue;
            }
            let emb = PlanarEmbedding::new(&g, &pts);
            let faces = emb.faces();
            let expect = 2 + g.edge_count() - g.len();
            assert_eq!(faces.len(), expect, "seed {seed}");
        }
    }

    #[test]
    fn face_route_on_square() {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let mut g = Graph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v);
        }
        let path = face_route(&g, &pos, 0, 2, 50).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 2);
        assert!(path.len() <= 4);
    }

    #[test]
    fn face_route_disconnected_returns_none() {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(5.0, 0.0),
            Point2::new(6.0, 0.0),
        ];
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(face_route(&g, &pos, 0, 3, 100).is_none());
        assert!(greedy_face_route(&g, &pos, 0, 3, 100).is_none());
    }

    #[test]
    fn gfg_delivers_on_connected_ldtg() {
        let mut tried = 0;
        for seed in 1..40u64 {
            let pts = pseudo_random_points(40, 1000.0, 1000.0, seed);
            let udg = unit_disk_graph(&pts, 280.0);
            if !udg.is_connected() {
                continue;
            }
            let g = k_ldtg(&pts, 280.0, 2);
            assert!(g.is_connected(), "LDTG must preserve connectivity");
            assert!(is_plane_drawing(&g, &pts), "LDTG must be plane");
            tried += 1;
            let max_steps = 20 * g.edge_count() + 50;
            for (s, t) in [(0usize, 39usize), (5, 17), (12, 33)] {
                let path = greedy_face_route(&g, &pts, s, t, max_steps)
                    .unwrap_or_else(|| panic!("no route {s}->{t} seed {seed}"));
                assert_eq!(*path.first().unwrap(), s);
                assert_eq!(*path.last().unwrap(), t);
                // Every hop must be a graph edge.
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "non-edge hop {w:?}");
                }
            }
            if tried >= 8 {
                break;
            }
        }
        assert!(tried >= 3, "not enough connected instances exercised");
    }

    #[test]
    fn local_minimum_detection() {
        // A "C" shape: node 0 must detour although 1 is its only neighbour.
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(-1.0, 1.0),
            Point2::new(0.0, 2.0),
            Point2::new(1.0, 1.0), // destination-side
        ];
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let dst = Point2::new(0.2, 0.9);
        assert!(is_local_minimum(&g, &pos, 0, dst));
        assert!(!is_local_minimum(&g, &pos, 1, dst));
    }

    #[test]
    fn face_walk_exits_when_closer() {
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 0.0),
            Point2::new(3.0, 0.0),
        ];
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let emb = PlanarEmbedding::new(&g, &pos);
        let dst = pos[3];
        let mut walk = FaceWalk::begin(0, pos[0], dst);
        let mut cur = 0usize;
        for _ in 0..4 {
            cur = walk.step(&emb, &pos, dst).unwrap();
            if walk.should_exit(pos[cur], dst) {
                break;
            }
        }
        assert!(pos[cur].dist(dst) < pos[0].dist(dst));
    }

    #[test]
    fn greedy_face_same_node() {
        let (g, pos) = star_embedding();
        assert_eq!(greedy_face_route(&g, &pos, 2, 2, 10), Some(vec![2]));
        assert_eq!(face_route(&g, &pos, 2, 2, 10), Some(vec![2]));
    }
}
