//! Uniform spatial hash grid for range queries over point sets.
//!
//! Building a unit-disk graph naively is `O(n^2)`; with a grid whose cell
//! size equals the query radius it drops to `O(n + m)`. The simulator also
//! uses the grid every time it needs "who is within radio range of node u
//! right now".

use crate::point::Point2;

/// A uniform grid over a set of points supporting radius queries.
///
/// # Examples
///
/// ```
/// use glr_geometry::{Grid, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(5.0, 0.0),
///     Point2::new(50.0, 50.0),
/// ];
/// let grid = Grid::build(&pts, 10.0);
/// let mut near = grid.within_radius(&pts, Point2::new(1.0, 1.0), 10.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    cell: f64,
    min: Point2,
    cols: usize,
    rows: usize,
    /// CSR cell storage: cell `c`'s point indices are
    /// `indices[starts[c]..starts[c + 1]]`, in ascending order. One flat
    /// allocation instead of a heap `Vec` per cell, so a query's cell
    /// walk reads contiguous ranges instead of chasing a pointer per
    /// bucket — and rebuilds reuse both buffers.
    starts: Vec<u32>,
    indices: Vec<u32>,
    /// Reusable fill-cursor scratch for [`Grid::rebuild`].
    cursor: Vec<u32>,
}

impl Grid {
    /// Builds a grid with the given cell size over `points`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite, or if any
    /// point has a non-finite coordinate.
    pub fn build(points: &[Point2], cell_size: f64) -> Self {
        let mut grid = Grid {
            cell: cell_size,
            min: Point2::ORIGIN,
            cols: 0,
            rows: 0,
            starts: Vec::new(),
            indices: Vec::new(),
            cursor: Vec::new(),
        };
        grid.rebuild(points, cell_size);
        grid
    }

    /// Rebuilds the grid in place over a new point snapshot, reusing the
    /// bucket allocations of the previous build — the path for callers
    /// that re-index a moving point set many times per run (the
    /// simulator's drift-compensated spatial index).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Grid::build`].
    pub fn rebuild(&mut self, points: &[Point2], cell_size: f64) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        assert!(
            u32::try_from(points.len()).is_ok(),
            "grid indexes points with u32"
        );
        for (i, p) in points.iter().enumerate() {
            assert!(p.is_finite(), "point {i} has non-finite coordinates");
        }
        let (min, max) = bounding_box(points);
        let width = (max.x - min.x).max(0.0);
        let height = (max.y - min.y).max(0.0);
        let cols = (width / cell_size).floor() as usize + 1;
        let rows = (height / cell_size).floor() as usize + 1;
        self.cell = cell_size;
        self.min = min;
        self.cols = cols;
        self.rows = rows;
        // Counting sort into CSR: count per cell, prefix-sum, fill.
        // Filling in point order keeps every cell's indices ascending.
        let n_cells = cols * rows;
        self.starts.clear();
        self.starts.resize(n_cells + 1, 0);
        for &p in points {
            let (c, r) = self.cell_of(p);
            self.starts[r * cols + c + 1] += 1;
        }
        for i in 1..=n_cells {
            self.starts[i] += self.starts[i - 1];
        }
        self.indices.clear();
        self.indices.resize(points.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..n_cells]);
        for (i, &p) in points.iter().enumerate() {
            let (c, r) = self.cell_of(p);
            let slot = &mut self.cursor[r * cols + c];
            self.indices[*slot as usize] = i as u32;
            *slot += 1;
        }
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let c = ((p.x - self.min.x) / self.cell).floor() as isize;
        let r = ((p.y - self.min.y) / self.cell).floor() as isize;
        (
            c.clamp(0, self.cols as isize - 1) as usize,
            r.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    /// Indices of all points within `radius` of `center` (inclusive).
    ///
    /// `points` must be the same slice the grid was built from.
    pub fn within_radius(&self, points: &[Point2], center: Point2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(points, center, radius, |i| out.push(i));
        out
    }

    /// Calls `f` for every point index within `radius` of `center`.
    pub fn for_each_within<F: FnMut(usize)>(
        &self,
        points: &[Point2],
        center: Point2,
        radius: f64,
        mut f: F,
    ) {
        // Scan the cells covering [center − r_pad, center + r_pad]. The
        // distance filter below is *rounded* arithmetic: a point whose
        // true distance is a few ulps beyond `radius` can still satisfy
        // `dist_sq <= r_sq`, so the window must over-cover by at least
        // that slack. `pad` is ~10⁶ ulps of the coordinate/radius
        // magnitudes — astronomically larger than the rounding slack,
        // geometrically negligible (~10⁻⁹ relative). Within the padded
        // box the mapping point → cell is safe because correctly-rounded
        // subtraction and division are monotone: any accepted point's
        // cell index lies between the padded corners' indices.
        let pad = 1e-9 * (radius + center.x.abs() + center.y.abs() + 1.0);
        let r_pad = radius + pad;
        let (c0, r0) = self.cell_of(Point2::new(center.x - r_pad, center.y - r_pad));
        let (c1, r1) = self.cell_of(Point2::new(center.x + r_pad, center.y + r_pad));
        let r_sq = radius * radius;
        for row in r0..=r1 {
            let row_base = row * self.cols;
            // Cells in one row are adjacent in the CSR layout, so the
            // whole row span is one contiguous slice of `indices`.
            let lo = self.starts[row_base + c0] as usize;
            let hi = self.starts[row_base + c1 + 1] as usize;
            for &i in &self.indices[lo..hi] {
                if points[i as usize].dist_sq(center) <= r_sq {
                    f(i as usize);
                }
            }
        }
    }
}

/// Axis-aligned bounding box of a point set; `(origin, origin)` when empty.
pub fn bounding_box(points: &[Point2]) -> (Point2, Point2) {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    if points.is_empty() {
        (Point2::ORIGIN, Point2::ORIGIN)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_query_matches_brute_force() {
        // Deterministic pseudo-random points.
        let mut pts = Vec::new();
        let mut state = 0x9e3779b97f4a7c15_u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 16) % 1000) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let y = ((state >> 16) % 1000) as f64;
            pts.push(Point2::new(x, y));
        }
        let grid = Grid::build(&pts, 100.0);
        for &(cx, cy, r) in &[(500.0, 500.0, 100.0), (0.0, 0.0, 250.0), (999.0, 0.0, 50.0)] {
            let center = Point2::new(cx, cy);
            let mut got = grid.within_radius(&pts, center, r);
            got.sort_unstable();
            let mut want: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].dist(center) <= r)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "mismatch at center {center} radius {r}");
        }
    }

    #[test]
    fn query_radius_larger_than_cell() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(90.0, 0.0)];
        let grid = Grid::build(&pts, 10.0);
        let near = grid.within_radius(&pts, Point2::new(0.0, 0.0), 100.0);
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn empty_points() {
        let pts: Vec<Point2> = Vec::new();
        let grid = Grid::build(&pts, 10.0);
        assert!(grid.within_radius(&pts, Point2::ORIGIN, 5.0).is_empty());
        assert_eq!(grid.cell_count(), 1);
    }

    #[test]
    fn single_point_inclusive_boundary() {
        let pts = vec![Point2::new(3.0, 4.0)];
        let grid = Grid::build(&pts, 1.0);
        // Distance exactly 5.0 from origin: inclusive.
        assert_eq!(grid.within_radius(&pts, Point2::ORIGIN, 5.0), vec![0]);
        assert!(grid.within_radius(&pts, Point2::ORIGIN, 4.999).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        Grid::build(&[Point2::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_point_panics() {
        Grid::build(&[Point2::new(f64::NAN, 0.0)], 1.0);
    }

    /// The distance filter accepts points whose *rounded* distance hits
    /// the radius exactly even though their true distance is a hair
    /// beyond; the scanned window must still include their cells. The
    /// exact constants here reproduce a miss found in review: with
    /// radius-derived cell counting (`±ceil(r/cell)` from the center's
    /// cell, no padding), the point at x = 3.0 sits one cell past the
    /// window while `fl(3.0 − 0.9999999999999999) = 2.0` passes the
    /// filter.
    #[test]
    fn rounded_boundary_points_are_not_missed() {
        let center = Point2::new(0.999_999_999_999_999_9, 0.0);
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(3.0, 0.0)];
        let grid = Grid::build(&pts, 1.0);
        let mut got = grid.within_radius(&pts, center, 2.0);
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].dist(center) <= 2.0)
            .collect();
        assert!(want.contains(&1), "filter must accept the boundary point");
        assert_eq!(got, want);
    }

    #[test]
    fn bounding_box_basic() {
        let (min, max) = bounding_box(&[
            Point2::new(1.0, 5.0),
            Point2::new(-2.0, 3.0),
            Point2::new(4.0, -1.0),
        ]);
        assert_eq!(min, Point2::new(-2.0, -1.0));
        assert_eq!(max, Point2::new(4.0, 5.0));
    }
}
