//! Two-dimensional points and basic vector arithmetic.
//!
//! All geometry in the GLR stack is planar: node positions live in a
//! rectangular deployment region and distances are Euclidean. [`Point2`] is
//! deliberately a plain `f64` pair (`Copy`, `PartialEq`) so it can flow
//! through the simulator without allocation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or free vector) in the Euclidean plane.
///
/// # Examples
///
/// ```
/// use glr_geometry::Point2;
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point2 {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// let p = Point2::new(1.5, -2.0);
    /// assert_eq!(p.x, 1.5);
    /// assert_eq!(p.y, -2.0);
    /// ```
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point2::dist`]; prefer it for comparisons.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// let a = Point2::new(0.0, 0.0);
    /// let b = Point2::new(3.0, 4.0);
    /// assert_eq!(a.dist_sq(b), 25.0);
    /// ```
    #[inline]
    pub fn dist_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Euclidean norm when the point is interpreted as a vector.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// assert_eq!(Point2::new(3.0, 4.0).norm(), 5.0);
    /// ```
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// let a = Point2::new(1.0, 0.0);
    /// let b = Point2::new(0.0, 1.0);
    /// assert_eq!(a.dot(b), 0.0);
    /// ```
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Midpoint of the segment `self`–`other`.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// let m = Point2::new(0.0, 0.0).midpoint(Point2::new(2.0, 4.0));
    /// assert_eq!(m, Point2::new(1.0, 2.0));
    /// ```
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` is not clamped; values outside `[0, 1]` extrapolate.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Angle of the vector `other - self` in radians, in `(-pi, pi]`.
    ///
    /// Used to sort a planar node's incident edges for face traversal.
    #[inline]
    pub fn angle_to(self, other: Point2) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// The vector rotated by 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point2 {
        Point2::new(-self.y, self.x)
    }

    /// Unit vector in the direction of `self`, or `None` for the zero vector.
    ///
    /// ```
    /// # use glr_geometry::Point2;
    /// let u = Point2::new(0.0, 2.0).normalized().unwrap();
    /// assert!((u.norm() - 1.0).abs() < 1e-12);
    /// assert!(Point2::ORIGIN.normalized().is_none());
    /// ```
    #[inline]
    pub fn normalized(self) -> Option<Point2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Point2::new(self.x / n, self.y / n))
        }
    }

    /// `true` when both coordinates are finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Point2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    #[inline]
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point2::new(0.5, 1.0));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut p = Point2::new(1.0, 1.0);
        p += Point2::new(2.0, 3.0);
        assert_eq!(p, Point2::new(3.0, 4.0));
        p -= Point2::new(1.0, 1.0);
        assert_eq!(p, Point2::new(2.0, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let e1 = Point2::new(1.0, 0.0);
        let e2 = Point2::new(0.0, 1.0);
        assert_eq!(e1.dot(e2), 0.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 20.0);
        assert_eq!(a.midpoint(b), Point2::new(5.0, 10.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point2::new(2.5, 5.0));
        // Extrapolation is allowed.
        assert_eq!(a.lerp(b, 2.0), Point2::new(20.0, 40.0));
    }

    #[test]
    fn angle_to_quadrants() {
        let o = Point2::ORIGIN;
        assert!((o.angle_to(Point2::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.angle_to(Point2::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.angle_to(Point2::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Point2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let v = Point2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point2::ORIGIN.normalized().is_none());
    }

    #[test]
    fn conversions() {
        let p: Point2 = (1.0, 2.0).into();
        assert_eq!(p, Point2::new(1.0, 2.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Point2::new(1.0, 2.0));
        assert!(s.contains("1.000") && s.contains("2.000"));
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
