//! Source-to-destination spanning tree (DSTD) extraction.
//!
//! GLR's controlled flooding sends message copies along up to three trees
//! extracted from the routing spanner *in the direction from source to
//! destination* (paper §2.3):
//!
//! * **MaxDSTD** — each node forwards to the neighbour making *maximum*
//!   progress (closest to the destination);
//! * **MinDSTD** — the neighbour making *minimum* positive progress;
//! * **MidDSTD** — a neighbour making intermediate progress; several
//!   distinct Mid trees can be extracted when the source wants more than
//!   three copies.
//!
//! Each message copy carries a tree flag; relays re-derive the next hop for
//! their flag from their own local spanner, so a "tree" materialises hop by
//! hop rather than being computed centrally.

use crate::graph::Graph;
use crate::point::Point2;

/// Which source-to-destination tree a (copy of a) message follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DstdKind {
    /// Maximum-progress tree: forward to the neighbour closest to the
    /// destination.
    Max,
    /// Minimum-progress tree: forward to the neighbour with the least
    /// positive progress.
    Min,
    /// `Mid(i)`: the i-th intermediate-progress tree (0-based). `Mid(0)` is
    /// the canonical middle choice; higher indices select other
    /// intermediate candidates when the source wants extra copies.
    Mid(u8),
}

impl DstdKind {
    /// The tree kinds used for an `n`-copy transmission, in the paper's
    /// order: 1 copy uses Max only; 3 copies use Max, Min, Mid; beyond 3,
    /// extra copies take additional Mid trees.
    ///
    /// # Examples
    ///
    /// ```
    /// use glr_geometry::DstdKind;
    ///
    /// assert_eq!(DstdKind::for_copies(1), vec![DstdKind::Max]);
    /// assert_eq!(
    ///     DstdKind::for_copies(3),
    ///     vec![DstdKind::Max, DstdKind::Min, DstdKind::Mid(0)]
    /// );
    /// assert_eq!(DstdKind::for_copies(5).len(), 5);
    /// ```
    pub fn for_copies(n: usize) -> Vec<DstdKind> {
        match n {
            0 => Vec::new(),
            1 => vec![DstdKind::Max],
            2 => vec![DstdKind::Max, DstdKind::Min],
            _ => {
                let mut v = vec![DstdKind::Max, DstdKind::Min];
                for i in 0..(n - 2) {
                    v.push(DstdKind::Mid(i as u8));
                }
                v
            }
        }
    }
}

impl std::fmt::Display for DstdKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DstdKind::Max => write!(f, "MaxDSTD"),
            DstdKind::Min => write!(f, "MinDSTD"),
            DstdKind::Mid(i) => write!(f, "MidDSTD({i})"),
        }
    }
}

/// Picks the next hop among `neighbors` for a message at `self_pos` headed
/// to `dst_pos`, following tree `kind`.
///
/// Only neighbours strictly closer to the destination than `self_pos`
/// qualify ("make progress"); `None` signals a local minimum. Candidates
/// are ranked by distance to the destination (ascending), ties broken by
/// slice order, so the choice is deterministic.
///
/// The id type is generic so protocol code can pass node identifiers
/// directly.
///
/// # Examples
///
/// ```
/// use glr_geometry::{dstd_next_hop, DstdKind, Point2};
///
/// let me = Point2::new(0.0, 0.0);
/// let dst = Point2::new(10.0, 0.0);
/// let nbrs = [
///     ("a", Point2::new(3.0, 0.0)), // strong progress
///     ("b", Point2::new(1.0, 0.0)), // weak progress
///     ("c", Point2::new(-2.0, 0.0)), // backwards: never chosen
/// ];
/// assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Max), Some("a"));
/// assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Min), Some("b"));
/// ```
pub fn dstd_next_hop<I: Copy>(
    self_pos: Point2,
    dst_pos: Point2,
    neighbors: &[(I, Point2)],
    kind: DstdKind,
) -> Option<I> {
    let my_d = self_pos.dist_sq(dst_pos);
    let mut cands: Vec<(I, f64)> = neighbors
        .iter()
        .filter_map(|&(id, p)| {
            let d = p.dist_sq(dst_pos);
            (d < my_d).then_some((id, d))
        })
        .collect();
    if cands.is_empty() {
        return None;
    }
    cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let pick = match kind {
        DstdKind::Max => 0,
        DstdKind::Min => cands.len() - 1,
        DstdKind::Mid(i) => {
            if cands.len() <= 2 {
                // No interior candidate; fall back to the closer end so the
                // copy still moves.
                cands.len() / 2
            } else {
                1 + (i as usize) % (cands.len() - 2)
            }
        }
    };
    Some(cands[pick].0)
}

/// All distinct next hops for an `n_copies` transmission, one per tree kind,
/// deduplicated (two trees may agree at a node with few neighbours).
///
/// Returns pairs `(kind, neighbor_id)`.
pub fn dstd_fanout<I: Copy + PartialEq>(
    self_pos: Point2,
    dst_pos: Point2,
    neighbors: &[(I, Point2)],
    n_copies: usize,
) -> Vec<(DstdKind, I)> {
    let mut out: Vec<(DstdKind, I)> = Vec::new();
    for kind in DstdKind::for_copies(n_copies) {
        if let Some(id) = dstd_next_hop(self_pos, dst_pos, neighbors, kind) {
            out.push((kind, id));
        }
    }
    out
}

/// Walks a DSTD path on a global graph from `src` towards vertex `dst`,
/// re-deriving the next hop at every node (as relays do online).
///
/// Stops at `dst`, at a local minimum (`Err` is not used; the partial path
/// is returned), or after `max_hops`. Useful for offline analysis of tree
/// shapes (paper Fig. 2) and for tests.
pub fn extract_dstd_path(
    g: &Graph,
    positions: &[Point2],
    src: usize,
    dst: usize,
    kind: DstdKind,
    max_hops: usize,
) -> Vec<usize> {
    let mut path = vec![src];
    let mut cur = src;
    let dst_pos = positions[dst];
    while cur != dst && path.len() <= max_hops {
        let nbrs: Vec<(usize, Point2)> = g
            .neighbors(cur)
            .iter()
            .map(|&v| (v, positions[v]))
            .collect();
        match dstd_next_hop(positions[cur], dst_pos, &nbrs, kind) {
            Some(next) => {
                path.push(next);
                cur = next;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldt::k_ldtg;

    fn fan() -> (Point2, Point2, Vec<(usize, Point2)>) {
        let me = Point2::new(0.0, 0.0);
        let dst = Point2::new(100.0, 0.0);
        let nbrs = vec![
            (1, Point2::new(30.0, 10.0)),  // d to dst ~ 70.7
            (2, Point2::new(50.0, 0.0)),   // d = 50 (max progress)
            (3, Point2::new(10.0, 5.0)),   // d ~ 90.1 (min progress)
            (4, Point2::new(25.0, -20.0)), // d ~ 77.6
            (5, Point2::new(-10.0, 0.0)),  // backwards
        ];
        (me, dst, nbrs)
    }

    #[test]
    fn max_min_mid_selection() {
        let (me, dst, nbrs) = fan();
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Max), Some(2));
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Min), Some(3));
        // Interior candidates sorted by distance: 1 (70.7), 4 (77.6).
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Mid(0)), Some(1));
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Mid(1)), Some(4));
        // Mid indices wrap.
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Mid(2)), Some(1));
    }

    #[test]
    fn backwards_neighbors_never_chosen() {
        let me = Point2::new(0.0, 0.0);
        let dst = Point2::new(10.0, 0.0);
        let nbrs = [(9, Point2::new(-5.0, 0.0))];
        for kind in [DstdKind::Max, DstdKind::Min, DstdKind::Mid(0)] {
            assert_eq!(dstd_next_hop(me, dst, &nbrs, kind), None);
        }
    }

    #[test]
    fn single_candidate_all_kinds_agree() {
        let me = Point2::new(0.0, 0.0);
        let dst = Point2::new(10.0, 0.0);
        let nbrs = [(7, Point2::new(4.0, 1.0))];
        for kind in [
            DstdKind::Max,
            DstdKind::Min,
            DstdKind::Mid(0),
            DstdKind::Mid(3),
        ] {
            assert_eq!(dstd_next_hop(me, dst, &nbrs, kind), Some(7));
        }
    }

    #[test]
    fn two_candidates_mid_falls_back() {
        let me = Point2::new(0.0, 0.0);
        let dst = Point2::new(10.0, 0.0);
        let nbrs = [(1, Point2::new(5.0, 0.0)), (2, Point2::new(2.0, 0.0))];
        // Sorted: 1 (d=5), 2 (d=8). Mid falls back to index 1 (= id 2).
        assert_eq!(dstd_next_hop(me, dst, &nbrs, DstdKind::Mid(0)), Some(2));
    }

    #[test]
    fn copies_to_kinds() {
        assert!(DstdKind::for_copies(0).is_empty());
        assert_eq!(DstdKind::for_copies(1), vec![DstdKind::Max]);
        assert_eq!(DstdKind::for_copies(2), vec![DstdKind::Max, DstdKind::Min]);
        let five = DstdKind::for_copies(5);
        assert_eq!(
            five,
            vec![
                DstdKind::Max,
                DstdKind::Min,
                DstdKind::Mid(0),
                DstdKind::Mid(1),
                DstdKind::Mid(2)
            ]
        );
    }

    #[test]
    fn fanout_deduplicates_nothing_but_reports_all_kinds() {
        let (me, dst, nbrs) = fan();
        let fan3 = dstd_fanout(me, dst, &nbrs, 3);
        assert_eq!(fan3.len(), 3);
        let ids: Vec<usize> = fan3.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn display_names() {
        assert_eq!(DstdKind::Max.to_string(), "MaxDSTD");
        assert_eq!(DstdKind::Mid(2).to_string(), "MidDSTD(2)");
    }

    #[test]
    fn paths_reach_destination_on_connected_spanner() {
        let mut pts = Vec::new();
        let mut state = 88u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..45 {
            pts.push(Point2::new(next() * 900.0, next() * 900.0));
        }
        let g = k_ldtg(&pts, 320.0, 2);
        if !g.is_connected() {
            return; // extremely unlikely at this density
        }
        // Max tree follows greedy progress; with a Delaunay spanner it
        // usually reaches the destination directly. Min/Mid paths are longer
        // but must still make monotone progress while they run.
        let path = extract_dstd_path(&g, &pts, 0, 44, DstdKind::Max, 200);
        for w in path.windows(2) {
            assert!(
                pts[w[1]].dist(pts[44]) < pts[w[0]].dist(pts[44]),
                "Max path must make strict progress"
            );
        }
        let min_path = extract_dstd_path(&g, &pts, 0, 44, DstdKind::Min, 200);
        for w in min_path.windows(2) {
            assert!(pts[w[1]].dist(pts[44]) < pts[w[0]].dist(pts[44]));
        }
        // Min tree takes at least as many hops as Max when both deliver.
        if path.last() == Some(&44) && min_path.last() == Some(&44) {
            assert!(min_path.len() >= path.len());
        }
    }

    #[test]
    fn max_and_min_paths_differ_like_figure2() {
        // Figure 2's qualitative claim: MaxDSTD and MinDSTD trace different
        // routes. Build a fan topology where that must happen.
        let pts = vec![
            Point2::new(0.0, 0.0),    // 0 = S
            Point2::new(30.0, 20.0),  // 1
            Point2::new(30.0, -20.0), // 2
            Point2::new(60.0, 10.0),  // 3
            Point2::new(60.0, -10.0), // 4
            Point2::new(90.0, 0.0),   // 5 = T
        ];
        let mut g = Graph::new(6);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 4),
            (3, 5),
            (4, 5),
            (1, 2),
            (3, 4),
        ] {
            g.add_edge(u, v);
        }
        let max_p = extract_dstd_path(&g, &pts, 0, 5, DstdKind::Max, 50);
        let min_p = extract_dstd_path(&g, &pts, 0, 5, DstdKind::Min, 50);
        assert_eq!(max_p.last(), Some(&5));
        assert_eq!(min_p.last(), Some(&5));
        assert_ne!(max_p, min_p, "trees should diverge");
    }
}
