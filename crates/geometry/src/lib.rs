//! Computational-geometry substrate for the GLR routing stack.
//!
//! This crate implements every geometric ingredient of *"A Geometric
//! Routing Protocol in Disruption Tolerant Network"* (Du, Kranakis, Nayak;
//! ICDCS 2009):
//!
//! * robust [`orient2d`]/[`incircle`] predicates (filtered double-double),
//! * Bowyer–Watson Delaunay [`Triangulation`],
//! * [`unit_disk_graph`] connectivity and the Georgiou et al.
//!   [`connectivity_radius_bound`] behind GLR's copy-count decision,
//! * the **k-local Delaunay triangulation graph** ([`k_ldtg`] and its
//!   node-local counterpart [`ldtg_local_neighbors`]) — the paper's planar
//!   routing spanner,
//! * [`PlanarEmbedding`] + [`face_route`]/[`greedy_face_route`] for
//!   local-minimum recovery,
//! * DSTD tree extraction ([`dstd_next_hop`], [`DstdKind`]) for controlled
//!   flooding,
//! * Gabriel/relative-neighbourhood baselines and spanner
//!   [`euclidean_stretch`] metrics for the ablation studies.
//!
//! # Quick example
//!
//! ```
//! use glr_geometry::{dstd_next_hop, k_ldtg, DstdKind, Point2};
//!
//! // A toy deployment.
//! let pts = vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(70.0, 10.0),
//!     Point2::new(60.0, -40.0),
//!     Point2::new(140.0, 0.0),
//! ];
//! let spanner = k_ldtg(&pts, 100.0, 2);
//!
//! // Node 0 forwards a message towards node 3 along the Max tree.
//! let nbrs: Vec<(usize, Point2)> = spanner
//!     .neighbors(0)
//!     .iter()
//!     .map(|&v| (v, pts[v]))
//!     .collect();
//! let next = dstd_next_hop(pts[0], pts[3], &nbrs, DstdKind::Max);
//! assert!(next.is_some());
//! ```

#![warn(missing_docs)]

mod delaunay;
mod faces;
mod gabriel;
mod graph;
mod grid;
mod hull;
mod ldt;
mod point;
mod predicates;
mod spanner;
mod trees;
mod udg;

pub use delaunay::Triangulation;
pub use faces::{
    face_route, greedy_face_route, is_local_minimum, is_plane_drawing, left_of, FaceWalk,
    PlanarEmbedding,
};
pub use gabriel::{gabriel_graph, relative_neighborhood_graph};
pub use graph::Graph;
pub use grid::{bounding_box, Grid};
pub use hull::convex_hull;
pub use ldt::{k_ldtg, ldtg_local_neighbors};
pub use point::Point2;
pub use predicates::{
    circumcenter, in_diametral_disk, incircle, orient2d, orient2d_raw, segments_cross, Sign,
};
pub use spanner::{euclidean_stretch, relative_stretch, StretchReport};
pub use trees::{dstd_fanout, dstd_next_hop, extract_dstd_path, DstdKind};
pub use udg::{
    connectivity_probability, connectivity_radius_bound, connectivity_radius_for_region,
    unit_disk_graph,
};
