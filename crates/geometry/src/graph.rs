//! Undirected graphs over indexed point sets.
//!
//! The routing stack manipulates several geometric graphs (unit-disk graph,
//! local Delaunay triangulation, Gabriel graph, …) that all share the same
//! vertex set: the node indices of a deployment. [`Graph`] is a simple
//! adjacency-list representation with the traversals the GLR protocol and
//! the evaluation harness need: k-hop neighbourhoods, connected components,
//! BFS hop counts, and Euclidean-weighted shortest paths.

use crate::point::Point2;
use std::collections::{BinaryHeap, VecDeque};

/// An undirected graph on vertices `0..n`.
///
/// Parallel edges are ignored; self-loops are rejected.
///
/// # Examples
///
/// ```
/// use glr_geometry::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.connected_components().len(), 2); // {0,1,2} and {3}
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `uv`. Duplicate insertions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loops are not allowed (vertex {u})");
        assert!(
            u < self.len() && v < self.len(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.len()
        );
        if self.adj[u].contains(&v) {
            return;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edge_count += 1;
    }

    /// Removes the undirected edge `uv` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let Some(pos) = self.adj[u].iter().position(|&w| w == v) else {
            return false;
        };
        self.adj[u].swap_remove(pos);
        let pos_v = self.adj[v]
            .iter()
            .position(|&w| w == u)
            .expect("adjacency lists out of sync");
        self.adj[v].swap_remove(pos_v);
        self.edge_count -= 1;
        true
    }

    /// `true` when the edge `uv` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Neighbours of `u`, in insertion order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterates over every undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Vertices within `k` hops of `u`, **including** `u` itself.
    ///
    /// The result is sorted. `k = 0` yields `[u]`.
    ///
    /// ```
    /// # use glr_geometry::Graph;
    /// let mut g = Graph::new(5);
    /// g.add_edge(0, 1);
    /// g.add_edge(1, 2);
    /// g.add_edge(2, 3);
    /// assert_eq!(g.k_hop_neighborhood(0, 2), vec![0, 1, 2]);
    /// ```
    pub fn k_hop_neighborhood(&self, u: usize, k: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[u] = 0;
        queue.push_back(u);
        let mut out = vec![u];
        while let Some(v) = queue.pop_front() {
            if dist[v] == k {
                continue;
            }
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// BFS hop distance from `u` to every vertex (`None` when unreachable).
    pub fn bfs_hops(&self, u: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        let mut queue = VecDeque::new();
        dist[u] = Some(0);
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v].expect("queued vertex has distance");
            for &w in &self.adj[v] {
                if dist[w].is_none() {
                    dist[w] = Some(dv + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Connected components, each sorted, ordered by smallest member.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.len()];
        let mut comps = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// `true` when every vertex is reachable from every other (or `n <= 1`).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Euclidean-weighted shortest-path distances from `src` using the given
    /// vertex positions (Dijkstra). Unreachable vertices get `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.len()`.
    pub fn euclidean_shortest_paths(&self, src: usize, positions: &[Point2]) -> Vec<f64> {
        assert_eq!(
            positions.len(),
            self.len(),
            "positions length must match vertex count"
        );
        let mut dist = vec![f64::INFINITY; self.len()];
        dist[src] = 0.0;
        // Max-heap on negated distance.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            vertex: src,
        });
        while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &w in &self.adj[v] {
                let nd = d + positions[v].dist(positions[w]);
                if nd < dist[w] {
                    dist[w] = nd;
                    heap.push(HeapEntry {
                        dist: nd,
                        vertex: w,
                    });
                }
            }
        }
        dist
    }

    /// Induced subgraph on `vertices` (which need not be sorted).
    ///
    /// Returns the subgraph plus the mapping `local index -> original vertex`.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let map: Vec<usize> = vertices.to_vec();
        let mut inv = vec![usize::MAX; self.len()];
        for (i, &v) in map.iter().enumerate() {
            inv[v] = i;
        }
        let mut sub = Graph::new(map.len());
        for (i, &v) in map.iter().enumerate() {
            for &w in &self.adj[v] {
                let j = inv[w];
                if j != usize::MAX && i < j {
                    sub.add_edge(i, j);
                }
            }
        }
        (sub, map)
    }
}

/// Heap entry ordered so the smallest distance pops first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want min-dist first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1); // duplicate ignored
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn remove_edge_works() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_unique() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        g.add_edge(3, 0);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn k_hop_neighborhoods() {
        let g = path_graph(6);
        assert_eq!(g.k_hop_neighborhood(0, 0), vec![0]);
        assert_eq!(g.k_hop_neighborhood(0, 1), vec![0, 1]);
        assert_eq!(g.k_hop_neighborhood(2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.k_hop_neighborhood(0, 99), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_hops_on_path() {
        let g = path_graph(4);
        let d = g.bfs_hops(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let d = g.bfs_hops(0);
        assert_eq!(d[2], None);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert!(!g.is_connected());
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_empty());
    }

    #[test]
    fn dijkstra_on_square() {
        // Unit square with one diagonal: 0-1-2-3 cycle plus 0-2.
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g.add_edge(0, 2);
        let d = g.euclidean_shortest_paths(0, &pos);
        assert!((d[0] - 0.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((d[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let pos = vec![Point2::ORIGIN, Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)];
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let d = g.euclidean_shortest_paths(0, &pos);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn induced_subgraph_maps_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(map, vec![1, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert!(sub.has_edge(0, 1)); // 1-2
        assert!(!sub.has_edge(1, 2)); // 2-4 not an edge in g
        assert_eq!(sub.edge_count(), 1);
    }
}
