//! Convex hull (Andrew's monotone chain).
//!
//! Used by the Delaunay tests (hull edges must appear in the triangulation)
//! and by the evaluation harness for deployment-region statistics.

use crate::point::Point2;
use crate::predicates::{orient2d, Sign};

/// Indices of the convex-hull vertices of `points`, in counter-clockwise
/// order starting from the lexicographically smallest point.
///
/// Collinear points on the hull boundary are **excluded** (strict hull).
/// Returns all input indices (sorted) when fewer than 3 points are given.
///
/// # Examples
///
/// ```
/// use glr_geometry::{convex_hull, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(1.0, 0.5), // interior
///     Point2::new(2.0, 2.0),
///     Point2::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull, vec![0, 1, 3, 4]);
/// ```
pub fn convex_hull(points: &[Point2]) -> Vec<usize> {
    let n = points.len();
    if n < 3 {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| lex_cmp(points[a], points[b]));
        return idx;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| lex_cmp(points[a], points[b]));
    idx.dedup_by(|a, b| points[*a] == points[*b]);
    if idx.len() < 3 {
        return idx;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(idx.len() * 2);
    // Lower hull.
    for &i in &idx {
        while hull.len() >= 2
            && orient2d(
                points[hull[hull.len() - 2]],
                points[hull[hull.len() - 1]],
                points[i],
            ) != Sign::Positive
        {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(
                points[hull[hull.len() - 2]],
                points[hull[hull.len() - 1]],
                points[i],
            ) != Sign::Positive
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point equals first
    hull
}

fn lex_cmp(a: Point2, b: Point2) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hull() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        assert_eq!(convex_hull(&pts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn collinear_points_excluded() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![0, 2, 3]);
    }

    #[test]
    fn degenerate_small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::ORIGIN]), vec![0]);
        assert_eq!(
            convex_hull(&[Point2::new(1.0, 0.0), Point2::new(0.0, 0.0)]),
            vec![1, 0]
        );
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 1.0),
            Point2::new(3.0, 4.0),
            Point2::new(-1.0, 3.0),
            Point2::new(1.5, 1.5),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for w in 0..hull.len() {
            let a = pts[hull[w]];
            let b = pts[hull[(w + 1) % hull.len()]];
            let c = pts[hull[(w + 2) % hull.len()]];
            assert_eq!(orient2d(a, b, c), Sign::Positive);
        }
    }

    #[test]
    fn all_identical_points() {
        let pts = vec![Point2::new(1.0, 1.0); 5];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 1);
    }
}
