//! Property-based tests for the geometry substrate.

use glr_geometry::{
    convex_hull, dstd_next_hop, euclidean_stretch, gabriel_graph, incircle, is_plane_drawing,
    k_ldtg, orient2d, relative_neighborhood_graph, segments_cross, unit_disk_graph, DstdKind,
    Point2, Sign, Triangulation,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Simulation-scale coordinates; avoids denormal noise while still
    // exercising the predicates' filters through near-degenerate triples.
    (-1.0e4..1.0e4f64).prop_map(|v| (v * 64.0).round() / 64.0)
}

fn point() -> impl Strategy<Value = Point2> {
    (coord(), coord()).prop_map(|(x, y)| Point2::new(x, y))
}

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(point(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orient2d_antisymmetric(a in point(), b in point(), c in point()) {
        let s1 = orient2d(a, b, c);
        let s2 = orient2d(b, a, c);
        match s1 {
            Sign::Zero => prop_assert_eq!(s2, Sign::Zero),
            Sign::Positive => prop_assert_eq!(s2, Sign::Negative),
            Sign::Negative => prop_assert_eq!(s2, Sign::Positive),
        }
    }

    #[test]
    fn orient2d_cyclic(a in point(), b in point(), c in point()) {
        let s = orient2d(a, b, c);
        prop_assert_eq!(s, orient2d(b, c, a));
        prop_assert_eq!(s, orient2d(c, a, b));
    }

    #[test]
    fn incircle_swap_flips(a in point(), b in point(), c in point(), d in point()) {
        // Swapping two of the first three arguments flips the sign.
        let s1 = incircle(a, b, c, d);
        let s2 = incircle(b, a, c, d);
        match s1 {
            Sign::Zero => prop_assert_eq!(s2, Sign::Zero),
            Sign::Positive => prop_assert_eq!(s2, Sign::Negative),
            Sign::Negative => prop_assert_eq!(s2, Sign::Positive),
        }
    }

    #[test]
    fn segments_cross_symmetric(a in point(), b in point(), c in point(), d in point()) {
        prop_assert_eq!(segments_cross(a, b, c, d), segments_cross(c, d, a, b));
        prop_assert_eq!(segments_cross(a, b, c, d), segments_cross(b, a, d, c));
    }

    #[test]
    fn hull_contains_extremes(pts in points(3..40)) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        // The lexicographically smallest and largest points are hull vertices.
        let min = (0..pts.len()).min_by(|&i, &j| {
            pts[i].x.partial_cmp(&pts[j].x).unwrap().then(pts[i].y.partial_cmp(&pts[j].y).unwrap())
        }).unwrap();
        prop_assert!(hull.iter().any(|&h| pts[h] == pts[min]));
    }

    #[test]
    fn delaunay_empty_circumcircle(pts in points(3..25)) {
        let tri = Triangulation::build(&pts);
        for t in tri.triangles() {
            let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
            for (i, &p) in pts.iter().enumerate() {
                if t.contains(&i) { continue; }
                prop_assert_ne!(incircle(a, b, c, p), Sign::Positive,
                    "point {} inside circumcircle of {:?}", i, t);
            }
        }
    }

    #[test]
    fn delaunay_is_plane(pts in points(3..25)) {
        let tri = Triangulation::build(&pts);
        let g = tri.to_graph();
        prop_assert!(is_plane_drawing(&g, &pts));
    }

    #[test]
    fn ldtg_plane_and_connectivity_preserving(pts in points(5..30), r in 1.0e3..6.0e3f64) {
        let udg = unit_disk_graph(&pts, r);
        let ldtg = k_ldtg(&pts, r, 2);
        prop_assert!(is_plane_drawing(&ldtg, &pts), "k-LDTG must be plane");
        prop_assert_eq!(
            udg.connected_components().len(),
            ldtg.connected_components().len(),
            "k-LDTG must preserve connectivity"
        );
        for (u, v) in ldtg.edges() {
            prop_assert!(udg.has_edge(u, v), "LDTG edge outside UDG");
        }
    }

    #[test]
    fn rng_subset_gabriel_subset_udg(pts in points(4..30), r in 1.0e3..8.0e3f64) {
        let udg = unit_disk_graph(&pts, r);
        let gg = gabriel_graph(&pts, r);
        let rng = relative_neighborhood_graph(&pts, r);
        for (u, v) in rng.edges() {
            prop_assert!(gg.has_edge(u, v));
        }
        for (u, v) in gg.edges() {
            prop_assert!(udg.has_edge(u, v));
        }
    }

    #[test]
    fn stretch_at_least_one(pts in points(2..15)) {
        let tri = Triangulation::build(&pts);
        let g = tri.to_graph();
        let r = euclidean_stretch(&g, &pts);
        prop_assert!(r.max_stretch >= 1.0 - 1e-9);
        prop_assert!(r.mean_stretch >= 1.0 - 1e-9);
        prop_assert!(r.mean_stretch <= r.max_stretch + 1e-9);
    }

    #[test]
    fn dstd_always_makes_progress(
        me in point(),
        dst in point(),
        nbr_pts in prop::collection::vec(point(), 0..12),
        mid in 0u8..5,
    ) {
        // Unique ids so reverse lookup below is unambiguous.
        let nbrs: Vec<(usize, Point2)> = nbr_pts.into_iter().enumerate().collect();
        let my_d = me.dist_sq(dst);
        for kind in [DstdKind::Max, DstdKind::Min, DstdKind::Mid(mid)] {
            if let Some(id) = dstd_next_hop(me, dst, &nbrs, kind) {
                let p = nbrs.iter().find(|&&(i, _)| i == id).unwrap().1;
                prop_assert!(p.dist_sq(dst) < my_d, "{kind:?} picked a non-progress hop");
            }
        }
        // Max makes at least as much progress as Min when both exist.
        if let (Some(mx), Some(mn)) = (
            dstd_next_hop(me, dst, &nbrs, DstdKind::Max),
            dstd_next_hop(me, dst, &nbrs, DstdKind::Min),
        ) {
            let pmx = nbrs.iter().find(|&&(i, _)| i == mx).unwrap().1;
            let pmn = nbrs.iter().find(|&&(i, _)| i == mn).unwrap().1;
            prop_assert!(pmx.dist_sq(dst) <= pmn.dist_sq(dst));
        }
    }
}
