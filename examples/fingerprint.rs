//! Prints an exact (bit-level) fingerprint of fixed-seed runs for GLR and
//! epidemic routing. Used to verify that engine refactors keep
//! `Simulation::run` a pure function of `(config, workload, protocol,
//! seed)` — any behavioural drift changes at least one line.
//!
//! Each configuration also re-runs under `EngineKind::Parallel(4)` (with
//! a grain of 1, so every beacon exercises the fan-out) and the digest
//! is asserted identical to the serial engine's: the parallel engine is
//! part of the regression surface, not a separate mode.
//!
//! ```sh
//! cargo run --release --example fingerprint
//! ```

use glr::core::{Glr, GlrConfig};
use glr::epidemic::Epidemic;
use glr::sim::{EngineKind, RunStats, SimConfig, Simulation, Workload};

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Folds every counter and every per-message record (bit-exact times) into
/// one 64-bit digest.
fn digest(stats: &RunStats) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        stats.data_tx,
        stats.control_tx,
        stats.collisions,
        stats.out_of_range,
        stats.queue_drops,
        stats.storage_drops,
    ] {
        h = fnv(h, v);
    }
    for &p in &stats.peak_storage {
        h = fnv(h, p as u64);
    }
    let mut counters: Vec<_> = stats.counters.iter().collect();
    counters.sort();
    for (name, v) in counters {
        for b in name.bytes() {
            h = fnv(h, b as u64);
        }
        h = fnv(h, *v);
    }
    for r in stats.records() {
        h = fnv(h, r.src.0 as u64);
        h = fnv(h, r.dst.0 as u64);
        h = fnv(h, r.created.as_secs().to_bits());
        h = fnv(h, r.delivered.map_or(0, |t| t.as_secs().to_bits()));
        h = fnv(h, r.hops.unwrap_or(0) as u64);
        h = fnv(h, r.duplicate_deliveries as u64);
    }
    h
}

fn run_one(name: &str, cfg: SimConfig, wl: Workload) -> RunStats {
    if name.starts_with("glr") {
        Simulation::new(cfg, wl, Glr::factory(GlrConfig::paper())).run()
    } else {
        Simulation::new(cfg, wl, Epidemic::new).run()
    }
}

fn main() {
    for (name, range, seed) in [
        ("glr-100m", 100.0, 1u64),
        ("glr-250m", 250.0, 7),
        ("epidemic-100m", 100.0, 3),
        ("epidemic-50m", 50.0, 11),
    ] {
        let cfg = SimConfig::paper(range, seed).with_duration(400.0);
        let wl = Workload::paper_style(cfg.n_nodes, 60, 1000);
        let stats = run_one(name, cfg.clone(), wl.clone());
        let parallel = run_one(
            name,
            cfg.with_engine(EngineKind::Parallel(4))
                .with_parallel_grain(1),
            wl,
        );
        assert_eq!(
            digest(&stats),
            digest(&parallel),
            "{name}: parallel engine diverged from serial"
        );
        println!(
            "{name}: digest={:016x} delivered={} data_tx={} control_tx={} collisions={} \
             out_of_range={} queue_drops={} latency_bits={:016x}",
            digest(&stats),
            stats.messages_delivered(),
            stats.data_tx,
            stats.control_tx,
            stats.collisions,
            stats.out_of_range,
            stats.queue_drops,
            stats.avg_latency().map_or(0, f64::to_bits),
        );
    }
}
