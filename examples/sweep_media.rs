//! Sweep demo: a declarative radio-range × medium grid executed on the
//! work-queue sweep engine, with the shard/merge pipeline shown in
//! miniature — everything the `experiments` binary does, in ~80 lines.
//!
//! ```text
//! cargo run --release --example sweep_media
//! ```

use glr::core::{Glr, GlrConfig};
use glr::sim::{MediumKind, ReportSet, Scenario, SimConfig, Sweep, SweepResults};

fn main() {
    // The grid: two radio ranges × three media, 300 simulated seconds,
    // 100 paper-style messages, 3 seeded runs per cell.
    let mut cells = Vec::new();
    for range in [100.0, 200.0] {
        for medium in [
            MediumKind::Contention,
            MediumKind::Ideal,
            MediumKind::shadowing(),
        ] {
            let config = SimConfig::paper(range, 7).with_duration(300.0);
            cells.push(
                Scenario::new(format!("range {range:.0} m / {medium}"), config)
                    .with_messages(100)
                    .with_medium(medium),
            );
        }
    }
    let runs = 3;
    let glr = GlrConfig::paper();
    let run_cell = |sc: &Scenario, run: usize| sc.run_nth(run, Glr::factory(glr.clone()));

    // One work queue, all (cell, run) units, as many threads as cores.
    let results = Sweep::new(runs).execute(&cells, run_cell);
    let report = ReportSet::from_sweep(&results, |i| cells[i].label.clone());

    println!("GLR across media — {} cells x {} runs", cells.len(), runs);
    println!(
        "{:<28} {:>16} {:>14} {:>12}",
        "cell", "delivery %", "latency (s)", "hops"
    );
    for cell in &report.cells {
        println!(
            "{:<28} {:>16} {:>14} {:>12}",
            cell.label,
            cell.delivery_pct().display(1),
            cell.avg_latency(300.0).display(1),
            cell.avg_hops().display(2),
        );
    }

    // The same grid split across two "machines": each shard executes its
    // half, writes JSON, and the merged report is byte-identical to the
    // unsharded one.
    let shards: Vec<String> = (0..2)
        .map(|i| {
            let part = Sweep::new(runs).with_shard(i, 2).execute(&cells, run_cell);
            ReportSet::from_sweep(&part, |c| cells[c].label.clone()).to_json()
        })
        .collect();
    let merged = ReportSet::merge(
        shards
            .iter()
            .map(|s| ReportSet::from_json(s).expect("shard JSON parses"))
            .collect(),
    )
    .expect("shards are disjoint");
    assert_eq!(merged.to_json(), report.to_json());
    println!("\nshard 0/2 + shard 1/2 merged == unsharded report (byte-identical)");

    // And the in-memory flavour of the same guarantee.
    let serial = Sweep::new(runs)
        .with_threads(1)
        .execute_serial(&cells, run_cell);
    assert_eq!(SweepResults::merge(vec![serial]), results);
    println!("parallel sweep == serial sweep (bit-identical RunStats)");
}
