//! Quickstart: run GLR on the paper's Table 1 scenario and print the key
//! routing metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use glr::core::Glr;
use glr::sim::{SimConfig, Simulation, Workload};

fn main() {
    // The paper's setup: 50 nodes, 1500 m x 300 m, random waypoint
    // 0-20 m/s, 1 Mbps radio. We pick the 100 m radio range (the sparse,
    // 3-copy regime) and a 600 s horizon to keep the example snappy.
    let config = SimConfig::paper(100.0, 42).with_duration(600.0);

    // 200 messages: 45 of the nodes send to the other active nodes, one
    // message per second, 1000-byte payloads (paper workload, scaled).
    let workload = Workload::paper_style(config.n_nodes, 200, 1000);

    println!(
        "GLR quickstart: {} nodes, {:.0} m range, {} messages, {:.0} s",
        config.n_nodes,
        config.radio_range,
        workload.len(),
        config.sim_duration
    );

    let stats = Simulation::new(config, workload, Glr::new).run();

    println!("delivery ratio   : {:.1} %", stats.delivery_ratio() * 100.0);
    println!(
        "mean latency     : {:.1} s",
        stats.avg_latency().unwrap_or(f64::NAN)
    );
    println!(
        "mean hop count   : {:.1}",
        stats.avg_hops().unwrap_or(f64::NAN)
    );
    println!(
        "peak storage     : {} messages (worst node)",
        stats.max_peak_storage()
    );
    println!("data frames      : {}", stats.data_tx);
    println!("control frames   : {}", stats.control_tx);
    println!(
        "link losses      : {} collisions, {} out-of-range",
        stats.collisions, stats.out_of_range
    );
}
