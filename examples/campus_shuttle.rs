//! A "campus shuttle" DTN: dense clusters bridged by mobility.
//!
//! Nodes live in a long thin strip (the paper's 1500 m x 300 m region) at
//! a 150 m radio range — right at the connectivity threshold where GLR's
//! Algorithm 1 switches from 3 copies to a single copy. The example runs
//! the *adaptive* copy policy against both fixed policies to show the
//! decision actually matters: fixed-3 wastes bandwidth when the network is
//! mostly connected, fixed-1 struggles when it is not.
//!
//! ```text
//! cargo run --release --example campus_shuttle
//! ```

use glr::core::{CopyPolicy, Glr, GlrConfig};
use glr::sim::{SimConfig, Simulation, Workload};

fn run(radius: f64, policy: CopyPolicy, label: &str) {
    let cfg = SimConfig::paper(radius, 21).with_duration(900.0);
    let workload = Workload::paper_style(cfg.n_nodes, 300, 1000);
    let glr_cfg = GlrConfig::paper().with_copy_policy(policy);
    let copies = policy.copies(cfg.n_nodes, cfg.radio_range, cfg.region);
    let stats = Simulation::new(cfg, workload, Glr::factory(glr_cfg)).run();
    println!(
        "  {label:<24} ({copies} copies) delivery {:>5.1} %  latency {:>6.1} s  data tx {:>7}",
        stats.delivery_ratio() * 100.0,
        stats.avg_latency().unwrap_or(f64::NAN),
        stats.data_tx
    );
}

fn main() {
    for radius in [100.0, 150.0, 200.0] {
        println!("\nradio range {radius} m:");
        run(radius, CopyPolicy::Fixed(1), "fixed single copy");
        run(radius, CopyPolicy::Fixed(3), "fixed three copies");
        run(radius, CopyPolicy::PAPER, "adaptive (Algorithm 1)");
    }
    println!(
        "\nThe adaptive policy matches the better fixed policy at each density —\n\
         the copy-count decision of the paper's Algorithm 1 in action."
    );
}
