//! A sparse environmental-sensor field: heavily partitioned network where
//! store-and-forward is the only way data gets out.
//!
//! Forty sensors are scattered over a wide area with a short radio range
//! (the 50 m regime of the paper — average degree below one). Ten of them
//! periodically report readings to a sink node. The example contrasts GLR
//! with epidemic routing on delivery, latency and — the punchline —
//! storage, which is what a memory-constrained sensor cares about.
//!
//! ```text
//! cargo run --release --example sparse_sensor_field
//! ```

use glr::core::Glr;
use glr::epidemic::Epidemic;
use glr::mobility::Region;
use glr::sim::{NodeId, SimConfig, SimTime, Simulation, Workload, WorkloadMessage};

fn build_config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(50.0, seed).with_duration(2000.0);
    cfg.n_nodes = 40;
    cfg.region = Region::new(1200.0, 400.0);
    cfg
}

/// Ten sensor nodes each report every 60 s to the sink (node 0).
fn sensor_workload() -> Workload {
    let mut msgs = Vec::new();
    for round in 0..20u32 {
        for sensor in 1..=10u32 {
            msgs.push(WorkloadMessage {
                at: SimTime::from_secs(10.0 + round as f64 * 60.0 + sensor as f64),
                src: NodeId(sensor),
                dst: NodeId(0),
                size: 400,
            });
        }
    }
    Workload::new(msgs)
}

fn main() {
    println!("Sparse sensor field: 40 nodes, 1200x400 m, 50 m radios, sink at node 0");
    println!("(10 sensors x 20 reporting rounds = 200 readings to collect)\n");

    let glr_stats = Simulation::new(build_config(7), sensor_workload(), Glr::new).run();
    let epi_stats = Simulation::new(build_config(7), sensor_workload(), Epidemic::new).run();

    println!("{:<24} {:>12} {:>12}", "", "GLR", "Epidemic");
    println!(
        "{:<24} {:>11.1}% {:>11.1}%",
        "readings delivered",
        glr_stats.delivery_ratio() * 100.0,
        epi_stats.delivery_ratio() * 100.0
    );
    println!(
        "{:<24} {:>10.1} s {:>10.1} s",
        "mean latency",
        glr_stats.avg_latency().unwrap_or(f64::NAN),
        epi_stats.avg_latency().unwrap_or(f64::NAN)
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "peak storage (msgs)",
        glr_stats.max_peak_storage(),
        epi_stats.max_peak_storage()
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "data transmissions", glr_stats.data_tx, epi_stats.data_tx
    );
    println!(
        "\nGLR's controlled flooding keeps per-node buffers a fraction of epidemic's\n\
         while the custody transfer still ferries readings across partitions."
    );
}
