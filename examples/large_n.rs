//! Runs the large-`n` scenario preset tier — the paper's node density
//! scaled to thousands of nodes, under all three radio media — with
//! epidemic routing, the workload that stresses the beacon/neighbour
//! hot path hardest (every contact triggers summary exchange).
//!
//! ```sh
//! cargo run --release --example large_n                 # 10000 nodes, 5 s
//! cargo run --release --example large_n -- 10000 2      # nodes, duration
//! cargo run --release --example large_n -- 100000 1 4   # + parallel engine, 4 workers
//! ```
//!
//! Used as the CI smoke for 10k/100k-node scale: it exercises the
//! arena-backed deployment, the interned beacon snapshots and the
//! incremental two-hop merges end to end — and, with a worker count,
//! `EngineKind::Parallel` — and prints one row per medium.

use glr::epidemic::Epidemic;
use glr::sim::{EngineKind, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("node count must be an integer"))
        .unwrap_or(10_000);
    let duration: f64 = args
        .next()
        .map(|a| a.parse().expect("duration must be a number"))
        .unwrap_or(5.0);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("worker count must be an integer"))
        .unwrap_or(0);
    let engine = match workers {
        0 | 1 => EngineKind::Serial,
        k => EngineKind::Parallel(k),
    };

    println!("large-n tier: {n} nodes, {duration} s, epidemic routing, {engine} engine");
    println!(
        "  {:<28} | {:>9} | {:>9} | {:>10} | {:>10} | {:>8}",
        "scenario", "created", "delivered", "control tx", "data tx", "wall (s)"
    );
    for mut scenario in Scenario::large_n_tier(n, duration, 1) {
        scenario.config.engine = engine;
        let started = std::time::Instant::now();
        let stats = scenario.run(Epidemic::new);
        let wall = started.elapsed().as_secs_f64();
        println!(
            "  {:<28} | {:>9} | {:>9} | {:>10} | {:>10} | {:>8.2}",
            scenario.label,
            stats.messages_created(),
            stats.messages_delivered(),
            stats.control_tx,
            stats.data_tx,
            wall,
        );
        // The tier must actually run beacons at scale; a silent zero here
        // would mean the smoke tests nothing.
        assert!(stats.control_tx > 0, "no beacons flowed at n={n}");
    }
}
