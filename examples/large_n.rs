//! Runs the large-`n` scenario preset tier — the paper's node density
//! scaled to thousands of nodes, under all three radio media — with
//! epidemic routing, the workload that stresses the beacon/neighbour
//! hot path hardest (every contact triggers summary exchange).
//!
//! ```sh
//! cargo run --release --example large_n                 # 10000 nodes, 5 s
//! cargo run --release --example large_n -- 10000 2      # nodes, duration
//! cargo run --release --example large_n -- 100000 1 4   # + parallel engine, 4 workers
//! cargo run --release --example large_n -- 100000 1 4 4 # + shared 4-thread budget:
//!                                                       #   sharded sweep x parallel engine
//! ```
//!
//! Used as the CI smoke for 10k/100k-node scale: it exercises the
//! arena-backed deployment, the interned beacon snapshots and the
//! incremental two-hop merges end to end — and, with a worker count,
//! `EngineKind::Parallel` — and prints one row per medium. With a
//! fourth argument it additionally runs the tier through a **sharded
//! `Sweep` whose outer workers and inner engines draw from one shared
//! `ThreadBudget`** (the oversubscription regression smoke): shards 0/2
//! and 1/2 execute separately, merge, and must match the per-scenario
//! runs bit for bit.

use glr::epidemic::Epidemic;
use glr::sim::{EngineKind, RunStats, Scenario, Sweep, SweepResults, ThreadBudget};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("node count must be an integer"))
        .unwrap_or(10_000);
    let duration: f64 = args
        .next()
        .map(|a| a.parse().expect("duration must be a number"))
        .unwrap_or(5.0);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("worker count must be an integer"))
        .unwrap_or(0);
    let budget_total: Option<usize> = args
        .next()
        .map(|a| a.parse().expect("thread budget must be an integer"));
    let engine = match workers {
        0 | 1 => EngineKind::Serial,
        k => EngineKind::Parallel(k),
    };

    println!("large-n tier: {n} nodes, {duration} s, epidemic routing, {engine} engine");
    println!(
        "  {:<28} | {:>9} | {:>9} | {:>10} | {:>10} | {:>8}",
        "scenario", "created", "delivered", "control tx", "data tx", "wall (s)"
    );
    let mut tier = Scenario::large_n_tier(n, duration, 1);
    let mut direct: Vec<RunStats> = Vec::new();
    for scenario in &mut tier {
        scenario.config.engine = engine;
        let started = std::time::Instant::now();
        let stats = scenario.run(Epidemic::new);
        let wall = started.elapsed().as_secs_f64();
        println!(
            "  {:<28} | {:>9} | {:>9} | {:>10} | {:>10} | {:>8.2}",
            scenario.label,
            stats.messages_created(),
            stats.messages_delivered(),
            stats.control_tx,
            stats.data_tx,
            wall,
        );
        // The tier must actually run beacons at scale; a silent zero here
        // would mean the smoke tests nothing.
        assert!(stats.control_tx > 0, "no beacons flowed at n={n}");
        direct.push(stats);
    }

    // Shared-budget mode: the same tier as a sharded sweep, outer
    // (cell, run) workers and inner engine fan-out drawing from ONE
    // ledger — the smoke that catches outer x inner oversubscription
    // regressions, and (by comparing against the direct runs above)
    // that neither the budget nor the shard split changes a bit.
    let Some(total) = budget_total else { return };
    let budget = ThreadBudget::total(total);
    for scenario in &mut tier {
        scenario.config.thread_budget = budget.clone();
    }
    let started = std::time::Instant::now();
    let shards: Vec<SweepResults> = (0..2)
        .map(|i| {
            Sweep::new(1)
                .with_threads(total)
                .with_budget(budget.clone())
                .with_shard(i, 2)
                .execute(&tier, |sc, run| sc.run_nth(run, Epidemic::new))
        })
        .collect();
    let merged = SweepResults::merge(shards);
    assert!(merged.is_complete(tier.len()));
    for (i, cell) in merged.cells().iter().enumerate() {
        assert_eq!(
            cell.runs[0], direct[i],
            "budgeted sharded sweep diverged from the direct run of {}",
            tier[i].label
        );
    }
    println!(
        "  sharded sweep x {engine} engine under one {total}-thread budget: \
         {} cells bit-identical to the direct runs ({:.2} s wall)",
        merged.cells().len(),
        started.elapsed().as_secs_f64()
    );
}
