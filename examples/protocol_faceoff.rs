//! Head-to-head: GLR vs epidemic routing under tightening storage limits —
//! the scenario behind the paper's Figure 7.
//!
//! Both protocols run the identical workload, topology and mobility; only
//! the per-node buffer shrinks. Epidemic routing keeps a copy of
//! everything and falls over when buffers bind; GLR's controlled flooding
//! plus custody transfer barely notices.
//!
//! ```text
//! cargo run --release --example protocol_faceoff
//! ```

use glr::core::Glr;
use glr::epidemic::Epidemic;
use glr::sim::{SimConfig, Simulation, Workload};

fn main() {
    println!("Protocol face-off at 50 m radio range, 600 messages, 2000 s");
    println!(
        "{:>18} | {:>22} | {:>22}",
        "storage limit", "GLR delivery / drops", "Epidemic delivery / drops"
    );
    for limit in [usize::MAX, 200, 100, 50, 25] {
        let mk = |seed| {
            let mut cfg = SimConfig::paper(50.0, seed).with_duration(2000.0);
            if limit != usize::MAX {
                cfg.storage_limit = Some(limit);
            }
            cfg
        };
        let wl = Workload::paper_style(50, 600, 1000);
        let g = Simulation::new(mk(3), wl.clone(), Glr::new).run();
        let e = Simulation::new(mk(3), wl, Epidemic::new).run();
        let label = if limit == usize::MAX {
            "unlimited".to_string()
        } else {
            format!("{limit} msgs/node")
        };
        println!(
            "{label:>18} | {:>13.1} % / {:>4} | {:>13.1} % / {:>4}",
            g.delivery_ratio() * 100.0,
            g.storage_drops,
            e.delivery_ratio() * 100.0,
            e.storage_drops
        );
    }
    println!("\nEpidemic's buffers fill with copies of everything; GLR stores only what");
    println!("it has custody of, so tight buffers cost it almost nothing (paper Fig. 7).");
}
