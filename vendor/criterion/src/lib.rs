//! In-tree minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, calibrated, then
//! run for a wall-clock budget (default 200 ms, `CRITERION_MEASURE_MS`
//! overrides) and reported as mean ns/iteration. When the
//! `CRITERION_JSON` environment variable names a file, all results are
//! also written there as a JSON array of `{id, mean_ns, iters}` records —
//! the hook the repository's `BENCH_*.json` artefacts are generated
//! through. No statistical analysis, plots, or comparisons are performed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

/// The benchmark driver: collects results from groups and functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().0;
        self.run_one(id, &mut f);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary and writes the JSON artefact when
    /// `CRITERION_JSON` is set.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                self.write_json(&path).unwrap_or_else(|e| {
                    eprintln!("criterion-shim: cannot write {path}: {e}");
                });
                println!(
                    "criterion-shim: wrote {} results to {path}",
                    self.results.len()
                );
            }
        }
    }

    fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "[")?;
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            writeln!(
                f,
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}",
                r.id.replace('"', "'"),
                r.mean_ns,
                r.iters
            )?;
        }
        writeln!(f, "]")
    }

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let budget = Duration::from_millis(
            std::env::var("CRITERION_MEASURE_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(200),
        );
        let mut bencher = Bencher {
            budget,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "{id:<50} time: {:>12}/iter  ({} iters)",
            format_ns(mean_ns),
            bencher.iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            iters: bencher.iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// budget instead of sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a function against one prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(full, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.criterion.run_one(full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, possibly `function/parameter`-structured.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Runs the timed closure; handed to every benchmark body.
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly under the measurement budget and records the
    /// elapsed wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: time a single call.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // How many calls fit in the budget (at least 1, at most 10M).
        let n = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        self.total = t1.elapsed();
        self.iters = n;
    }
}

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iters >= 1);
        assert_eq!(c.results()[0].id, "noop");
    }

    #[test]
    fn groups_compose_ids() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.bench_function(BenchmarkId::new("fn", 3), |b| b.iter(|| 3));
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["grp/64", "grp/fn/3"]);
    }

    #[test]
    fn json_artefact_written() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("j", |b| b.iter(|| 0));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        c.write_json(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"id\": \"j\""));
        let _ = std::fs::remove_file(path);
    }
}
