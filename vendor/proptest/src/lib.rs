//! In-tree minimal stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings,
//! * range strategies (`0usize..30`, `-1.0..1.0f64`), tuples of
//!   strategies, [`Strategy::prop_map`], and
//!   [`prop::collection::vec`](collection::vec),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimised), and case generation is fully
//! deterministic per test (seeded from the test name, overridable with the
//! `PROPTEST_SEED` environment variable).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub use strategy::Strategy;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject,
}

/// The per-test deterministic RNG handed to strategies.
pub type TestRng = StdRng;

/// Creates the RNG for one property test, seeded from the test name (or
/// `PROPTEST_SEED` when set).
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
    StdRng::seed_from_u64(seed)
}

/// Everything a property test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };

    /// The `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case's
/// inputs are reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Rejects the current case (draws another) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `arg in strategy` binding is sampled per
/// case and the body runs until the configured number of cases pass.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(1000),
                        "too many rejected cases in {} ({} rejects for {} passes)",
                        stringify!($name), attempts - passed, passed,
                    );
                    $(let $arg = {
                        let s = &$strat;
                        $crate::Strategy::generate(s, &mut rng)
                    };)+
                    let inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!("    {} = {:?}\n", stringify!($arg), &$arg));)+
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property {} failed at case {}: {}\ninputs:\n{}",
                            stringify!($name), passed, msg, inputs,
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn tuples_and_map(p in (0i32..4, 0i32..4), s in (0u8..3).prop_map(|v| v * 2)) {
            prop_assert!(p.0 < 4 && p.1 < 4);
            prop_assert!(s % 2 == 0 && s <= 4);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 99);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_surface_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..3) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
