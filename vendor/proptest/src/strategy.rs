//! Value-generation strategies: ranges, tuples, mapping, and vectors.

use crate::TestRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample_single(rng) as f32
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
