//! In-tree deterministic stand-in for the `rand` crate, exposing the
//! subset of the 0.9 API this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over float
//! and integer ranges.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace self-contained. The generator is **xoshiro256++** seeded
//! through SplitMix64 — not the upstream `StdRng` stream, but every
//! simulation result in this repository only requires that runs be a pure
//! function of `(config, seed)`, which any fixed generator satisfies.
//!
//! Not cryptographically secure; statistical quality is more than adequate
//! for simulation workloads (xoshiro256++ passes BigCrush).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1]` (both ends
/// reachable).
#[inline]
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        // A rounding edge can land exactly on `end`; redraw (terminates:
        // u = 0 always yields `start < end`).
        loop {
            let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range {a}..={b}");
        let v = a + unit_f64_inclusive(rng.next_u64()) * (b - a);
        v.clamp(a, b)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range {a}..={b}");
                let span = (b as i128 - a as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (a as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0..1.0f64), b.random_range(0.0..1.0f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let y: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..1000 {
            seen_inc[rng.random_range(0usize..=2)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(8);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
